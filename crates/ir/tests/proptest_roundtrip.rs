//! Property tests: printer ∘ parser round-trips on generated expression
//! trees, and structural invariants of the span algebra.

use chef_ir::ast::{BinOp, Expr, ExprKind, Intrinsic, UnOp, VarRef};
use chef_ir::parser::parse_expr;
use chef_ir::printer::print_expr;
use chef_ir::span::Span;
use proptest::prelude::*;

/// Strategy for well-formed (parseable) float expression trees over the
/// fixed variables `a`, `b`, `c`.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Positive finite literals (negative literals print inside a Neg).
        (0.001f64..1e6).prop_map(|v| Expr::new(ExprKind::FloatLit(v), Span::DUMMY)),
        prop_oneof![Just("a"), Just("b"), Just("c")]
            .prop_map(|n| Expr::new(ExprKind::Var(VarRef::new(n, Span::DUMMY)), Span::DUMMY)),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ]
            )
                .prop_map(|(l, r, op)| Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r)
                    },
                    Span::DUMMY
                )),
            inner.clone().prop_map(|e| Expr::new(
                ExprKind::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(e)
                },
                Span::DUMMY
            )),
            (
                inner.clone(),
                prop_oneof![
                    Just(Intrinsic::Sin),
                    Just(Intrinsic::Cos),
                    Just(Intrinsic::Exp),
                    Just(Intrinsic::Fabs),
                    Just(Intrinsic::Tanh)
                ]
            )
                .prop_map(|(e, i)| Expr::new(
                    ExprKind::Call {
                        callee: chef_ir::ast::Callee::Intrinsic(i),
                        args: vec![e]
                    },
                    Span::DUMMY
                )),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::new(
                ExprKind::Call {
                    callee: chef_ir::ast::Callee::Intrinsic(Intrinsic::Pow),
                    args: vec![l, r]
                },
                Span::DUMMY
            )),
        ]
    })
}

/// Strips spans/types so structural equality ignores positions.
fn canon(e: &Expr) -> String {
    // The printed form IS the canonical structure for parseable trees.
    print_expr(e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_print_is_identity(e in expr_strategy()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("printed form must reparse: {err}\n{printed}"));
        prop_assert_eq!(canon(&reparsed), printed);
    }

    #[test]
    fn parse_is_stable_under_extra_parens(e in expr_strategy()) {
        let printed = print_expr(&e);
        let wrapped = format!("({printed})");
        let reparsed = parse_expr(&wrapped).unwrap();
        prop_assert_eq!(print_expr(&reparsed), printed);
    }

    #[test]
    fn span_join_is_commutative_and_covering(
        a in 0u32..1000, b in 0u32..1000, c in 0u32..1000, d in 0u32..1000
    ) {
        let s1 = Span::new(a.min(b), a.max(b) + 1);
        let s2 = Span::new(c.min(d), c.max(d) + 1);
        let j = s1.to(s2);
        prop_assert_eq!(j, s2.to(s1));
        prop_assert!(j.lo <= s1.lo && j.lo <= s2.lo);
        prop_assert!(j.hi >= s1.hi && j.hi >= s2.hi);
    }
}

#[test]
fn whole_program_round_trip_via_printer() {
    // A structured program exercises every statement form once.
    let src = "double f(double x, double a[], int n) {
    double acc = 0.0;
    for (int i = 0; i < n; i++) {
        if (a[i] > 0.0) {
            acc += a[i] * x;
        } else {
            acc -= fabs(a[i]);
        }
    }
    while (acc > 100.0) {
        acc /= 2.0;
    }
    return acc;
}";
    let p1 = chef_ir::parser::parse_program(src).unwrap();
    let printed = chef_ir::printer::print_program(&p1);
    let p2 = chef_ir::parser::parse_program(&printed).unwrap();
    assert_eq!(printed, chef_ir::printer::print_program(&p2));
}
