//! Dependency-free telemetry substrate for the CHEF-FP workspace:
//! a process-global registry of named metrics, plus lightweight spans.
//!
//! Like `chef_core::json`, this crate deliberately has **no external
//! dependencies** — the workspace builds offline — and it is the one
//! place every layer (exec, tuner, core, bench) reports into, replacing
//! the scattered ad-hoc counters that grew per subsystem.
//!
//! ## Metrics
//!
//! Three metric kinds, all registered by `&'static str` name on first
//! use and updated lock-free afterwards:
//!
//! * [`Counter`] — monotonically increasing `u64` (`fetch_add`).
//! * [`Gauge`] — last-writer-wins `f64` (stored as bits in an atomic).
//! * [`Histogram`] — fixed 64-bucket log₂-scale histogram of `u64`
//!   magnitudes (bucket *b* holds `[2^(b−1), 2^b)`), with estimated
//!   [`Histogram::quantile`]s (p50/p95/p99) read straight from the
//!   bucket counts. Recording is one `fetch_add` on the value's bucket.
//!
//! The registry maps are mutex-guarded (registration only — a
//! once-per-name cost); the metric cells themselves are leaked
//! `&'static` atomics, so the hot path of an already-registered handle
//! is a single relaxed atomic op. Call sites cache the handle through
//! the [`counter!`]/[`gauge!`]/[`histogram!`] macros, which stash it in
//! a per-site `OnceLock`. All registry locks recover from poisoning
//! (`unwrap_or_else(|p| p.into_inner())`): a panicking thread mid-update
//! can at worst lose its own registration attempt, never wedge the
//! registry — the same policy as `chef-exec`'s machine pools.
//!
//! ## Spans
//!
//! [`span`] returns a guard that records a [`SpanRecord`] — name,
//! monotonic start/end nanoseconds, parent link, thread id — into a
//! **bounded per-thread ring buffer** ([`SPAN_RING_CAPACITY`] entries;
//! the oldest records are overwritten and tallied in
//! `spans_dropped`). Parents are tracked by a per-thread stack of open
//! span ids, so nesting needs no allocation per span. On drop, the
//! span's duration is additionally recorded into the histogram
//! `span.<name>.ns`, which is where p50/p95/p99 latency per phase comes
//! from. Timing uses a process-global [`std::time::Instant`] anchor, so
//! start/end values are comparable across threads.
//!
//! ## Export
//!
//! [`snapshot`] merges every registered metric and every thread's span
//! ring into a plain-data [`TelemetrySnapshot`] (spans sorted by start
//! time). JSON serialization lives in `chef_core::report` — this crate
//! stays at the bottom of the dependency graph and knows nothing about
//! encodings. [`reset`] zeroes all metrics and clears the rings (tests
//! and the `repro` harness call it between scenarios; handles stay
//! valid).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Locks a registry mutex, recovering from poisoning: every structure
/// guarded here (registration maps, span rings) is valid after any
/// partial update, so a panicking writer never invalidates readers.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Monotonic nanoseconds since the process-global anchor (first use).
pub fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Metric cells
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Updates are single relaxed
/// atomic adds — safe to call from any thread, including dispatch-loop
/// adjacent code.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-writer-wins `f64` cell (bits in an atomic word).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets in a [`Histogram`] — covers the full `u64`
/// range (bucket 0 is the value 0; bucket 63 absorbs everything from
/// `2^62` up).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂-scale histogram of `u64` magnitudes (typically
/// nanoseconds). Bucket `b ≥ 1` holds values in `[2^(b−1), 2^b)`;
/// bucket 0 holds exactly 0. Recording is one relaxed `fetch_add` plus
/// a `fetch_min`/`fetch_max` pair maintaining the observed extremes;
/// quantiles are estimated from the bucket counts at read time (the
/// bucket's geometric midpoint, clamped into `[min, max]` — so the
/// estimate is within ~√2 of the true quantile and never reports a
/// value outside the observed range; a one-sample histogram's p99 is
/// exactly the recorded value).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Smallest recorded value (`u64::MAX` until the first record).
    min: AtomicU64,
    /// Largest recorded value (0 until the first record).
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, or `None` for an empty histogram.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded value, or `None` for an empty histogram.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the geometric midpoint of
    /// the first bucket whose cumulative count reaches `q · total`,
    /// clamped into the recorded `[min, max]` range — a bucket midpoint
    /// can overshoot the true extreme by up to √2×, and without the
    /// clamp a one-sample histogram would report a p99 larger than the
    /// only value it ever saw. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let lo = self.min.load(Ordering::Relaxed) as f64;
        let hi = self.max.load(Ordering::Relaxed) as f64;
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, cell) in self.buckets.iter().enumerate() {
            seen += cell.load(Ordering::Relaxed);
            if seen >= rank {
                let mid = if b == 0 {
                    0.0
                } else {
                    // Geometric midpoint of [2^(b-1), 2^b).
                    2f64.powf(b as f64 - 0.5)
                };
                return mid.clamp(lo, hi);
            }
        }
        2f64.powi((HISTOGRAM_BUCKETS - 1) as i32).clamp(lo, hi)
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    next_thread: AtomicU64,
    next_span: AtomicU64,
}

fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        rings: Mutex::new(Vec::new()),
        next_thread: AtomicU64::new(0),
        next_span: AtomicU64::new(0),
    })
}

/// Looks up (registering on first use) the counter named `name`. The
/// returned handle is `'static` and lock-free to update; cache it with
/// the [`counter!`] macro instead of re-resolving per event.
pub fn counter(name: &'static str) -> &'static Counter {
    lock(&registry().counters)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Looks up (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lock(&registry().gauges)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Looks up (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lock(&registry().histograms)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Cached [`counter`] lookup: resolves the registry handle once per
/// call site, so the steady-state cost is one relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::counter($name))
    }};
}

/// Cached [`gauge`] lookup (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Cached [`histogram`] lookup (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::histogram($name))
    }};
}

// ---------------------------------------------------------------------------
// Dynamically keyed metrics (per-session labels)
// ---------------------------------------------------------------------------

/// Cap on distinct dynamically keyed metric names ([`counter_keyed`] /
/// [`gauge_keyed`] / [`histogram_keyed`]). Keyed names are interned
/// (leaked once, like every registry name), so an unbounded label space
/// would be a leak; past the cap, new keys collapse into the shared
/// `<base>.overflow` cell instead of minting fresh names — bounded by
/// construction, like the span rings.
pub const MAX_KEYED_NAMES: usize = 1024;

/// Interns `"<base>.<key>"` as a `'static` registry name, collapsing to
/// `"<base>.overflow"` once [`MAX_KEYED_NAMES`] distinct names exist.
fn intern_keyed(base: &'static str, key: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let table = INTERNED.get_or_init(|| Mutex::new(BTreeMap::new()));
    let full = format!("{base}.{key}");
    let mut map = lock(table);
    if let Some(&name) = map.get(&full) {
        return name;
    }
    let minted = if map.len() >= MAX_KEYED_NAMES {
        format!("{base}.overflow")
    } else {
        full
    };
    if let Some(&name) = map.get(&minted) {
        return name;
    }
    let leaked: &'static str = Box::leak(minted.clone().into_boxed_str());
    map.insert(minted, leaked);
    leaked
}

/// A counter under a dynamic key: `counter_keyed("service.session.trials",
/// "s42")` resolves the counter `service.session.trials.s42`. Intended
/// for *bounded* key spaces (session ids of a test or soak run, shard
/// indices); see [`MAX_KEYED_NAMES`] for the backstop. Resolution takes
/// the intern lock — cache the returned handle in hot paths.
pub fn counter_keyed(base: &'static str, key: &str) -> &'static Counter {
    counter(intern_keyed(base, key))
}

/// A gauge under a dynamic key (see [`counter_keyed`]).
pub fn gauge_keyed(base: &'static str, key: &str) -> &'static Gauge {
    gauge(intern_keyed(base, key))
}

/// A histogram under a dynamic key (see [`counter_keyed`]).
pub fn histogram_keyed(base: &'static str, key: &str) -> &'static Histogram {
    histogram(intern_keyed(base, key))
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Capacity of each thread's span ring buffer. When a thread records
/// more than this many spans between snapshots the oldest are
/// overwritten (counted in [`TelemetrySnapshot::spans_dropped`]) —
/// telemetry is bounded by construction, never a memory leak.
pub const SPAN_RING_CAPACITY: usize = 512;

/// One completed span: a named interval on one thread, with a link to
/// the span that was open on the same thread when it started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`compile`, `trial`, …).
    pub name: &'static str,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Telemetry thread id (dense, assigned at each thread's first span).
    pub thread: u64,
    /// Start, in monotonic nanoseconds ([`now_ns`]).
    pub start_ns: u64,
    /// End, in monotonic nanoseconds.
    pub end_ns: u64,
}

struct RingInner {
    buf: Vec<SpanRecord>,
    /// Next write position once `buf` reached capacity.
    next: usize,
    dropped: u64,
}

struct SpanRing {
    thread: u64,
    inner: Mutex<RingInner>,
}

impl SpanRing {
    fn push(&self, rec: SpanRecord) {
        let mut g = lock(&self.inner);
        if g.buf.len() < SPAN_RING_CAPACITY {
            g.buf.push(rec);
        } else {
            let at = g.next;
            g.buf[at] = rec;
            g.next = (at + 1) % SPAN_RING_CAPACITY;
            g.dropped += 1;
        }
    }
}

struct ThreadSpans {
    ring: Arc<SpanRing>,
    /// Ids of the spans currently open on this thread, outermost first.
    stack: Vec<u64>,
}

thread_local! {
    static THREAD_SPANS: std::cell::RefCell<Option<ThreadSpans>> =
        const { std::cell::RefCell::new(None) };
}

/// An open span; records itself into the thread's ring when dropped
/// (including during a panic's unwind, so a trial that dies mid-span
/// still leaves its timing behind).
pub struct Span {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start_ns: u64,
}

/// Opens a span named `name` on the current thread. The currently open
/// span (if any) becomes its parent. Dropping the guard closes it.
pub fn span(name: &'static str) -> Span {
    let reg = registry();
    let id = reg.next_span.fetch_add(1, Ordering::Relaxed) + 1;
    let parent = THREAD_SPANS.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ts = slot.get_or_insert_with(|| {
            let ring = Arc::new(SpanRing {
                thread: reg.next_thread.fetch_add(1, Ordering::Relaxed),
                inner: Mutex::new(RingInner {
                    buf: Vec::new(),
                    next: 0,
                    dropped: 0,
                }),
            });
            lock(&reg.rings).push(Arc::clone(&ring));
            ThreadSpans {
                ring,
                stack: Vec::new(),
            }
        });
        let parent = ts.stack.last().copied();
        ts.stack.push(id);
        parent
    });
    Span {
        name,
        id,
        parent,
        start_ns: now_ns(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end_ns = now_ns();
        THREAD_SPANS.with(|cell| {
            // A drop during unwind may observe the RefCell borrowed (a
            // panic inside `span()` itself); losing one record beats
            // aborting the process with a double panic.
            let Ok(mut slot) = cell.try_borrow_mut() else {
                return;
            };
            let Some(ts) = slot.as_mut() else { return };
            // Out-of-order drops (guards moved across scopes) just
            // remove this id wherever it sits in the stack.
            if let Some(at) = ts.stack.iter().rposition(|&x| x == self.id) {
                ts.stack.truncate(at);
            }
            ts.ring.push(SpanRecord {
                name: self.name,
                id: self.id,
                parent: self.parent,
                thread: ts.ring.thread,
                start_ns: self.start_ns,
                end_ns,
            });
        });
        span_duration_histogram(self.name).record(end_ns.saturating_sub(self.start_ns));
    }
}

/// The `span.<name>.ns` duration histogram backing a span name. Span
/// names form a small closed set, so the leaked key strings are bounded.
fn span_duration_histogram(name: &'static str) -> &'static Histogram {
    static KEYS: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    let keys = KEYS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = *lock(keys)
        .entry(name)
        .or_insert_with(|| Box::leak(format!("span.{name}.ns").into_boxed_str()));
    histogram(key)
}

// ---------------------------------------------------------------------------
// Snapshot & reset
// ---------------------------------------------------------------------------

/// Point-in-time value of one counter.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Smallest recorded value (0 when the histogram is empty).
    pub min: u64,
    /// Largest recorded value (0 when the histogram is empty).
    pub max: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// Everything the registry knows, as plain data (see
/// `chef_core::report` for the JSON encoding).
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// All counters, by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Every thread's retained spans, merged and sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from full ring buffers since the last [`reset`].
    pub spans_dropped: u64,
}

impl TelemetrySnapshot {
    /// The value of counter `name`, or 0 when never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The spans named `name`, in start order.
    pub fn spans_named<'a>(&'a self, name: &str) -> Vec<&'a SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }
}

/// Snapshots every registered metric and merges all span rings.
pub fn snapshot() -> TelemetrySnapshot {
    let reg = registry();
    let counters = lock(&reg.counters)
        .iter()
        .map(|(n, c)| CounterSnapshot {
            name: n.to_string(),
            value: c.get(),
        })
        .collect();
    let gauges = lock(&reg.gauges)
        .iter()
        .map(|(n, g)| GaugeSnapshot {
            name: n.to_string(),
            value: g.get(),
        })
        .collect();
    let histograms = lock(&reg.histograms)
        .iter()
        .map(|(n, h)| HistogramSnapshot {
            name: n.to_string(),
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        })
        .collect();
    let mut spans = Vec::new();
    let mut spans_dropped = 0;
    for ring in lock(&reg.rings).iter() {
        let g = lock(&ring.inner);
        spans.extend(g.buf.iter().cloned());
        spans_dropped += g.dropped;
    }
    spans.sort_by_key(|s| (s.start_ns, s.id));
    TelemetrySnapshot {
        counters,
        gauges,
        histograms,
        spans,
        spans_dropped,
    }
}

/// Zeroes every metric and clears every span ring. Handles already held
/// by call sites stay valid (the cells are reset in place, not
/// replaced). Open spans are unaffected and will record normally.
pub fn reset() {
    let reg = registry();
    for c in lock(&reg.counters).values() {
        c.reset();
    }
    for g in lock(&reg.gauges).values() {
        g.reset();
    }
    for h in lock(&reg.histograms).values() {
        h.reset();
    }
    for ring in lock(&reg.rings).iter() {
        let mut g = lock(&ring.inner);
        g.buf.clear();
        g.next = 0;
        g.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global and [`reset`] is destructive, so
    /// tests that read-modify-assert registry state run serialized.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock(&LOCK)
    }

    #[test]
    fn counters_accumulate_and_reset_in_place() {
        let _s = serial();
        let c = counter("test.unit.counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name resolves to the same cell.
        assert_eq!(counter("test.unit.counter").get(), before + 5);
        // The macro caches but hits the same cell too.
        counter!("test.unit.counter").inc();
        assert_eq!(c.get(), before + 6);
    }

    #[test]
    fn gauges_are_last_writer_wins() {
        let _s = serial();
        let g = gauge("test.unit.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(gauge!("test.unit.gauge").get(), -1.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        // 90 small values, 10 large ones: p50 lands in the small bucket,
        // p95/p99 in the large one.
        for _ in 0..90 {
            h.record(100); // bucket 7: [64, 128)
        }
        for _ in 0..10 {
            h.record(1 << 20);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * (1 << 20));
        let p50 = h.p50();
        assert!((64.0..128.0).contains(&p50), "{p50}");
        let p95 = h.p95();
        assert!(p95 >= (1 << 20) as f64 / 2.0, "{p95}");
        assert!(h.p99() >= p95);
        // Zero maps to bucket 0 and reports 0.0.
        let z = Histogram::default();
        z.record(0);
        assert_eq!(z.p50(), 0.0);
    }

    #[test]
    fn histogram_quantiles_clamp_to_observed_range() {
        // One sample: every quantile is exactly the observed value, not
        // the bucket's geometric midpoint (100 lands in [64, 128), whose
        // midpoint ≈ 90.5 — below the sample; 65 would report ≈ 90.5 —
        // above it).
        for v in [65u64, 100, 127] {
            let h = Histogram::default();
            h.record(v);
            assert_eq!(h.p50(), v as f64);
            assert_eq!(h.p99(), v as f64);
            assert_eq!(h.min(), Some(v));
            assert_eq!(h.max(), Some(v));
        }
        // Multi-sample: quantiles stay within [min, max].
        let h = Histogram::default();
        h.record(70);
        h.record(80);
        h.record(120);
        assert!(h.p50() >= 70.0 && h.p50() <= 120.0);
        assert!(h.p99() >= 70.0 && h.p99() <= 120.0);
        assert_eq!(h.min(), Some(70));
        assert_eq!(h.max(), Some(120));
        // Empty histogram: no extremes, quantiles 0.
        let e = Histogram::default();
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
        assert_eq!(e.p99(), 0.0);
        // Reset restores the sentinels.
        h.reset();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.record(7);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(7));
        assert_eq!(h.p99(), 7.0);
    }

    #[test]
    fn histogram_bucket_of_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let _s = serial();
        let (outer_id, inner_id);
        {
            let outer = span("test.outer");
            outer_id = outer.id;
            {
                let inner = span("test.inner");
                inner_id = inner.id;
                assert_eq!(inner.parent, Some(outer.id));
            }
        }
        let snap = snapshot();
        let inner = snap.spans.iter().find(|s| s.id == inner_id).unwrap();
        let outer = snap.spans.iter().find(|s| s.id == outer_id).unwrap();
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        // Span durations feed the span.<name>.ns histograms.
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "span.test.inner.ns" && h.count >= 1));
    }

    #[test]
    fn span_ring_is_bounded_and_counts_evictions() {
        let _s = serial();
        // Run on a dedicated thread so this test owns the whole ring.
        std::thread::spawn(|| {
            for _ in 0..SPAN_RING_CAPACITY + 10 {
                drop(span("test.flood"));
            }
            let snap = snapshot();
            assert!(snap.spans_dropped >= 10);
            let mine = snap.spans_named("test.flood");
            assert!(mine.len() <= SPAN_RING_CAPACITY);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn registry_survives_a_panicking_thread_mid_span() {
        let _s = serial();
        let base = counter("test.panic.counter").get();
        let spans_before = snapshot().spans_named("test.panic.span").len();
        let r = std::thread::spawn(|| {
            counter("test.panic.counter").inc();
            let _open = span("test.panic.span");
            panic!("injected");
        })
        .join();
        assert!(r.is_err());
        // The counter survived, the span was recorded during unwind,
        // and the registry still works from this thread.
        assert_eq!(counter("test.panic.counter").get(), base + 1);
        let snap = snapshot();
        assert_eq!(snap.spans_named("test.panic.span").len(), spans_before + 1);
        counter("test.panic.counter").inc();
        assert_eq!(snap.counter("test.panic.counter"), base + 1); // snapshot is point-in-time
        assert_eq!(counter("test.panic.counter").get(), base + 2);
    }

    #[test]
    fn snapshot_and_reset_round_trip() {
        let _s = serial();
        let c = counter("test.reset.counter");
        c.add(7);
        let h = histogram("test.reset.hist");
        h.record(42);
        assert!(snapshot().counter("test.reset.counter") >= 7);
        reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        // Handles stay live after reset.
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
