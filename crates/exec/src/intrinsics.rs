//! Exact and approximate evaluation of KernelC math intrinsics.
//!
//! The VM evaluates every intrinsic in `f64`. When an [`ApproxConfig`] is
//! installed (the paper's FastApprox substitution study, §IV-5), the
//! configured intrinsics dispatch to their `fastapprox` counterparts
//! instead — exactly like relinking a C program against the approximate
//! math library.

use chef_ir::ast::Intrinsic;
use fastapprox::registry::{lookup, Grade};
use std::collections::HashMap;

/// Which intrinsics are replaced by approximations, and at which grade.
///
/// Mirrors the paper's two Black-Scholes configurations: Table IV row 1 is
/// `{log: Fast, sqrt: Fast}`; row 2 additionally sets `{exp: Faster}`.
#[derive(Clone, Debug, Default)]
pub struct ApproxConfig {
    grades: HashMap<&'static str, Grade>,
}

impl ApproxConfig {
    /// No approximations (every intrinsic exact).
    pub fn exact() -> Self {
        ApproxConfig::default()
    }

    /// Adds an approximate replacement for `name` at `grade`; panics if
    /// the function has no FastApprox counterpart.
    pub fn with(mut self, name: &'static str, grade: Grade) -> Self {
        assert!(
            lookup(name).is_some(),
            "no approximate implementation for `{name}`"
        );
        self.grades.insert(name, grade);
        self
    }

    /// The paper's "FastApprox w/o Fast exp" configuration:
    /// approximate `log` and `sqrt` (and `normcdf`, whose polynomial uses
    /// them), keep `exp` exact.
    pub fn without_fast_exp() -> Self {
        ApproxConfig::exact()
            .with("log", Grade::Fast)
            .with("sqrt", Grade::Fast)
    }

    /// The paper's "FastApprox w/ Fast exp" configuration: additionally
    /// replace `exp` with the coarse `fasterexp`.
    pub fn with_fast_exp() -> Self {
        ApproxConfig::without_fast_exp().with("exp", Grade::Faster)
    }

    /// The grade configured for `name`, if any.
    pub fn grade_of(&self, name: &str) -> Option<Grade> {
        self.grades.get(name).copied()
    }

    /// `true` if no intrinsic is approximated.
    pub fn is_exact(&self) -> bool {
        self.grades.is_empty()
    }

    /// Names of all approximated intrinsics (sorted, for reports).
    pub fn approximated(&self) -> Vec<&'static str> {
        let mut v: Vec<_> = self.grades.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Evaluates a unary intrinsic exactly (in `f64`).
#[inline]
pub fn eval_exact1(i: Intrinsic, a: f64) -> f64 {
    match i {
        Intrinsic::Sin => a.sin(),
        Intrinsic::Cos => a.cos(),
        Intrinsic::Tan => a.tan(),
        Intrinsic::Exp => a.exp(),
        Intrinsic::Log => a.ln(),
        Intrinsic::Exp2 => a.exp2(),
        Intrinsic::Log2 => a.log2(),
        Intrinsic::Sqrt => a.sqrt(),
        Intrinsic::Fabs => a.abs(),
        Intrinsic::Floor => a.floor(),
        Intrinsic::Ceil => a.ceil(),
        Intrinsic::Erf => fastapprox::erf::erf64(a),
        Intrinsic::Erfc => fastapprox::erf::erfc64(a),
        Intrinsic::NormCdf => fastapprox::erf::normcdf64(a),
        Intrinsic::Tanh => a.tanh(),
        Intrinsic::Sinh => a.sinh(),
        Intrinsic::Cosh => a.cosh(),
        Intrinsic::Atan => a.atan(),
        // The FastApprox family *is* the approximate semantics — these are
        // exact evaluations of the approximate functions.
        Intrinsic::FastExp => fastapprox::wide::fastexp64(a),
        Intrinsic::FasterExp => fastapprox::wide::fasterexp64(a),
        Intrinsic::FastLog => fastapprox::wide::fastlog64(a),
        Intrinsic::FastSqrt => fastapprox::wide::fastsqrt64(a),
        Intrinsic::FastNormCdf => fastapprox::wide::fastnormcdf64(a),
        Intrinsic::Pow | Intrinsic::Fmin | Intrinsic::Fmax => {
            panic!("{} is binary", i.name())
        }
    }
}

/// Evaluates a binary intrinsic exactly (in `f64`).
#[inline]
pub fn eval_exact2(i: Intrinsic, a: f64, b: f64) -> f64 {
    match i {
        Intrinsic::Pow => a.powf(b),
        Intrinsic::Fmin => a.min(b),
        Intrinsic::Fmax => a.max(b),
        other => panic!("{} is unary", other.name()),
    }
}

/// Evaluates a unary intrinsic under an approximation config: configured
/// names use their FastApprox replacement, everything else stays exact.
#[inline]
pub fn eval1(i: Intrinsic, a: f64, cfg: &ApproxConfig) -> f64 {
    // Fast path for the (default) exact configuration: skip the
    // string-keyed grade lookup, which would otherwise hash the intrinsic
    // name on every dispatched call in the VM's hot loop.
    if cfg.is_exact() {
        return eval_exact1(i, a);
    }
    if let Some(grade) = cfg.grade_of(i.name()) {
        if let Some(entry) = lookup(i.name()) {
            return entry.approx(grade)(a);
        }
    }
    eval_exact1(i, a)
}

/// Evaluates a binary intrinsic under an approximation config.
///
/// Of the binary intrinsics only `pow` has a FastApprox counterpart.
#[inline]
pub fn eval2(i: Intrinsic, a: f64, b: f64, cfg: &ApproxConfig) -> f64 {
    if cfg.is_exact() {
        return eval_exact2(i, a, b);
    }
    if i == Intrinsic::Pow && cfg.grade_of("pow").is_some() {
        return fastapprox::wide::fastpow64(a, b);
    }
    eval_exact2(i, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_std() {
        assert_eq!(eval_exact1(Intrinsic::Sin, 1.2), 1.2f64.sin());
        assert_eq!(eval_exact1(Intrinsic::Sqrt, 2.0), 2.0f64.sqrt());
        assert_eq!(eval_exact2(Intrinsic::Pow, 2.0, 10.0), 1024.0);
        assert_eq!(eval_exact2(Intrinsic::Fmin, 1.0, -1.0), -1.0);
    }

    #[test]
    fn approx_config_swaps_only_configured() {
        let cfg = ApproxConfig::exact().with("exp", Grade::Fast);
        let approx = eval1(Intrinsic::Exp, 1.0, &cfg);
        assert_ne!(approx, 1.0f64.exp());
        assert!((approx - 1.0f64.exp()).abs() < 1e-3);
        // log untouched.
        assert_eq!(eval1(Intrinsic::Log, 2.0, &cfg), 2.0f64.ln());
    }

    #[test]
    fn paper_configurations() {
        let row1 = ApproxConfig::without_fast_exp();
        assert_eq!(row1.approximated(), vec!["log", "sqrt"]);
        assert!(row1.grade_of("exp").is_none());
        let row2 = ApproxConfig::with_fast_exp();
        assert_eq!(row2.approximated(), vec!["exp", "log", "sqrt"]);
        assert_eq!(row2.grade_of("exp"), Some(Grade::Faster));
    }

    #[test]
    #[should_panic(expected = "no approximate implementation")]
    fn unknown_approx_name_panics() {
        let _ = ApproxConfig::exact().with("sin", Grade::Fast);
    }

    #[test]
    fn normcdf_exact_sane() {
        assert!((eval_exact1(Intrinsic::NormCdf, 0.0) - 0.5).abs() < 1e-12);
    }
}
