//! CFG + dominators + natural-loops optimizer tier.
//!
//! The fuser ([`crate::fuse`]) is a peephole over a linear instruction
//! window; this module is the first piece of *real* compiler
//! infrastructure over the bytecode: basic-block CFG construction,
//! a dominator tree (Cooper–Harvey–Kennedy iterative algorithm),
//! natural-loop detection via back edges, and a dominance-powered pass
//! tier that runs between `fuse_to_fixpoint` and `pack` (see
//! [`crate::compile::CompileOptions::cfg`], env-gated by
//! `CHEF_EXEC_CFG=0`):
//!
//! * **Loop-invariant code motion** ([`optimize`]): hoists invariant
//!   pure instructions out of natural loops into a synthesized
//!   preheader, so arclen-class kernels stop re-executing (and, in
//!   oracle mode, re-shadowing) the same computation every iteration.
//! * **Register-file compaction**: dead register slots (vacated by
//!   fusion and by hoist renaming) are squeezed out with a dense
//!   renumbering, so pooled [`crate::vm::Machine`]s allocate smaller
//!   register files on every arena checkout.
//!
//! ## Trap/deadline safety of hoisting
//!
//! Hoisting reorders an instruction relative to the loop's trip-count
//! test, so every candidate must preserve the *exact* observable trap
//! behaviour of the unoptimized stream — including the opt-in
//! [`crate::vm::TrapKind::NonFinite`] check on every float write and
//! the cooperative deadline probe at backward jumps. Candidates are
//! split into two classes:
//!
//! * **Class A — never-trapping writes**, hoisted *unguarded*: finite
//!   `FConst`, `FMov`, `FNeg`, `I2F` (an `i64 as f64` is always
//!   finite; a finite float copy/negation stays finite, because under
//!   `trap_on_nonfinite` every previously written float register has
//!   already passed its own write check), and the pure trap-free int
//!   ops (`IConst`/`IMov`/`IAdd`/`ISub`/`IMul`/`INeg`/`BNot`/`ICmp`/
//!   `IAddImm`). Executing one of these on a zero-trip entry is
//!   invisible: the write is trap-free and its value can only be read
//!   by uses dominated by the original definition.
//! * **Class B — float ops whose result may be non-finite** (`FAdd`,
//!   `FMul`, `FDiv`, rounds, intrinsics, constant-operand forms, …),
//!   hoisted behind a **zero-trip guard**: a copy of the loop header's
//!   integer compare-and-branch exit test, retargeted to skip the
//!   hoisted block when the loop would not execute. With the guard,
//!   the hoisted op executes exactly when the first iteration would
//!   have executed it, with bit-identical operands, so a `NonFinite`
//!   trap fires in the optimized stream iff it fired in the original
//!   (same kind, same source span; only the reported `pc` moves, as it
//!   already does under fusion). Class B additionally requires the
//!   defining block to dominate every back-edge source and every
//!   non-header exit source, so "first iteration runs" implies "the
//!   original instruction ran". Float-compare exit tests are never
//!   used as guards and `FCmp`/`F2I` are never hoisted: the shadow
//!   interpreter re-evaluates those on shadow operands, and
//!   duplicating or de-duplicating them would change divergence
//!   reports.
//!
//! `IDiv`/`IRem` (DivByZero), loads/stores (OobIndex, memory order),
//! tape ops (side effects) and anything reading a register written in
//! the loop are never hoisted. Deadline/budget semantics are
//! unchanged: hoisted code is straight-line (probes happen only at
//! taken backward jumps, which LICM neither adds nor removes per
//! iteration — it only removes straight-line work between them).
//!
//! Irreducible control flow (a retreating edge whose target does not
//! dominate its source — impossible to emit from KernelC but possible
//! in hand-built bytecode) makes the pass bail cleanly: no hoisting,
//! compaction only.

use crate::bytecode::{CompiledFunction, Instr, ParamKind};
use crate::fuse::{for_each_read, successors, write_of, Reg};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Version of the CFG pass tier, hashed into [`crate::store::content_key`]
/// so a persisted variant compiled by a different tier revision can
/// never warm-hit.
pub const CFG_TIER_VERSION: u32 = 1;

/// A maximal straight-line run of instructions.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// Half-open instruction range `[start, end)` into `instrs`.
    pub range: Range<usize>,
    /// Predecessor block indices (unordered, deduplicated).
    pub preds: Vec<usize>,
    /// Successor block indices (at most 2; conditional order: taken,
    /// fall-through).
    pub succs: Vec<usize>,
}

/// Control-flow graph over a compiled function's instruction stream.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks in instruction order; block 0 contains pc 0 (the entry).
    pub blocks: Vec<BasicBlock>,
    /// Reachable blocks in reverse postorder (entry first).
    pub rpo: Vec<usize>,
    /// `rpo_num[b]` = position of `b` in `rpo` (`usize::MAX` when
    /// unreachable).
    pub rpo_num: Vec<usize>,
    /// `block_of[pc]` = index of the block containing `pc`.
    pub block_of: Vec<usize>,
}

impl Cfg {
    /// Partitions the instruction stream into basic blocks (leader
    /// detection) and wires pred/succ edges + reverse postorder.
    pub fn build(func: &CompiledFunction) -> Cfg {
        let n = func.instrs.len();
        let mut leader = vec![false; n.max(1)];
        if n > 0 {
            leader[0] = true;
        }
        let mut out = [None, None];
        for (pc, ins) in func.instrs.iter().enumerate() {
            let cont = successors(ins, pc, &mut out);
            let is_term = !cont
                || matches!(
                    ins,
                    Instr::Jmp { .. }
                        | Instr::JmpIfFalse { .. }
                        | Instr::JmpIfTrue { .. }
                        | Instr::FCmpJmpFalse { .. }
                        | Instr::FCmpJmpTrue { .. }
                        | Instr::ICmpJmpFalse { .. }
                        | Instr::ICmpJmpTrue { .. }
                        | Instr::ICmpImmJmpFalse { .. }
                        | Instr::ICmpImmJmpTrue { .. }
                );
            if is_term {
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
                // Jump targets start blocks; the fall-through successor
                // of a straight-line instruction does not.
                for s in out.iter().flatten() {
                    if *s < n {
                        leader[*s] = true;
                    }
                }
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            if pc > start && leader[pc] {
                blocks.push(BasicBlock {
                    range: start..pc,
                    preds: Vec::new(),
                    succs: Vec::new(),
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(BasicBlock {
                range: start..n,
                preds: Vec::new(),
                succs: Vec::new(),
            });
        }
        for (b, blk) in blocks.iter().enumerate() {
            for pc in blk.range.clone() {
                block_of[pc] = b;
            }
        }
        // Edges come from each block's last instruction only (interior
        // instructions are straight-line by construction).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (b, blk) in blocks.iter().enumerate() {
            let last = blk.range.end - 1;
            if successors(&func.instrs[last], last, &mut out) {
                for s in out.iter().flatten() {
                    if *s < n {
                        edges.push((b, block_of[*s]));
                    }
                }
            }
        }
        let nb = blocks.len();
        for &(u, v) in &edges {
            if !blocks[u].succs.contains(&v) {
                blocks[u].succs.push(v);
            }
            if !blocks[v].preds.contains(&u) {
                blocks[v].preds.push(u);
            }
        }
        // Reverse postorder via iterative DFS from the entry block.
        let mut rpo = Vec::with_capacity(nb);
        let mut rpo_num = vec![usize::MAX; nb];
        if nb > 0 {
            let mut state = vec![0u8; nb]; // 0 unseen, 1 on stack, 2 done
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            state[0] = 1;
            let mut post = Vec::with_capacity(nb);
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < blocks[b].succs.len() {
                    let s = blocks[b].succs[*i];
                    *i += 1;
                    if state[s] == 0 {
                        state[s] = 1;
                        stack.push((s, 0));
                    }
                } else {
                    state[b] = 2;
                    post.push(b);
                    stack.pop();
                }
            }
            rpo = post.into_iter().rev().collect();
            for (i, &b) in rpo.iter().enumerate() {
                rpo_num[b] = i;
            }
        }
        Cfg {
            blocks,
            rpo,
            rpo_num,
            block_of,
        }
    }
}

/// Immediate-dominator tree over a [`Cfg`]'s reachable blocks
/// (Cooper–Harvey–Kennedy "A Simple, Fast Dominance Algorithm").
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b` (`idom[entry] == entry`;
    /// `usize::MAX` for unreachable blocks).
    pub idom: Vec<usize>,
}

impl Dominators {
    /// Iterates `idom` to fixpoint over the reverse postorder.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let nb = cfg.blocks.len();
        let mut idom = vec![usize::MAX; nb];
        if nb == 0 {
            return Dominators { idom };
        }
        let entry = cfg.rpo[0];
        idom[entry] = entry;
        let intersect = |idom: &[usize], mut u: usize, mut v: usize| -> usize {
            while u != v {
                while cfg.rpo_num[u] > cfg.rpo_num[v] {
                    u = idom[u];
                }
                while cfg.rpo_num[v] > cfg.rpo_num[u] {
                    v = idom[v];
                }
            }
            u
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &cfg.blocks[b].preds {
                    if idom[p] == usize::MAX {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// Does block `a` dominate block `b`? (Reflexive; `false` when `b`
    /// is unreachable.)
    pub fn dominates(&self, a: usize, mut b: usize) -> bool {
        if self.idom.get(b).copied().unwrap_or(usize::MAX) == usize::MAX {
            return false;
        }
        loop {
            if b == a {
                return true;
            }
            let p = self.idom[b];
            if p == b {
                return false; // reached the entry
            }
            b = p;
        }
    }
}

/// One natural loop: a back edge's header plus every block that can
/// reach the back edge without passing the header.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Header block (dominates every block in the loop).
    pub header: usize,
    /// All member blocks (sorted ascending; includes the header).
    pub blocks: Vec<usize>,
    /// Back-edge source blocks (latches), sorted.
    pub back_edges: Vec<usize>,
}

/// Detects natural loops via retreating edges. Loops sharing a header
/// are merged. Returns `None` when the CFG is irreducible (a
/// retreating edge whose target does not dominate its source) — the
/// caller must then skip loop transforms entirely.
pub fn natural_loops(cfg: &Cfg, dom: &Dominators) -> Option<Vec<NaturalLoop>> {
    let mut by_header: HashMap<usize, (HashSet<usize>, Vec<usize>)> = HashMap::new();
    for &u in &cfg.rpo {
        for &h in &cfg.blocks[u].succs {
            if cfg.rpo_num[h] == usize::MAX || cfg.rpo_num[h] > cfg.rpo_num[u] {
                continue; // forward/cross edge
            }
            if !dom.dominates(h, u) {
                return None; // irreducible
            }
            let (body, latches) = by_header.entry(h).or_default();
            latches.push(u);
            // Walk predecessors backward from the latch, stopping at
            // the header.
            body.insert(h);
            let mut stack = vec![u];
            while let Some(b) = stack.pop() {
                if body.insert(b) {
                    for &p in &cfg.blocks[b].preds {
                        if cfg.rpo_num[p] != usize::MAX {
                            stack.push(p);
                        }
                    }
                } else if b == h {
                    continue;
                }
            }
        }
    }
    let mut loops: Vec<NaturalLoop> = by_header
        .into_iter()
        .map(|(header, (body, mut latches))| {
            let mut blocks: Vec<usize> = body.into_iter().collect();
            blocks.sort_unstable();
            latches.sort_unstable();
            latches.dedup();
            NaturalLoop {
                header,
                blocks,
                back_edges: latches,
            }
        })
        .collect();
    // Innermost first (fewest blocks), then by header for determinism.
    loops.sort_by_key(|l| (l.blocks.len(), l.header));
    Some(loops)
}

/// What [`optimize`] did to one function.
#[derive(Clone, Debug, Default)]
pub struct CfgStats {
    /// Basic blocks in the pre-pass CFG.
    pub blocks: u32,
    /// Natural loops detected in the pre-pass CFG.
    pub loops: u32,
    /// Instructions hoisted to preheaders.
    pub hoisted: u32,
    /// Zero-trip guard branches synthesized.
    pub guards: u32,
    /// Register slots eliminated by compaction (all three files).
    pub regs_compacted: u32,
    /// `false` when the CFG was irreducible and loop transforms were
    /// skipped.
    pub reducible: bool,
    /// Debug-readable descriptions of the hoisted instructions, in
    /// hoist order (consumed by `repro --cfg` and the golden test).
    pub hoisted_ops: Vec<String>,
}

// ---------------------------------------------------------------------
// Register visitors (shared by use-rewriting and compaction)
// ---------------------------------------------------------------------

/// Register file a mutable operand lives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RegClass {
    F,
    I,
    A,
}

/// Calls `f(class, &mut index, is_write)` for every register operand of
/// `ins`, reads and writes alike (arrays included).
fn visit_regs_mut(ins: &mut Instr, f: &mut impl FnMut(RegClass, &mut u32, bool)) {
    use Instr::*;
    use RegClass::*;
    match ins {
        FConst { dst, .. } => f(F, &mut dst.0, true),
        FMov { dst, src } | FNeg { dst, src } | FRound { dst, src, .. } => {
            f(F, &mut src.0, false);
            f(F, &mut dst.0, true);
        }
        FAdd { dst, a, b }
        | FSub { dst, a, b }
        | FMul { dst, a, b }
        | FDiv { dst, a, b }
        | FAddRound { dst, a, b, .. }
        | FSubRound { dst, a, b, .. }
        | FMulRound { dst, a, b, .. }
        | FDivRound { dst, a, b, .. }
        | FIntr2 { dst, a, b, .. }
        | FIntr2Round { dst, a, b, .. } => {
            f(F, &mut a.0, false);
            f(F, &mut b.0, false);
            f(F, &mut dst.0, true);
        }
        FIntr1 { dst, a, .. } | FIntr1Round { dst, a, .. } => {
            f(F, &mut a.0, false);
            f(F, &mut dst.0, true);
        }
        FMulAdd { dst, a, b, c } => {
            f(F, &mut a.0, false);
            f(F, &mut b.0, false);
            f(F, &mut c.0, false);
            f(F, &mut dst.0, true);
        }
        FAddC { dst, a, .. }
        | FSubC { dst, a, .. }
        | FSubCR { dst, a, .. }
        | FMulC { dst, a, .. }
        | FDivC { dst, a, .. }
        | FDivCR { dst, a, .. } => {
            f(F, &mut a.0, false);
            f(F, &mut dst.0, true);
        }
        FCmp { dst, a, b, .. } => {
            f(F, &mut a.0, false);
            f(F, &mut b.0, false);
            f(I, &mut dst.0, true);
        }
        FLoad { dst, arr, idx } => {
            f(A, &mut arr.0, false);
            f(I, &mut idx.0, false);
            f(F, &mut dst.0, true);
        }
        FStore { arr, idx, src } => {
            f(A, &mut arr.0, false);
            f(I, &mut idx.0, false);
            f(F, &mut src.0, false);
        }
        FLoadOff { dst, arr, base, .. } => {
            f(A, &mut arr.0, false);
            f(I, &mut base.0, false);
            f(F, &mut dst.0, true);
        }
        FStoreOff { arr, base, src, .. } => {
            f(A, &mut arr.0, false);
            f(I, &mut base.0, false);
            f(F, &mut src.0, false);
        }
        F2I { dst, src } => {
            f(F, &mut src.0, false);
            f(I, &mut dst.0, true);
        }
        I2F { dst, src } => {
            f(I, &mut src.0, false);
            f(F, &mut dst.0, true);
        }
        IConst { dst, .. } => f(I, &mut dst.0, true),
        IMov { dst, src } | INeg { dst, src } | BNot { dst, src } => {
            f(I, &mut src.0, false);
            f(I, &mut dst.0, true);
        }
        IAdd { dst, a, b }
        | ISub { dst, a, b }
        | IMul { dst, a, b }
        | IDiv { dst, a, b }
        | IRem { dst, a, b }
        | ICmp { dst, a, b, .. } => {
            f(I, &mut a.0, false);
            f(I, &mut b.0, false);
            f(I, &mut dst.0, true);
        }
        IAddImm { dst, a, .. } => {
            f(I, &mut a.0, false);
            f(I, &mut dst.0, true);
        }
        ILoad { dst, arr, idx } => {
            f(A, &mut arr.0, false);
            f(I, &mut idx.0, false);
            f(I, &mut dst.0, true);
        }
        IStore { arr, idx, src } => {
            f(A, &mut arr.0, false);
            f(I, &mut idx.0, false);
            f(I, &mut src.0, false);
        }
        Jmp { .. } | RetVoid | TrapMissingReturn => {}
        JmpIfFalse { cond, .. } | JmpIfTrue { cond, .. } => f(I, &mut cond.0, false),
        FCmpJmpFalse { a, b, .. } | FCmpJmpTrue { a, b, .. } => {
            f(F, &mut a.0, false);
            f(F, &mut b.0, false);
        }
        ICmpJmpFalse { a, b, .. } | ICmpJmpTrue { a, b, .. } => {
            f(I, &mut a.0, false);
            f(I, &mut b.0, false);
        }
        ICmpImmJmpFalse { a, .. } | ICmpImmJmpTrue { a, .. } => f(I, &mut a.0, false),
        TPushF { src } => f(F, &mut src.0, false),
        TPopF { dst } => f(F, &mut dst.0, true),
        TPushI { src } => f(I, &mut src.0, false),
        TPopI { dst } => f(I, &mut dst.0, true),
        AllocF { arr, len } | AllocI { arr, len } => {
            f(I, &mut len.0, false);
            f(A, &mut arr.0, true);
        }
        RetF { src } => f(F, &mut src.0, false),
        RetI { src } | RetB { src } => f(I, &mut src.0, false),
    }
}

/// The jump-target field of `ins`, if it has one.
fn target_mut(ins: &mut Instr) -> Option<&mut u32> {
    use Instr::*;
    match ins {
        Jmp { target }
        | JmpIfFalse { target, .. }
        | JmpIfTrue { target, .. }
        | FCmpJmpFalse { target, .. }
        | FCmpJmpTrue { target, .. }
        | ICmpJmpFalse { target, .. }
        | ICmpJmpTrue { target, .. }
        | ICmpImmJmpFalse { target, .. }
        | ICmpImmJmpTrue { target, .. } => Some(target),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// LICM
// ---------------------------------------------------------------------

/// Hoist class of one candidate (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HoistClass {
    /// Never-trapping write: safe to execute on a zero-trip entry.
    TrapFree,
    /// Float op whose write may be non-finite: needs the zero-trip
    /// guard (or to already live in the header's pre-test prefix).
    NeedsGuard,
}

/// Classifies an instruction as hoistable-if-invariant. Anything with
/// side effects, trap potential beyond `NonFinite`, or a shadow
/// re-evaluation site (`FCmp`, `F2I`) is `None`.
fn hoist_class(ins: &Instr) -> Option<HoistClass> {
    use Instr::*;
    match ins {
        FConst { v, .. } => Some(if v.is_finite() {
            HoistClass::TrapFree
        } else {
            HoistClass::NeedsGuard
        }),
        FMov { .. } | FNeg { .. } | I2F { .. } => Some(HoistClass::TrapFree),
        IConst { .. }
        | IMov { .. }
        | IAdd { .. }
        | ISub { .. }
        | IMul { .. }
        | INeg { .. }
        | BNot { .. }
        | ICmp { .. }
        | IAddImm { .. } => Some(HoistClass::TrapFree),
        FAdd { .. }
        | FSub { .. }
        | FMul { .. }
        | FDiv { .. }
        | FRound { .. }
        | FIntr1 { .. }
        | FIntr2 { .. }
        | FMulAdd { .. }
        | FAddRound { .. }
        | FSubRound { .. }
        | FMulRound { .. }
        | FDivRound { .. }
        | FIntr1Round { .. }
        | FIntr2Round { .. }
        | FAddC { .. }
        | FSubC { .. }
        | FSubCR { .. }
        | FMulC { .. }
        | FDivC { .. }
        | FDivCR { .. } => Some(HoistClass::NeedsGuard),
        _ => None,
    }
}

/// One planned hoist.
struct Hoist {
    /// Original pc of the instruction (deleted from the loop).
    pc: usize,
    /// The instruction as it will appear in the preheader (dst may be
    /// renamed to a fresh register).
    ins: Instr,
    /// `(use_pc, old_reg, new_index)` read-rewrites for renamed hoists.
    rewrites: Vec<(usize, Reg, u32)>,
}

/// Per-block scalar liveness (upward-exposed uses / defs / live-out),
/// used to prove a renamed hoist's original destination value never
/// escapes its block.
struct Liveness {
    live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    fn compute(func: &CompiledFunction, cfg: &Cfg) -> Liveness {
        let nb = cfg.blocks.len();
        let mut ue = vec![HashSet::new(); nb];
        let mut def = vec![HashSet::new(); nb];
        let mut exits = vec![false; nb];
        let mut out = [None, None];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for pc in blk.range.clone() {
                let ins = &func.instrs[pc];
                for_each_read(ins, |r| {
                    if !def[b].contains(&r) {
                        ue[b].insert(r);
                    }
                });
                if let Some(w) = write_of(ins) {
                    def[b].insert(w);
                }
            }
            let last = blk.range.end - 1;
            exits[b] = !successors(&func.instrs[last], last, &mut out);
        }
        // Parameter home registers are read back by `unbind_args` after
        // the run: keep them live at every function exit.
        let mut param_live: HashSet<Reg> = HashSet::new();
        for p in &func.params {
            match p.kind {
                ParamKind::F(_) => {
                    param_live.insert(Reg::F(p.reg));
                }
                ParamKind::I | ParamKind::B => {
                    param_live.insert(Reg::I(p.reg));
                }
                ParamKind::FArr(_) | ParamKind::IArr => {}
            }
        }
        let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); nb];
        let mut live_out: Vec<HashSet<Reg>> = vec![HashSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().rev() {
                let mut new_out: HashSet<Reg> = if exits[b] {
                    param_live.clone()
                } else {
                    HashSet::new()
                };
                for &s in &cfg.blocks[b].succs {
                    new_out.extend(live_in[s].iter().copied());
                }
                let mut new_in = ue[b].clone();
                for r in new_out.iter() {
                    if !def[b].contains(r) {
                        new_in.insert(*r);
                    }
                }
                if new_out != live_out[b] || new_in != live_in[b] {
                    live_out[b] = new_out;
                    live_in[b] = new_in;
                    changed = true;
                }
            }
        }
        Liveness { live_out }
    }
}

/// Builds the zero-trip guard: a copy of the header's int
/// compare-and-branch exit test that jumps *past* the preheader (to
/// the relocated header) exactly when the loop would not run. Returns
/// `None` when the header terminator is not guardable.
fn synthesize_guard(
    func: &CompiledFunction,
    cfg: &Cfg,
    lp: &NaturalLoop,
) -> Option<(Instr, usize)> {
    use Instr::*;
    let hb = &cfg.blocks[lp.header];
    let t_pc = hb.range.end - 1;
    let ins = &func.instrs[t_pc];
    let in_loop = |b: usize| lp.blocks.binary_search(&b).is_ok();
    let target = match ins {
        JmpIfFalse { target, .. }
        | JmpIfTrue { target, .. }
        | ICmpJmpFalse { target, .. }
        | ICmpJmpTrue { target, .. }
        | ICmpImmJmpFalse { target, .. }
        | ICmpImmJmpTrue { target, .. } => *target as usize,
        _ => return None, // unconditional, float-compare, or exit
    };
    let n = func.instrs.len();
    let taken_in = target < n && in_loop(cfg.block_of[target]);
    let fall_in = t_pc + 1 < n && in_loop(cfg.block_of[t_pc + 1]);
    // Exactly one side must leave the loop.
    if taken_in == fall_in {
        return None;
    }
    // The guard reads its operands at the preheader, before the header
    // prefix runs; they must be untouched by that prefix.
    let mut operands: Vec<Reg> = Vec::new();
    for_each_read(ins, |r| operands.push(r));
    for pc in hb.range.start..t_pc {
        if let Some(w) = write_of(&func.instrs[pc]) {
            if operands.contains(&w) {
                return None;
            }
        }
    }
    // Retarget (and flip, when the exit is on the fall-through side) so
    // the guard jumps to the relocated header iff the loop exits. The
    // placeholder target 0 is patched by the caller once the preheader
    // size is known.
    let guard = if !taken_in {
        // Taken side exits: same polarity.
        let mut g = ins.clone();
        *target_mut(&mut g).unwrap() = 0;
        g
    } else {
        // Fall-through exits: flip the branch polarity.
        let mut g = match ins {
            JmpIfFalse { cond, .. } => JmpIfTrue {
                cond: *cond,
                target: 0,
            },
            JmpIfTrue { cond, .. } => JmpIfFalse {
                cond: *cond,
                target: 0,
            },
            ICmpJmpFalse { op, a, b, .. } => ICmpJmpTrue {
                op: *op,
                a: *a,
                b: *b,
                target: 0,
            },
            ICmpJmpTrue { op, a, b, .. } => ICmpJmpFalse {
                op: *op,
                a: *a,
                b: *b,
                target: 0,
            },
            ICmpImmJmpFalse { op, a, imm, .. } => ICmpImmJmpTrue {
                op: *op,
                a: *a,
                imm: *imm,
                target: 0,
            },
            ICmpImmJmpTrue { op, a, imm, .. } => ICmpImmJmpFalse {
                op: *op,
                a: *a,
                imm: *imm,
                target: 0,
            },
            _ => unreachable!(),
        };
        let _ = target_mut(&mut g);
        g
    };
    Some((guard, t_pc))
}

/// Plans the hoists for one loop. Returns the hoists plus the guard
/// (if one is needed and available).
fn plan_loop(
    func: &CompiledFunction,
    cfg: &Cfg,
    dom: &Dominators,
    live: &Liveness,
    lp: &NaturalLoop,
) -> (Vec<Hoist>, Option<(Instr, usize)>) {
    let in_loop = |b: usize| lp.blocks.binary_search(&b).is_ok();
    let hb = &cfg.blocks[lp.header];
    let header_term = hb.range.end - 1;

    // Registers written anywhere in the loop (with write counts), and
    // every read site per register in the whole function.
    let mut loop_writes: HashMap<Reg, u32> = HashMap::new();
    for &b in &lp.blocks {
        for pc in cfg.blocks[b].range.clone() {
            if let Some(w) = write_of(&func.instrs[pc]) {
                *loop_writes.entry(w).or_insert(0) += 1;
            }
        }
    }
    let mut read_sites: HashMap<Reg, Vec<usize>> = HashMap::new();
    for (pc, ins) in func.instrs.iter().enumerate() {
        for_each_read(ins, |r| read_sites.entry(r).or_default().push(pc));
    }
    let mut param_homes: HashSet<Reg> = HashSet::new();
    for p in &func.params {
        match p.kind {
            ParamKind::F(_) => {
                param_homes.insert(Reg::F(p.reg));
            }
            ParamKind::I | ParamKind::B => {
                param_homes.insert(Reg::I(p.reg));
            }
            _ => {}
        }
    }
    let named_f: HashSet<u32> = func.fvar_names.iter().map(|(r, _)| *r).collect();

    let guard = synthesize_guard(func, cfg, lp);
    // Class B from outside the header prefix additionally needs: the
    // defining block dominates every latch and every non-header exit
    // source (so "the loop runs one iteration" implies "the original
    // instruction ran").
    let mut exit_sources: Vec<usize> = Vec::new();
    let mut out = [None, None];
    for &b in &lp.blocks {
        let blk = &cfg.blocks[b];
        let last = blk.range.end - 1;
        if !successors(&func.instrs[last], last, &mut out) {
            exit_sources.push(b); // returns straight out of the loop
            continue;
        }
        if blk.succs.iter().any(|s| !in_loop(*s)) {
            exit_sources.push(b);
        }
    }

    let mut next_freg = func.n_fregs;
    let mut next_ireg = func.n_iregs;
    let mut hoists: Vec<Hoist> = Vec::new();
    let mut hoisted_dsts: HashSet<Reg> = HashSet::new();

    for &b in &lp.blocks {
        let blk = &cfg.blocks[b];
        for pc in blk.range.clone() {
            let ins = &func.instrs[pc];
            let class = match hoist_class(ins) {
                Some(c) => c,
                None => continue,
            };
            let dst = match write_of(ins) {
                Some(d) => d,
                None => continue,
            };
            // Operands must be loop-invariant (and untouched by hoists
            // already planned this round, which count as loop writes).
            let mut invariant = true;
            for_each_read(ins, |r| {
                if loop_writes.contains_key(&r) {
                    invariant = false;
                }
            });
            if !invariant {
                continue;
            }
            // Trap-safety placement rules for floats that may produce a
            // non-finite write.
            if class == HoistClass::NeedsGuard {
                let in_header_prefix = b == lp.header && pc < header_term;
                if !in_header_prefix {
                    if guard.is_none() {
                        continue;
                    }
                    if !lp.back_edges.iter().all(|&l| dom.dominates(b, l)) {
                        continue;
                    }
                    if !exit_sources
                        .iter()
                        .all(|&s| s == lp.header || dom.dominates(b, s))
                    {
                        continue;
                    }
                }
            }
            let writes_of_dst = loop_writes.get(&dst).copied().unwrap_or(0);
            let reads = read_sites.get(&dst).cloned().unwrap_or_default();
            if writes_of_dst == 1 && !param_homes.contains(&dst) {
                // Single-writer path: keep the destination, require the
                // defining block to dominate every read in the function.
                let mut ok = true;
                for &u in &reads {
                    let ub = cfg.block_of[u];
                    if ub == b {
                        if u <= pc {
                            ok = false;
                        }
                    } else if !dom.dominates(b, ub) {
                        ok = false;
                    }
                }
                if ok {
                    hoists.push(Hoist {
                        pc,
                        ins: ins.clone(),
                        rewrites: Vec::new(),
                    });
                    hoisted_dsts.insert(dst);
                    // Its dst now counts as written outside the loop
                    // only; later candidates reading it must wait for
                    // the next round.
                    continue;
                }
            }
            // Renamed path: fresh destination register, rewrite the
            // reads of this def inside its block window. Only for
            // unnamed non-param destinations (renaming a named variable
            // would change shadow attribution and trap naming).
            if param_homes.contains(&dst) {
                continue;
            }
            if let Reg::F(d) = dst {
                if named_f.contains(&d) {
                    continue;
                }
            }
            // Window: (pc, next write of dst in this block]. The def
            // must not escape the block unless overwritten first.
            let mut window_end = blk.range.end;
            let mut closed_by_write = false;
            for w in pc + 1..blk.range.end {
                if write_of(&func.instrs[w]) == Some(dst) {
                    window_end = w + 1; // its reads still see the old def
                    closed_by_write = true;
                    break;
                }
            }
            if !closed_by_write && live.live_out[b].contains(&dst) {
                continue;
            }
            // Reads of dst outside the window would observe the deleted
            // def: reject (can only happen via same-block reads before
            // pc; cross-block reads imply live-out, handled above).
            if reads
                .iter()
                .any(|&u| cfg.block_of[u] == b && (u <= pc || u >= window_end))
            {
                continue;
            }
            let fresh = match dst {
                Reg::F(_) => {
                    let r = next_freg;
                    next_freg += 1;
                    Reg::F(r)
                }
                Reg::I(_) => {
                    let r = next_ireg;
                    next_ireg += 1;
                    Reg::I(r)
                }
            };
            let mut renamed = ins.clone();
            visit_regs_mut(&mut renamed, &mut |class, idx, is_write| {
                if is_write {
                    match (fresh, class) {
                        (Reg::F(nr), RegClass::F) | (Reg::I(nr), RegClass::I) => *idx = nr,
                        _ => {}
                    }
                }
            });
            let fresh_idx = match fresh {
                Reg::F(i) | Reg::I(i) => i,
            };
            let rewrites: Vec<(usize, Reg, u32)> = reads
                .iter()
                .filter(|&&u| u > pc && u < window_end)
                .map(|&u| (u, dst, fresh_idx))
                .collect();
            hoists.push(Hoist {
                pc,
                ins: renamed,
                rewrites,
            });
            hoisted_dsts.insert(fresh);
        }
    }

    // A hoisted write must not feed the guard: the guard runs before
    // the hoisted block, and the first header test must still read the
    // same values it used to. Single-writer hoists can only reach the
    // header test from the header prefix (covered by use-dominance);
    // fresh renames never collide. Guard operands clashing with a
    // planned hoist's original prefix position are rejected inside
    // `synthesize_guard` via the prefix-write scan.
    let needs_guard = hoists.iter().any(|h| {
        hoist_class(&func.instrs[h.pc]) == Some(HoistClass::NeedsGuard)
            && !(cfg.block_of[h.pc] == lp.header && h.pc < header_term)
    });
    (hoists, if needs_guard { guard } else { None })
}

/// Rebuilds the instruction stream with `hoists` (and the optional
/// guard) inserted as a preheader at the loop header, deleting the
/// hoisted originals and remapping every jump target.
fn apply_plan(
    func: &mut CompiledFunction,
    cfg: &Cfg,
    lp: &NaturalLoop,
    hoists: Vec<Hoist>,
    guard: Option<(Instr, usize)>,
) {
    let h = cfg.blocks[lp.header].range.start;
    let n = func.instrs.len();
    let hoist_set: HashSet<usize> = hoists.iter().map(|x| x.pc).collect();
    let mut rewrites: HashMap<usize, Vec<(Reg, u32)>> = HashMap::new();
    for hs in &hoists {
        for &(u, old, new) in &hs.rewrites {
            rewrites.entry(u).or_default().push((old, new));
        }
    }
    // kept_before[i] = number of non-hoisted pcs in [h, i).
    let mut kept_before = vec![0usize; n + 1];
    for pc in h..n {
        kept_before[pc + 1] = kept_before[pc] + usize::from(!hoist_set.contains(&pc));
    }
    let k = hoists.len() + usize::from(guard.is_some());
    let in_loop = |b: usize| lp.blocks.binary_search(&b).is_ok();
    let remap_target = |t: usize, src_pc: usize| -> usize {
        if t < h {
            t
        } else if t == h {
            // Back edges skip the preheader; outside entries run it.
            if in_loop(cfg.block_of[src_pc]) {
                h + k
            } else {
                h
            }
        } else {
            h + k + kept_before[t.min(n)] + t.saturating_sub(n)
        }
    };

    let mut instrs = Vec::with_capacity(n + k);
    let mut spans = Vec::with_capacity(n + k);
    let mut max_f = func.n_fregs;
    let mut max_i = func.n_iregs;
    for old_pc in 0..n {
        if old_pc == h {
            if let Some((g, g_pc)) = &guard {
                let mut g = g.clone();
                *target_mut(&mut g).unwrap() = (h + k) as u32;
                instrs.push(g);
                spans.push(func.spans[*g_pc]);
            }
            for hs in &hoists {
                let mut reg_hi = |class: RegClass, idx: &mut u32, _w: bool| match class {
                    RegClass::F => max_f = max_f.max(*idx + 1),
                    RegClass::I => max_i = max_i.max(*idx + 1),
                    RegClass::A => {}
                };
                let mut ins = hs.ins.clone();
                visit_regs_mut(&mut ins, &mut reg_hi);
                instrs.push(ins);
                spans.push(func.spans[hs.pc]);
            }
        }
        if hoist_set.contains(&old_pc) {
            continue;
        }
        let mut ins = func.instrs[old_pc].clone();
        if let Some(rw) = rewrites.get(&old_pc) {
            visit_regs_mut(&mut ins, &mut |class, idx, is_write| {
                if is_write {
                    return;
                }
                for &(old, new) in rw {
                    match (old, class) {
                        (Reg::F(o), RegClass::F) | (Reg::I(o), RegClass::I) if *idx == o => {
                            *idx = new;
                        }
                        _ => {}
                    }
                }
            });
        }
        if let Some(t) = target_mut(&mut ins) {
            *t = remap_target(*t as usize, old_pc) as u32;
        }
        instrs.push(ins);
        spans.push(func.spans[old_pc]);
    }
    func.instrs = instrs;
    func.spans = spans;
    func.n_fregs = max_f;
    func.n_iregs = max_i;
}

// ---------------------------------------------------------------------
// Register compaction
// ---------------------------------------------------------------------

/// Densely renumbers the three register files, dropping slots that are
/// neither referenced by an instruction, a parameter home, nor a named
/// variable (names are kept so shadow attribution and trap naming are
/// unchanged). Returns the number of slots eliminated.
fn compact_registers(func: &mut CompiledFunction) -> u32 {
    let mut f_used = vec![false; func.n_fregs as usize];
    let mut i_used = vec![false; func.n_iregs as usize];
    let mut a_used = vec![false; func.n_aregs as usize];
    let mut mark = |class: RegClass, idx: &mut u32, _w: bool| {
        let i = *idx as usize;
        match class {
            RegClass::F => f_used[i] = true,
            RegClass::I => i_used[i] = true,
            RegClass::A => a_used[i] = true,
        }
    };
    for ins in &mut func.instrs {
        visit_regs_mut(ins, &mut mark);
    }
    for p in &func.params {
        match p.kind {
            ParamKind::F(_) => f_used[p.reg as usize] = true,
            ParamKind::I | ParamKind::B => i_used[p.reg as usize] = true,
            ParamKind::FArr(_) | ParamKind::IArr => a_used[p.reg as usize] = true,
        }
    }
    for (r, _) in &func.fvar_names {
        f_used[*r as usize] = true;
    }
    for (r, _) in &func.avar_names {
        a_used[*r as usize] = true;
    }
    let dense = |used: &[bool]| -> (Vec<u32>, u32) {
        let mut map = vec![u32::MAX; used.len()];
        let mut next = 0u32;
        for (i, &u) in used.iter().enumerate() {
            if u {
                map[i] = next;
                next += 1;
            }
        }
        (map, next)
    };
    let (f_map, nf) = dense(&f_used);
    let (i_map, ni) = dense(&i_used);
    let (a_map, na) = dense(&a_used);
    let saved = (func.n_fregs - nf) + (func.n_iregs - ni) + (func.n_aregs - na);
    if saved == 0 {
        return 0;
    }
    for ins in &mut func.instrs {
        visit_regs_mut(ins, &mut |class, idx, _w| {
            *idx = match class {
                RegClass::F => f_map[*idx as usize],
                RegClass::I => i_map[*idx as usize],
                RegClass::A => a_map[*idx as usize],
            };
        });
    }
    for p in &mut func.params {
        p.reg = match p.kind {
            ParamKind::F(_) => f_map[p.reg as usize],
            ParamKind::I | ParamKind::B => i_map[p.reg as usize],
            ParamKind::FArr(_) | ParamKind::IArr => a_map[p.reg as usize],
        };
    }
    for (r, _) in &mut func.fvar_names {
        *r = f_map[*r as usize];
    }
    for (r, _) in &mut func.avar_names {
        *r = a_map[*r as usize];
    }
    func.n_fregs = nf;
    func.n_iregs = ni;
    func.n_aregs = na;
    saved
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

const MAX_ROUNDS: u32 = 64;

/// Runs the CFG pass tier on a (typically post-fusion) function:
/// iterated LICM (one loop per round, innermost first, full CFG
/// recompute after each change) followed by register compaction.
/// Invalidates `func.packed` — [`crate::compile::compile`] re-packs
/// afterwards.
pub fn optimize(func: &mut CompiledFunction) -> CfgStats {
    func.packed = None;
    let mut stats = CfgStats {
        reducible: true,
        ..CfgStats::default()
    };
    let mut round = 0u32;
    'rounds: loop {
        round += 1;
        if round > MAX_ROUNDS {
            break;
        }
        let _build = chef_telemetry::span("cfg.build");
        let cfg = Cfg::build(func);
        let dom = Dominators::compute(&cfg);
        let loops = match natural_loops(&cfg, &dom) {
            Some(l) => l,
            None => {
                stats.reducible = false;
                if round == 1 {
                    stats.blocks = cfg.blocks.len() as u32;
                }
                break;
            }
        };
        if round == 1 {
            stats.blocks = cfg.blocks.len() as u32;
            stats.loops = loops.len() as u32;
        }
        drop(_build);
        let _licm = chef_telemetry::span("licm");
        let live = Liveness::compute(func, &cfg);
        for lp in &loops {
            let (hoists, guard) = plan_loop(func, &cfg, &dom, &live, lp);
            if hoists.is_empty() {
                continue;
            }
            stats.hoisted += hoists.len() as u32;
            stats.guards += u32::from(guard.is_some());
            for h in &hoists {
                stats.hoisted_ops.push(format!("{:?}", h.ins));
            }
            apply_plan(func, &cfg, lp, hoists, guard);
            continue 'rounds;
        }
        break;
    }
    stats.regs_compacted = compact_registers(func);
    chef_telemetry::counter("exec.cfg.blocks").add(stats.blocks as u64);
    chef_telemetry::counter("exec.cfg.loops").add(stats.loops as u64);
    chef_telemetry::counter("exec.licm.hoisted").add(stats.hoisted as u64);
    chef_telemetry::counter("exec.regs.compacted").add(stats.regs_compacted as u64);
    stats
}

/// Human-readable dump of the function's CFG: blocks (with pred/succ
/// edges), the dominator tree, and detected natural loops. Consumed by
/// `repro --cfg <kernel>` and the pinned arclen golden test.
pub fn dump(func: &CompiledFunction) -> String {
    use std::fmt::Write;
    let cfg = Cfg::build(func);
    let dom = Dominators::compute(&cfg);
    let loops = natural_loops(&cfg, &dom);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "cfg {}: {} instrs, {} blocks",
        func.name,
        func.instrs.len(),
        cfg.blocks.len()
    );
    for (b, blk) in cfg.blocks.iter().enumerate() {
        let _ = writeln!(
            s,
            "  b{b}: pc {}..{} preds={:?} succs={:?} idom={}",
            blk.range.start,
            blk.range.end,
            blk.preds,
            blk.succs,
            if dom.idom[b] == usize::MAX {
                "-".to_string()
            } else {
                format!("b{}", dom.idom[b])
            }
        );
    }
    match &loops {
        None => {
            let _ = writeln!(s, "  loops: irreducible (pass bails)");
        }
        Some(ls) => {
            let _ = writeln!(s, "  loops: {}", ls.len());
            for l in ls {
                let _ = writeln!(
                    s,
                    "    header=b{} blocks={:?} latches={:?}",
                    l.header, l.blocks, l.back_edges
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{CmpOp, IReg, ParamSpec, RetKind};
    use crate::value::ArgValue;
    use chef_ir::span::Span;

    fn int_func(instrs: Vec<Instr>, n_iregs: u32) -> CompiledFunction {
        let spans = vec![Span::default(); instrs.len()];
        CompiledFunction {
            name: "hand".into(),
            instrs,
            spans,
            n_fregs: 0,
            n_iregs,
            n_aregs: 0,
            params: vec![ParamSpec {
                name: "p".into(),
                kind: ParamKind::I,
                by_ref: false,
                reg: 0,
            }],
            ret: RetKind::I,
            fvar_names: vec![],
            avar_names: vec![],
            packed: None,
        }
    }

    /// Classic irreducible shape: entry branches into both halves of a
    /// two-entry cycle.
    fn irreducible_func() -> CompiledFunction {
        use Instr::*;
        int_func(
            vec![
                // E: p != 0 -> B (pc 4)
                JmpIfTrue {
                    cond: IReg(0),
                    target: 4,
                },
                // A:
                IAddImm {
                    dst: IReg(1),
                    a: IReg(1),
                    imm: 1,
                },
                ICmpImmJmpTrue {
                    op: CmpOp::Gt,
                    a: IReg(1),
                    imm: 100,
                    target: 6,
                },
                Jmp { target: 4 },
                // B:
                IAddImm {
                    dst: IReg(1),
                    a: IReg(1),
                    imm: 2,
                },
                // retreating edge B -> A whose target does not dominate it
                ICmpImmJmpFalse {
                    op: CmpOp::Gt,
                    a: IReg(1),
                    imm: 100,
                    target: 1,
                },
                // X:
                RetI { src: IReg(1) },
            ],
            2,
        )
    }

    /// Hand-built doubly nested counting loop.
    fn nested_func() -> CompiledFunction {
        use Instr::*;
        int_func(
            vec![
                // E: s = 0; i = 0
                IConst { dst: IReg(1), v: 0 }, // 0: s
                IConst { dst: IReg(2), v: 0 }, // 1: i
                // H1: i < p ? fall : exit
                ICmpJmpFalse {
                    op: CmpOp::Lt,
                    a: IReg(2),
                    b: IReg(0),
                    target: 10,
                }, // 2
                // j = 0
                IConst { dst: IReg(3), v: 0 }, // 3
                // H2: j < p ? fall : latch1
                ICmpJmpFalse {
                    op: CmpOp::Lt,
                    a: IReg(3),
                    b: IReg(0),
                    target: 8,
                }, // 4
                // body2: s += 1; j += 1
                IAddImm {
                    dst: IReg(1),
                    a: IReg(1),
                    imm: 1,
                }, // 5
                IAddImm {
                    dst: IReg(3),
                    a: IReg(3),
                    imm: 1,
                }, // 6
                Jmp { target: 4 }, // 7
                // latch1: i += 1
                IAddImm {
                    dst: IReg(2),
                    a: IReg(2),
                    imm: 1,
                }, // 8
                Jmp { target: 2 }, // 9
                // exit
                RetI { src: IReg(1) }, // 10
            ],
            4,
        )
    }

    #[test]
    fn irreducible_cfg_is_detected_and_pass_bails() {
        let func = irreducible_func();
        let cfg = Cfg::build(&func);
        let dom = Dominators::compute(&cfg);
        assert!(natural_loops(&cfg, &dom).is_none(), "must flag irreducible");

        let mut opt = func.clone();
        let stats = optimize(&mut opt);
        assert!(!stats.reducible);
        assert_eq!(stats.hoisted, 0, "irreducible CFG must not hoist");
        // The stream itself is untouched by LICM (compaction may
        // renumber, but this function uses every register).
        let before = crate::vm::run(&func, vec![ArgValue::I(1)]).unwrap();
        let after = crate::vm::run(&opt, vec![ArgValue::I(1)]).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(before.stats.instrs_executed, after.stats.instrs_executed);
    }

    #[test]
    fn nested_loops_are_detected_with_correct_nesting() {
        let func = nested_func();
        let cfg = Cfg::build(&func);
        let dom = Dominators::compute(&cfg);
        let loops = natural_loops(&cfg, &dom).expect("reducible");
        assert_eq!(loops.len(), 2);
        // Innermost (fewest blocks) first.
        let inner = &loops[0];
        let outer = &loops[1];
        assert!(inner.blocks.len() < outer.blocks.len());
        for b in &inner.blocks {
            assert!(
                outer.blocks.contains(b),
                "inner loop must be nested in outer"
            );
        }
        assert_ne!(inner.header, outer.header);
        assert!(dom.dominates(outer.header, inner.header));
        // Headers dominate their members.
        for &b in &inner.blocks {
            assert!(dom.dominates(inner.header, b));
        }
        // Entry block dominates everything reachable.
        for &b in &cfg.rpo {
            assert!(dom.dominates(cfg.rpo[0], b));
        }
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let func = nested_func();
        let cfg = Cfg::build(&func);
        assert_eq!(cfg.rpo[0], cfg.block_of[0]);
        assert_eq!(cfg.rpo.len(), cfg.blocks.len());
        // Every edge u->v that is not a back edge satisfies
        // rpo_num[u] < rpo_num[v].
        let dom = Dominators::compute(&cfg);
        for &u in &cfg.rpo {
            for &v in &cfg.blocks[u].succs {
                if !dom.dominates(v, u) {
                    assert!(cfg.rpo_num[u] < cfg.rpo_num[v]);
                }
            }
        }
    }

    #[test]
    fn nested_hand_loop_runs_identically_after_optimize() {
        let func = nested_func();
        let mut opt = func.clone();
        let stats = optimize(&mut opt);
        assert!(stats.reducible);
        for n in [0i64, 1, 2, 7] {
            let a = crate::vm::run(&func, vec![ArgValue::I(n)]).unwrap();
            let b = crate::vm::run(&opt, vec![ArgValue::I(n)]).unwrap();
            assert_eq!(a.ret, b.ret, "n={n}");
        }
    }

    #[test]
    fn compaction_drops_dead_registers_and_preserves_behavior() {
        use Instr::*;
        // Registers 5/9 are allocated but never touched.
        let mut func = int_func(
            vec![
                IAddImm {
                    dst: IReg(7),
                    a: IReg(0),
                    imm: 3,
                },
                RetI { src: IReg(7) },
            ],
            10,
        );
        let before = crate::vm::run(&func, vec![ArgValue::I(4)]).unwrap();
        let saved = compact_registers(&mut func);
        assert!(
            saved >= 7,
            "expected most of the 10 iregs dropped, saved {saved}"
        );
        assert_eq!(func.n_iregs, 2);
        let after = crate::vm::run(&func, vec![ArgValue::I(4)]).unwrap();
        assert_eq!(before.ret, after.ret);
    }

    #[test]
    fn licm_hoists_invariant_float_mul_out_of_compiled_loop() {
        // `h * h` is invariant; the division by the loop-variant `i`
        // keeps fusion from folding the multiply into an FMulAdd.
        let src = "double f(double h, int n) {
            double s = 0.0;
            for (int i = 1; i <= n; i++) { s = s + h * h / i; }
            return s;
        }";
        let mut p = chef_ir::parser::parse_program(src).unwrap();
        chef_ir::typeck::check_program(&mut p).unwrap();
        let base = crate::compile::compile(
            &p.functions[0],
            &crate::compile::CompileOptions {
                cfg: false,
                ..Default::default()
            },
        )
        .unwrap();
        let mut opt = base.clone();
        let stats = optimize(&mut opt);
        assert!(stats.reducible);
        assert!(
            stats.hoisted >= 1,
            "h*h must hoist; dump:\n{}\n{}",
            dump(&base),
            base.disassemble()
        );
        let args = || vec![ArgValue::F(1.5), ArgValue::I(10)];
        let a = crate::vm::run(&base, args()).unwrap();
        let b = crate::vm::run(&opt, args()).unwrap();
        assert_eq!(a.ret, b.ret);
        assert!(b.stats.instrs_executed < a.stats.instrs_executed);
        // Zero-trip and single-trip entries agree too (guard paths).
        for n in [0i64, 1] {
            let a = crate::vm::run(&base, vec![ArgValue::F(1.5), ArgValue::I(n)]).unwrap();
            let b = crate::vm::run(&opt, vec![ArgValue::F(1.5), ArgValue::I(n)]).unwrap();
            assert_eq!(a.ret, b.ret, "n={n}");
        }
    }
}
