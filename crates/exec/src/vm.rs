//! The register VM that executes compiled KernelC.
//!
//! One call = one function activation (user calls are inlined before
//! compilation). The VM reports execution statistics — instruction count,
//! tape peak, allocated array bytes — that the benchmark harness turns
//! into the analysis-time and peak-memory series of the paper's Figs. 4–8.
//!
//! ## Execution engine
//!
//! The engine is built for the analysis loop's call pattern: the same
//! compiled function executed thousands of times (sensitivity profiling,
//! tuner candidate evaluation, the benchmark sweeps).
//!
//! * [`Machine`] owns the register files, array slots and the [`Tape`]
//!   and is **reusable**: [`Machine::reset`] re-sizes the buffers for a
//!   function without releasing their capacity, so repeated
//!   [`Machine::run_reused`] calls allocate nothing after warm-up.
//! * The convenience entry points [`run`]/[`run_with`] dispatch through a
//!   thread-local cached machine and inherit that reuse transparently.
//! * Register operands are bounds-validated **once per call**
//!   ([`validate_function`]) and then accessed unchecked in the dispatch
//!   loop; array *element* indices remain checked on every access (they
//!   are runtime values).
//! * The [`ExecOptions::max_instrs`] budget is enforced at basic-block
//!   granularity — on taken backward jumps and at returns — instead of
//!   per instruction, so the budget may be overshot by at most one
//!   straight-line block.
//! * [`run_batch`] amortizes one machine over a whole argument batch, and
//!   [`run_batch_parallel`] fans a batch out over scoped threads (one
//!   machine per thread).

use crate::bytecode::*;
use crate::intrinsics::{eval1, eval2, ApproxConfig};
use crate::precision::round_to;
use crate::tape::{Tape, TapeError};
use crate::value::{ArgValue, Value};
use chef_ir::span::Span;
use chef_ir::types::FloatTy;
use std::cell::RefCell;

/// Runtime execution options.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Approximate-intrinsics configuration (the FastApprox relink).
    pub approx: ApproxConfig,
    /// Tape memory budget in bytes; exceeding it traps with
    /// [`TrapKind::Tape`] — this reproduces the ADAPT out-of-memory points
    /// in the paper's figures.
    pub tape_limit: Option<usize>,
    /// Safety valve for tests: trap after (approximately) this many
    /// instructions. Checked at block granularity: the trap fires at the
    /// first backward jump or return after the budget is exhausted, so a
    /// run may execute up to one straight-line block past the budget.
    pub max_instrs: Option<u64>,
    /// Cooperative wall-clock deadline (off by default): the run traps
    /// with [`TrapKind::DeadlineExceeded`] at the first budget checkpoint
    /// (taken backward jump) past the instant. The clock is only
    /// consulted every [`DEADLINE_STRIDE`] executed instructions, so an
    /// armed deadline costs one `Instant::now()` per stride and a
    /// disarmed one costs a single always-false compare per backward
    /// jump — the same cost class as the `max_instrs` check. Deadlines
    /// are the per-trial wall budget of `chef-service` sessions; like
    /// the instruction budget, exceeding one is a typed trap with pc
    /// attribution, never a panic.
    pub deadline: Option<std::time::Instant>,
    /// Shadow-execution divergence detection (on by default): the fused
    /// shadow pass re-evaluates every float comparison and float→int
    /// truncation on the shadow operands and records a
    /// [`crate::shadow::DivergencePoint`] whenever the decision differs
    /// from the primal one. Ignored by the plain VM; turn off only to
    /// benchmark the raw fused pass (`shadow/divergence-overhead`).
    pub detect_divergence: bool,
    /// Trap with [`TrapKind::NonFinite`] the first time a float write —
    /// an instruction result, a demoted parameter's entry rounding, or a
    /// rounded return — produces NaN or ±Inf (off by default). The trap
    /// carries the pc, the disassembled opcode and, when the destination
    /// register is a named variable's home, the variable name, so a
    /// demoted config that overflows is attributed instead of flowing
    /// silently into downstream comparisons.
    pub trap_on_nonfinite: bool,
    /// Deterministic fault injection (tests/CI only, `None` by default):
    /// each call draws from the plan and may be turned into an injected
    /// trap, panic, or NaN before the dispatch loop starts. See
    /// [`crate::fault::FaultPlan`].
    pub fault: Option<crate::fault::FaultPlan>,
    /// Per-pc execution profiling (off by default): every dispatch loop
    /// iteration increments a per-instruction counter, surfaced as
    /// [`CallOutcome::profile`] / `ShadowOutcome::profile`
    /// ([`ExecProfile`]). The flag selects a separately monomorphized
    /// copy of each dispatch loop (`<const PROFILE: bool>`), so the
    /// off path's machine code is unchanged — the `telemetry/overhead`
    /// bench group pins the off-mode ratio at ≤1.02×.
    pub profile: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            approx: ApproxConfig::default(),
            tape_limit: None,
            max_instrs: None,
            deadline: None,
            detect_divergence: true,
            trap_on_nonfinite: false,
            fault: None,
            profile: false,
        }
    }
}

impl ExecOptions {
    /// `self` with [`ExecOptions::deadline`] armed `budget` from now —
    /// the per-trial wall clock starts at the call, not at queue time.
    pub fn deadline_in(mut self, budget: std::time::Duration) -> Self {
        self.deadline = Some(std::time::Instant::now() + budget);
        self
    }
}

/// Instructions between wall-clock reads when [`ExecOptions::deadline`]
/// is armed. The dispatch loops compare `executed` against the next
/// probe point at every taken backward jump (one register compare, the
/// same checkpoint the instruction budget uses) and only touch
/// `Instant::now()` when the stride is crossed, so a deadline can be
/// overshot by at most one stride of work plus one straight-line block.
pub const DEADLINE_STRIDE: u64 = 8 * 1024;

/// Amortized deadline probe shared by all four dispatch loops. Returns
/// `true` when the armed deadline has passed; otherwise advances `next`
/// by one stride. Cold: reached at most once per [`DEADLINE_STRIDE`]
/// executed instructions, and never when no deadline is armed (`next`
/// stays at `u64::MAX` then).
#[cold]
#[inline(never)]
pub(crate) fn deadline_probe(
    deadline: Option<std::time::Instant>,
    executed: u64,
    next: &mut u64,
) -> bool {
    match deadline {
        Some(d) if std::time::Instant::now() >= d => true,
        Some(_) => {
            *next = executed.saturating_add(DEADLINE_STRIDE);
            false
        }
        None => false,
    }
}

/// Why execution trapped.
#[derive(Clone, Debug, PartialEq)]
pub enum TrapKind {
    /// Tape failure (out of memory / underflow).
    Tape(TapeError),
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array access out of bounds.
    OobIndex {
        /// The offending index.
        idx: i64,
        /// The array length.
        len: usize,
    },
    /// Negative length in a local array allocation.
    NegativeArrayLen(i64),
    /// Control reached the end of a non-void function.
    MissingReturn,
    /// The [`ExecOptions::max_instrs`] budget was exhausted. `executed`
    /// is the block-granular instruction count at the checkpoint that
    /// fired (≥ the budget, overshooting by at most one straight-line
    /// block), so retry policies can escalate proportionally instead of
    /// guessing.
    InstrBudgetExhausted {
        /// Instructions executed when the budget checkpoint fired.
        executed: u64,
    },
    /// The [`ExecOptions::deadline`] passed. Fired cooperatively at a
    /// taken backward jump (the same checkpoints as the instruction
    /// budget, probed every [`DEADLINE_STRIDE`] instructions), so the
    /// trap's `pc`/span attribute the loop that was running when the
    /// wall budget ran out.
    DeadlineExceeded {
        /// Block-granular instructions executed when the deadline
        /// checkpoint fired.
        executed: u64,
    },
    /// A float write produced NaN or ±Inf under
    /// [`ExecOptions::trap_on_nonfinite`].
    NonFinite {
        /// The offending value (NaN, +Inf or −Inf).
        value: f64,
        /// Disassembled mnemonic of the producing instruction (or
        /// `"bind_args"` / `"ret"` for entry rounding and return sites).
        op: String,
        /// Name of the variable whose home register was written, when
        /// the destination is a named variable (not a temporary).
        var: Option<String>,
    },
    /// Argument count/kind mismatch at call entry.
    BadArguments(String),
    /// The compiled function references registers or jump targets outside
    /// its declared files (malformed hand-built bytecode; caught by the
    /// per-call validation before execution starts).
    InvalidBytecode(String),
}

/// A trap with its program location.
#[derive(Clone, Debug, PartialEq)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// Instruction index.
    pub pc: usize,
    /// Source span of the trapping instruction.
    pub span: Span,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trap at pc {}: {:?}", self.pc, self.kind)
    }
}

impl std::error::Error for Trap {}

/// Execution statistics for one call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Instructions executed (each fused superinstruction counts once).
    pub instrs_executed: u64,
    /// Tape high-water mark in bytes.
    pub tape_peak_bytes: usize,
    /// Total tape pushes (traffic).
    pub tape_total_pushes: u64,
    /// Bytes allocated for local arrays (sum over allocations).
    pub local_array_bytes: usize,
    /// Bytes of array arguments passed in.
    pub arg_array_bytes: usize,
}

impl ExecStats {
    /// Peak working-set estimate: argument arrays + local arrays + tape
    /// peak. This is the "Memory (MB)" series of Figs. 4–8.
    pub fn peak_memory_bytes(&self) -> usize {
        self.arg_array_bytes + self.local_array_bytes + self.tape_peak_bytes
    }
}

/// Per-pc execution profile of one call, recorded when
/// [`ExecOptions::profile`] is set. `pc_counts[pc]` is the number of
/// dispatch-loop iterations that executed `func.instrs[pc]` (fused
/// superinstructions count once, like [`ExecStats::instrs_executed`]);
/// on a successful run the counts sum to exactly `instrs_executed` in
/// all four dispatch loops (vm + shadow × enum + packed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// Execution count per instruction index, sized `func.instrs.len()`.
    pub pc_counts: Vec<u64>,
}

impl ExecProfile {
    /// Total dispatched instructions (equals
    /// [`ExecStats::instrs_executed`] on successful runs).
    pub fn total(&self) -> u64 {
        self.pc_counts.iter().sum()
    }

    /// The `n` hottest pcs as `(pc, count)`, hottest first (count ties
    /// broken by pc for determinism). Zero-count pcs are omitted.
    pub fn hottest(&self, n: usize) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self
            .pc_counts
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Dispatch counts aggregated by opcode mnemonic, hottest first
    /// (ties broken alphabetically).
    pub fn opcode_histogram(&self, func: &CompiledFunction) -> Vec<(String, u64)> {
        let mut by_op: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for (pc, &c) in self.pc_counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if let Some(ins) = func.instrs.get(pc) {
                *by_op.entry(instr_mnemonic(ins)).or_insert(0) += c;
            }
        }
        let mut v: Vec<(String, u64)> = by_op.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Accumulates another profile of the same function (for aggregating
    /// across a batch of calls). Panics on mismatched lengths unless one
    /// side is empty.
    pub fn merge(&mut self, other: &ExecProfile) {
        if other.pc_counts.is_empty() {
            return;
        }
        if self.pc_counts.is_empty() {
            self.pc_counts = other.pc_counts.clone();
            return;
        }
        assert_eq!(
            self.pc_counts.len(),
            other.pc_counts.len(),
            "merging profiles of different functions"
        );
        for (dst, src) in self.pc_counts.iter_mut().zip(&other.pc_counts) {
            *dst += src;
        }
    }
}

/// Opcode mnemonic of an instruction (the leading token of its `Debug`
/// form, e.g. `FMulAdd`) — shared by trap attribution and profiling.
pub fn instr_mnemonic(ins: &Instr) -> String {
    let d = format!("{ins:?}");
    d.split([' ', '{'])
        .next()
        .unwrap_or_default()
        .trim()
        .to_string()
}

/// The result of a successful call.
#[derive(Clone, Debug)]
pub struct CallOutcome {
    /// Return value, if the function returns one.
    pub ret: Option<Value>,
    /// The argument vector with by-ref scalars updated and arrays moved
    /// back (same order as passed in).
    pub args: Vec<ArgValue>,
    /// Execution statistics.
    pub stats: ExecStats,
    /// Per-pc execution profile, present iff [`ExecOptions::profile`]
    /// was set for the call.
    pub profile: Option<ExecProfile>,
}

impl CallOutcome {
    /// The float return value; panics if the function did not return one.
    pub fn ret_f(&self) -> f64 {
        self.ret.expect("function returned no value").as_f()
    }
}

pub(crate) enum ArraySlot {
    Empty,
    F(Vec<f64>),
    I(Vec<i64>),
    /// Buffer left over from a previous call: its *capacity* is reusable
    /// by the next `Alloc`, but reading it is a trap, exactly as if the
    /// slot were [`ArraySlot::Empty`] — machine reuse must not expose one
    /// call's data to the next.
    StaleF(Vec<f64>),
    /// Integer counterpart of [`ArraySlot::StaleF`].
    StaleI(Vec<i64>),
}

thread_local! {
    static TLS_MACHINE: RefCell<Machine> = RefCell::new(Machine::new());
}

/// Runs `func` on `args` with default options (through the thread-local
/// reusable machine).
pub fn run(func: &CompiledFunction, args: Vec<ArgValue>) -> Result<CallOutcome, Trap> {
    run_with(func, args, &ExecOptions::default())
}

/// Runs `func` on `args` under `opts` (through the thread-local reusable
/// machine).
pub fn run_with(
    func: &CompiledFunction,
    args: Vec<ArgValue>,
    opts: &ExecOptions,
) -> Result<CallOutcome, Trap> {
    TLS_MACHINE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut m) => m.run_reused(func, args, opts),
        // Re-entrant call (e.g. from a panic hook): fall back to a fresh
        // machine rather than poisoning the cached one.
        Err(_) => Machine::new().run_reused(func, args, opts),
    })
}

fn invalid_bytecode(msg: String) -> Trap {
    Trap {
        kind: TrapKind::InvalidBytecode(msg),
        pc: 0,
        span: Span::DUMMY,
    }
}

/// Builds the [`TrapKind::NonFinite`] trap for a non-finite value written
/// to float register `dst` by the instruction at `pc`. Cold: only reached
/// when [`ExecOptions::trap_on_nonfinite`] fires, so the mnemonic/name
/// string work stays off the dispatch loops' hot path.
#[cold]
#[inline(never)]
pub(crate) fn nonfinite_trap(func: &CompiledFunction, dst: usize, value: f64, pc: usize) -> Trap {
    let op = match func.instrs.get(pc) {
        Some(ins) => instr_mnemonic(ins),
        None => "ret".to_string(),
    };
    let var = func
        .fvar_names
        .iter()
        .find(|(r, _)| *r as usize == dst)
        .map(|(_, n)| n.clone());
    Trap {
        kind: TrapKind::NonFinite { value, op, var },
        pc,
        span: func.spans.get(pc).copied().unwrap_or(Span::DUMMY),
    }
}

/// Post-`bind_args` check for [`ExecOptions::trap_on_nonfinite`]: a
/// demoted parameter whose entry rounding overflowed (finite `f64` →
/// `inf` in a narrower type) is attributed to the parameter by name
/// before the first instruction runs.
pub(crate) fn check_params_finite(
    func: &CompiledFunction,
    f: &[f64],
    a: &[ArraySlot],
) -> Result<(), Trap> {
    for spec in &func.params {
        let bad = match spec.kind {
            ParamKind::F(_) => {
                let v = f[spec.reg as usize];
                (!v.is_finite()).then_some(v)
            }
            ParamKind::FArr(_) => match &a[spec.reg as usize] {
                ArraySlot::F(v) => v.iter().find(|x| !x.is_finite()).copied(),
                _ => None,
            },
            _ => None,
        };
        if let Some(value) = bad {
            return Err(Trap {
                kind: TrapKind::NonFinite {
                    value,
                    op: "bind_args".to_string(),
                    var: Some(spec.name.clone()),
                },
                pc: 0,
                span: func.spans.first().copied().unwrap_or(Span::DUMMY),
            });
        }
    }
    Ok(())
}

/// Applies one draw of the call's [`crate::fault::FaultPlan`] (if any):
/// an injected **panic** unwinds right here; an injected **trap** clamps
/// the instruction budget so the run raises a genuine
/// [`TrapKind::InstrBudgetExhausted`] at the plan's instruction; an
/// injected **NaN** asks the caller to poison the first float parameter
/// after binding *and* arms [`ExecOptions::trap_on_nonfinite`] for this
/// run, so the poison is guaranteed to surface as an attributed
/// [`TrapKind::NonFinite`] — a NaN that merely flowed through could
/// launder into a finite-but-wrong result (NaN comparisons are all
/// false; `fmin`/`fmax` discard NaN) and evade detection entirely.
/// Returns the replacement options and the NaN flag.
pub(crate) fn drawn_fault(
    func: &CompiledFunction,
    opts: &ExecOptions,
) -> (Option<ExecOptions>, bool) {
    let Some(plan) = &opts.fault else {
        return (None, false);
    };
    match plan.draw() {
        None => (None, false),
        Some(crate::fault::FaultKind::Panic) => {
            panic!("chef-fault: injected panic in `{}`", func.name)
        }
        Some(crate::fault::FaultKind::Trap) => {
            let mut o = opts.clone();
            o.max_instrs = Some(
                opts.max_instrs
                    .map_or(plan.instr(), |b| b.min(plan.instr())),
            );
            (Some(o), false)
        }
        Some(crate::fault::FaultKind::Nan) => {
            let mut o = opts.clone();
            o.trap_on_nonfinite = true;
            (Some(o), true)
        }
    }
}

/// Poisons the first float parameter register with NaN (the injected-NaN
/// fault). No-op for functions without float parameters.
pub(crate) fn inject_nan_param(func: &CompiledFunction, f: &mut [f64]) {
    if let Some(spec) = func
        .params
        .iter()
        .find(|p| matches!(p.kind, ParamKind::F(_)))
    {
        f[spec.reg as usize] = f64::NAN;
    }
}

/// Runs `func` over every argument set in order, reusing one [`Machine`]
/// (register files, array slots and tape capacity persist across calls).
/// The bytecode is validated once for the whole batch, not per call.
pub fn run_batch(
    func: &CompiledFunction,
    arg_sets: Vec<Vec<ArgValue>>,
    opts: &ExecOptions,
) -> Vec<Result<CallOutcome, Trap>> {
    if let Err(msg) = validate_function(func) {
        let trap = invalid_bytecode(msg);
        return arg_sets.into_iter().map(|_| Err(trap.clone())).collect();
    }
    let mut m = Machine::new();
    arg_sets
        .into_iter()
        .map(|args| m.run_prevalidated(func, args, opts))
        .collect()
}

/// Like [`run_batch`] but fanned out over scoped threads (via
/// [`crate::par::parallel_map`]), one reusable machine per thread;
/// results keep the input order. `max_threads = None` uses the machine's
/// available parallelism; tiny batches run inline.
pub fn run_batch_parallel(
    func: &CompiledFunction,
    arg_sets: Vec<Vec<ArgValue>>,
    opts: &ExecOptions,
    max_threads: Option<usize>,
) -> Vec<Result<CallOutcome, Trap>> {
    if let Err(msg) = validate_function(func) {
        let trap = invalid_bytecode(msg);
        return arg_sets.into_iter().map(|_| Err(trap.clone())).collect();
    }
    thread_local! {
        static BATCH_MACHINE: RefCell<Machine> = RefCell::new(Machine::new());
    }
    crate::par::parallel_map(arg_sets, max_threads, |args| {
        BATCH_MACHINE.with(|cell| match cell.try_borrow_mut() {
            Ok(mut m) => m.run_prevalidated(func, args, opts),
            Err(_) => Machine::new().run_prevalidated(func, args, opts),
        })
    })
}

/// [`run_batch_parallel`] drawing per-worker machines from a shared
/// [`MachineArena`](crate::arena::MachineArena) instead of thread-local
/// state: each worker checks one machine out for its whole chunk and
/// parks it back on completion, so consecutive batches — even of
/// *different* compiled functions — reuse the same register-file/tape
/// allocations, sized to the session maximum.
pub fn run_batch_parallel_in(
    func: &CompiledFunction,
    arg_sets: Vec<Vec<ArgValue>>,
    opts: &ExecOptions,
    max_threads: Option<usize>,
    arena: &crate::arena::MachineArena,
) -> Vec<Result<CallOutcome, Trap>> {
    if let Err(msg) = validate_function(func) {
        let trap = invalid_bytecode(msg);
        return arg_sets.into_iter().map(|_| Err(trap.clone())).collect();
    }
    // Worker state pairs the pooled machine with an `exec.worker` span:
    // the span opens at worker init and closes when the chunk's state
    // drops, so each per-item `exec.run` span nests under its worker.
    crate::par::parallel_map_init(
        arg_sets,
        max_threads,
        || (arena.checkout(), chef_telemetry::span("exec.worker")),
        |worker, args| {
            let _run = chef_telemetry::span("exec.run");
            worker.0.run_prevalidated(func, args, opts)
        },
    )
}

/// A reusable VM activation: owns the register files, array slots and the
/// tape, and recycles their capacity across calls.
///
/// ```
/// use chef_ir::prelude::*;
/// use chef_exec::prelude::*;
/// use chef_exec::vm::Machine;
///
/// let mut p = parse_program("double sq(double x) { return x * x; }").unwrap();
/// check_program(&mut p).unwrap();
/// let f = compile_default(p.function("sq").unwrap()).unwrap();
/// let mut m = Machine::new();
/// for k in 0..1000 {
///     let out = m.run_reused(&f, vec![ArgValue::F(k as f64)], &ExecOptions::default()).unwrap();
///     assert_eq!(out.ret_f(), (k * k) as f64);
/// }
/// ```
pub struct Machine {
    pub(crate) f: Vec<f64>,
    pub(crate) i: Vec<i64>,
    pub(crate) a: Vec<ArraySlot>,
    pub(crate) tape: Tape,
    pub(crate) stats: ExecStats,
    /// Per-pc dispatch counters, sized by [`Machine::reset`] to the
    /// function length when [`ExecOptions::profile`] is set (empty
    /// otherwise); harvested into [`CallOutcome::profile`].
    pub(crate) prof: Vec<u64>,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    /// An empty machine; buffers grow on first use and persist.
    pub fn new() -> Self {
        Machine {
            f: Vec::new(),
            i: Vec::new(),
            a: Vec::new(),
            tape: Tape::new(),
            stats: ExecStats::default(),
            prof: Vec::new(),
        }
    }

    /// Prepares the machine for one call of `func`: sizes and zeroes the
    /// register files, resets the tape statistics and installs the tape
    /// budget — all without releasing buffer capacity. Called by
    /// [`Machine::run_reused`]; exposed for callers that want to stage a
    /// machine explicitly.
    pub fn reset(&mut self, func: &CompiledFunction, opts: &ExecOptions) {
        self.f.clear();
        self.f.resize(func.n_fregs as usize, 0.0);
        self.i.clear();
        self.i.resize(func.n_iregs as usize, 0);
        // Array slots keep their buffers but are downgraded to stale:
        // `Alloc` reclaims the capacity (and re-zeroes), while a read
        // without a preceding bind/alloc traps exactly like a fresh
        // machine — one call's data is never observable by the next.
        self.a.truncate(func.n_aregs as usize);
        for slot in &mut self.a {
            let prev = std::mem::replace(slot, ArraySlot::Empty);
            *slot = match prev {
                ArraySlot::F(v) => ArraySlot::StaleF(v),
                ArraySlot::I(v) => ArraySlot::StaleI(v),
                other => other,
            };
        }
        while self.a.len() < func.n_aregs as usize {
            self.a.push(ArraySlot::Empty);
        }
        self.tape.reset(opts.tape_limit);
        self.stats = ExecStats::default();
        self.prof.clear();
        if opts.profile {
            self.prof.resize(func.instrs.len(), 0);
        }
    }

    /// Runs `func` on `args` under `opts`, reusing this machine's buffers.
    pub fn run_reused(
        &mut self,
        func: &CompiledFunction,
        args: Vec<ArgValue>,
        opts: &ExecOptions,
    ) -> Result<CallOutcome, Trap> {
        // Deliberately re-validated on every call: validation is the
        // soundness anchor for the dispatch loop's unchecked register
        // accesses, and caching it by function pointer identity would be
        // ABA-unsound (a dropped-and-reallocated CompiledFunction at the
        // same address could skip validation of malformed code). Batch
        // callers amortize through run_batch/run_batch_parallel instead.
        if let Err(msg) = validate_function(func) {
            return Err(invalid_bytecode(msg));
        }
        self.run_prevalidated(func, args, opts)
    }

    /// [`Machine::run_reused`] without the bytecode validation — for the
    /// batch entry points, which validate once for the whole batch.
    fn run_prevalidated(
        &mut self,
        func: &CompiledFunction,
        args: Vec<ArgValue>,
        opts: &ExecOptions,
    ) -> Result<CallOutcome, Trap> {
        let (fault_opts, inject_nan) = drawn_fault(func, opts);
        let opts = fault_opts.as_ref().unwrap_or(opts);
        self.reset(func, opts);
        self.bind_args(func, args)?;
        if inject_nan {
            inject_nan_param(func, &mut self.f);
        }
        if opts.trap_on_nonfinite {
            check_params_finite(func, &self.f, &self.a)?;
        }
        // Packed dispatch when the packer produced words (the default);
        // enum dispatch otherwise. Validation proved the two streams
        // equivalent, so the choice is unobservable apart from speed.
        // Profiling selects a separately monomorphized loop so the
        // default path carries no per-iteration check.
        let ret = match (&func.packed, opts.profile) {
            (Some(p), false) => exec_loop_packed::<false>(
                func,
                p,
                opts,
                &mut self.f,
                &mut self.i,
                &mut self.a,
                &mut self.tape,
                &mut self.stats,
                &mut self.prof,
            )?,
            (Some(p), true) => exec_loop_packed::<true>(
                func,
                p,
                opts,
                &mut self.f,
                &mut self.i,
                &mut self.a,
                &mut self.tape,
                &mut self.stats,
                &mut self.prof,
            )?,
            (None, false) => exec_loop::<false>(
                func,
                opts,
                &mut self.f,
                &mut self.i,
                &mut self.a,
                &mut self.tape,
                &mut self.stats,
                &mut self.prof,
            )?,
            (None, true) => exec_loop::<true>(
                func,
                opts,
                &mut self.f,
                &mut self.i,
                &mut self.a,
                &mut self.tape,
                &mut self.stats,
                &mut self.prof,
            )?,
        };
        self.stats.tape_peak_bytes = self.tape.peak_bytes();
        self.stats.tape_total_pushes = self.tape.total_pushes();
        let args = self.unbind_args(func);
        let profile = opts.profile.then(|| ExecProfile {
            pc_counts: std::mem::take(&mut self.prof),
        });
        Ok(CallOutcome {
            ret,
            args,
            stats: self.stats,
            profile,
        })
    }

    fn trap_at(&self, func: &CompiledFunction, kind: TrapKind, pc: usize) -> Trap {
        Trap {
            kind,
            pc,
            span: func.spans.get(pc).copied().unwrap_or(Span::DUMMY),
        }
    }

    pub(crate) fn bind_args(
        &mut self,
        func: &CompiledFunction,
        args: Vec<ArgValue>,
    ) -> Result<(), Trap> {
        if args.len() != func.params.len() {
            return Err(self.trap_at(
                func,
                TrapKind::BadArguments(format!(
                    "expected {} arguments, got {}",
                    func.params.len(),
                    args.len()
                )),
                0,
            ));
        }
        for (spec, arg) in func.params.iter().zip(args) {
            match (spec.kind, arg) {
                (ParamKind::F(prec), ArgValue::F(v)) => {
                    self.f[spec.reg as usize] = round_to(v, prec);
                }
                (ParamKind::F(prec), ArgValue::I(v)) => {
                    self.f[spec.reg as usize] = round_to(v as f64, prec);
                }
                (ParamKind::I, ArgValue::I(v)) => {
                    self.i[spec.reg as usize] = v;
                }
                (ParamKind::B, ArgValue::B(v)) => {
                    self.i[spec.reg as usize] = v as i64;
                }
                (ParamKind::FArr(prec), ArgValue::FArr(mut v)) => {
                    self.stats.arg_array_bytes += v.len() * 8;
                    if prec != FloatTy::F64 {
                        for x in &mut v {
                            *x = round_to(*x, prec);
                        }
                    }
                    self.a[spec.reg as usize] = ArraySlot::F(v);
                }
                (ParamKind::IArr, ArgValue::IArr(v)) => {
                    self.stats.arg_array_bytes += v.len() * 8;
                    self.a[spec.reg as usize] = ArraySlot::I(v);
                }
                (kind, got) => {
                    return Err(self.trap_at(
                        func,
                        TrapKind::BadArguments(format!(
                            "parameter `{}` expects {kind:?}, got {got:?}",
                            spec.name
                        )),
                        0,
                    ))
                }
            }
        }
        Ok(())
    }

    pub(crate) fn unbind_args(&mut self, func: &CompiledFunction) -> Vec<ArgValue> {
        let mut out = Vec::with_capacity(func.params.len());
        for spec in &func.params {
            let v = match spec.kind {
                ParamKind::F(_) => ArgValue::F(self.f[spec.reg as usize]),
                ParamKind::I => ArgValue::I(self.i[spec.reg as usize]),
                ParamKind::B => ArgValue::B(self.i[spec.reg as usize] != 0),
                ParamKind::FArr(_) => {
                    match std::mem::replace(&mut self.a[spec.reg as usize], ArraySlot::Empty) {
                        ArraySlot::F(v) => ArgValue::FArr(v),
                        _ => ArgValue::FArr(Vec::new()),
                    }
                }
                ParamKind::IArr => {
                    match std::mem::replace(&mut self.a[spec.reg as usize], ArraySlot::Empty) {
                        ArraySlot::I(v) => ArgValue::IArr(v),
                        _ => ArgValue::IArr(Vec::new()),
                    }
                }
            };
            out.push(v);
        }
        out
    }
}

/// Checks that every register operand and jump target of `func` is within
/// the declared files, making the dispatch loop's unchecked register
/// accesses sound. O(instruction count); negligible next to execution.
pub fn validate_function(func: &CompiledFunction) -> Result<(), String> {
    let nf = func.n_fregs;
    let ni = func.n_iregs;
    let na = func.n_aregs;
    let len = func.instrs.len() as u32;
    let ok = std::cell::Cell::new(true);
    let cf = |r: FReg| ok.set(ok.get() && r.0 < nf);
    let ci = |r: IReg| ok.set(ok.get() && r.0 < ni);
    let ca = |r: AReg| ok.set(ok.get() && r.0 < na);
    macro_rules! ct {
        ($t:expr) => {
            ok.set(ok.get() && *$t <= len)
        };
    }
    for ins in &func.instrs {
        match ins {
            Instr::FConst { dst, .. } => cf(*dst),
            Instr::FMov { dst, src } | Instr::FNeg { dst, src } => {
                cf(*dst);
                cf(*src);
            }
            Instr::FRound { dst, src, .. } => {
                cf(*dst);
                cf(*src);
            }
            Instr::FAdd { dst, a, b }
            | Instr::FSub { dst, a, b }
            | Instr::FMul { dst, a, b }
            | Instr::FDiv { dst, a, b } => {
                cf(*dst);
                cf(*a);
                cf(*b);
            }
            Instr::FIntr1 { dst, a, .. } => {
                cf(*dst);
                cf(*a);
            }
            Instr::FIntr2 { dst, a, b, .. } | Instr::FIntr2Round { dst, a, b, .. } => {
                cf(*dst);
                cf(*a);
                cf(*b);
            }
            Instr::FIntr1Round { dst, a, .. } => {
                cf(*dst);
                cf(*a);
            }
            Instr::FCmp { dst, a, b, .. } => {
                ci(*dst);
                cf(*a);
                cf(*b);
            }
            Instr::FLoad { dst, arr, idx } => {
                cf(*dst);
                ca(*arr);
                ci(*idx);
            }
            Instr::FStore { arr, idx, src } => {
                ca(*arr);
                ci(*idx);
                cf(*src);
            }
            Instr::F2I { dst, src } => {
                ci(*dst);
                cf(*src);
            }
            Instr::I2F { dst, src } => {
                cf(*dst);
                ci(*src);
            }
            Instr::IConst { dst, .. } => ci(*dst),
            Instr::IMov { dst, src } | Instr::INeg { dst, src } | Instr::BNot { dst, src } => {
                ci(*dst);
                ci(*src);
            }
            Instr::IAdd { dst, a, b }
            | Instr::ISub { dst, a, b }
            | Instr::IMul { dst, a, b }
            | Instr::IDiv { dst, a, b }
            | Instr::IRem { dst, a, b }
            | Instr::ICmp { dst, a, b, .. } => {
                ci(*dst);
                ci(*a);
                ci(*b);
            }
            Instr::ILoad { dst, arr, idx } => {
                ci(*dst);
                ca(*arr);
                ci(*idx);
            }
            Instr::IStore { arr, idx, src } => {
                ca(*arr);
                ci(*idx);
                ci(*src);
            }
            Instr::Jmp { target } => ct!(target),
            Instr::JmpIfFalse { cond, target } | Instr::JmpIfTrue { cond, target } => {
                ci(*cond);
                ct!(target);
            }
            Instr::TPushF { src } => cf(*src),
            Instr::TPopF { dst } => cf(*dst),
            Instr::TPushI { src } => ci(*src),
            Instr::TPopI { dst } => ci(*dst),
            Instr::AllocF { arr, len } | Instr::AllocI { arr, len } => {
                ca(*arr);
                ci(*len);
            }
            Instr::RetF { src } => cf(*src),
            Instr::RetI { src } | Instr::RetB { src } => ci(*src),
            Instr::RetVoid | Instr::TrapMissingReturn => {}
            Instr::FMulAdd { dst, a, b, c } => {
                cf(*dst);
                cf(*a);
                cf(*b);
                cf(*c);
            }
            Instr::FAddRound { dst, a, b, .. }
            | Instr::FSubRound { dst, a, b, .. }
            | Instr::FMulRound { dst, a, b, .. }
            | Instr::FDivRound { dst, a, b, .. } => {
                cf(*dst);
                cf(*a);
                cf(*b);
            }
            Instr::FAddC { dst, a, .. }
            | Instr::FSubC { dst, a, .. }
            | Instr::FSubCR { dst, a, .. }
            | Instr::FMulC { dst, a, .. }
            | Instr::FDivC { dst, a, .. }
            | Instr::FDivCR { dst, a, .. } => {
                cf(*dst);
                cf(*a);
            }
            Instr::ICmpImmJmpFalse { a, target, .. } | Instr::ICmpImmJmpTrue { a, target, .. } => {
                ci(*a);
                ct!(target);
            }
            Instr::FLoadOff { dst, arr, base, .. } => {
                cf(*dst);
                ca(*arr);
                ci(*base);
            }
            Instr::FStoreOff { arr, base, src, .. } => {
                ca(*arr);
                ci(*base);
                cf(*src);
            }
            Instr::IAddImm { dst, a, .. } => {
                ci(*dst);
                ci(*a);
            }
            Instr::FCmpJmpFalse { a, b, target, .. } | Instr::FCmpJmpTrue { a, b, target, .. } => {
                cf(*a);
                cf(*b);
                ct!(target);
            }
            Instr::ICmpJmpFalse { a, b, target, .. } | Instr::ICmpJmpTrue { a, b, target, .. } => {
                ci(*a);
                ci(*b);
                ct!(target);
            }
        }
        if !ok.get() {
            return Err(format!(
                "instruction references out-of-range register: {ins:?}"
            ));
        }
    }
    for p in &func.params {
        let in_range = match p.kind {
            ParamKind::F(_) => p.reg < nf,
            ParamKind::I | ParamKind::B => p.reg < ni,
            ParamKind::FArr(_) | ParamKind::IArr => p.reg < na,
        };
        if !in_range {
            return Err(format!(
                "parameter `{}` binds out-of-range register",
                p.name
            ));
        }
    }
    // The packed stream, when present, must be word-for-word equivalent to
    // the (just validated) enum stream: the packed dispatch loop reads its
    // operand fields unchecked, and this equivalence is what carries the
    // register/target/pool bounds proof over to the words.
    if let Some(p) = &func.packed {
        if p.words.len() != func.instrs.len() {
            return Err(format!(
                "packed stream has {} words for {} instructions",
                p.words.len(),
                func.instrs.len()
            ));
        }
        for (pc, (&w, ins)) in p.words.iter().zip(&func.instrs).enumerate() {
            match crate::pack::decode(w, p) {
                Some(d) if crate::pack::instr_eq_bits(&d, ins) => {}
                _ => {
                    return Err(format!(
                        "packed word {pc} ({w:#018x}) does not decode to {ins:?}"
                    ))
                }
            }
        }
    }
    Ok(())
}

/// The dispatch loop. Register/array-slot indices are unchecked —
/// [`validate_function`] proved them in range; array *element* indices
/// are runtime values and stay checked.
#[allow(clippy::too_many_arguments)]
#[inline(never)] // own code-layout home: keeps dispatch-loop timing stable
fn exec_loop<const PROFILE: bool>(
    func: &CompiledFunction,
    opts: &ExecOptions,
    f: &mut [f64],
    i: &mut [i64],
    a: &mut [ArraySlot],
    tape: &mut Tape,
    stats: &mut ExecStats,
    prof: &mut [u64],
) -> Result<Option<Value>, Trap> {
    let instrs = &func.instrs[..];
    let approx = &opts.approx;
    let budget = opts.max_instrs.unwrap_or(u64::MAX);
    let trap_nf = opts.trap_on_nonfinite;
    let deadline = opts.deadline;
    // Next executed-count at which the wall clock is consulted; `MAX`
    // (deadline disarmed) makes the checkpoint a single dead compare.
    let mut deadline_at: u64 = if deadline.is_some() {
        DEADLINE_STRIDE
    } else {
        u64::MAX
    };
    let mut executed: u64 = 0;
    let mut pc: usize = 0;

    let trap = |kind: TrapKind, pc: usize| Trap {
        kind,
        pc,
        span: func.spans.get(pc).copied().unwrap_or(Span::DUMMY),
    };

    // Register access macros. SAFETY (all four): `validate_function`
    // checked every register operand of every instruction against the
    // file sizes the slices were resized to.
    macro_rules! fr {
        ($r:expr) => {
            unsafe { *f.get_unchecked($r.0 as usize) }
        };
    }
    macro_rules! fw {
        ($r:expr, $v:expr) => {{
            let v = $v;
            if trap_nf && !v.is_finite() {
                return Err(nonfinite_trap(func, $r.0 as usize, v, pc));
            }
            unsafe { *f.get_unchecked_mut($r.0 as usize) = v };
        }};
    }
    macro_rules! ir {
        ($r:expr) => {
            unsafe { *i.get_unchecked($r.0 as usize) }
        };
    }
    macro_rules! iw {
        ($r:expr, $v:expr) => {{
            let v = $v;
            unsafe { *i.get_unchecked_mut($r.0 as usize) = v };
        }};
    }
    macro_rules! aslot {
        ($r:expr) => {
            unsafe { &mut *a.get_unchecked_mut($r.0 as usize) }
        };
    }
    // Taken jumps: backward edges also account the instruction budget
    // and the wall deadline (the only way a program runs forever is
    // through a backward jump).
    macro_rules! jump {
        ($target:expr) => {{
            let t = $target as usize;
            if t <= pc {
                if executed > budget {
                    return Err(trap(TrapKind::InstrBudgetExhausted { executed }, pc));
                }
                if executed >= deadline_at && deadline_probe(deadline, executed, &mut deadline_at) {
                    return Err(trap(TrapKind::DeadlineExceeded { executed }, pc));
                }
            }
            pc = t;
            continue;
        }};
    }

    let ret: Option<Value> = loop {
        let Some(ins) = instrs.get(pc) else {
            break None; // treated like RetVoid for robustness
        };
        executed += 1;
        if PROFILE {
            prof[pc] += 1;
        }
        match ins {
            Instr::FConst { dst, v } => fw!(dst, *v),
            Instr::FMov { dst, src } => fw!(dst, fr!(src)),
            Instr::FAdd { dst, a, b } => fw!(dst, fr!(a) + fr!(b)),
            Instr::FSub { dst, a, b } => fw!(dst, fr!(a) - fr!(b)),
            Instr::FMul { dst, a, b } => fw!(dst, fr!(a) * fr!(b)),
            Instr::FDiv { dst, a, b } => fw!(dst, fr!(a) / fr!(b)),
            Instr::FNeg { dst, src } => fw!(dst, -fr!(src)),
            Instr::FRound { dst, src, ty } => fw!(dst, round_to(fr!(src), *ty)),
            Instr::FIntr1 { dst, intr, a } => fw!(dst, eval1(*intr, fr!(a), approx)),
            Instr::FIntr2 { dst, intr, a, b } => {
                fw!(dst, eval2(*intr, fr!(a), fr!(b), approx))
            }
            Instr::FCmp { dst, op, a, b } => iw!(dst, fcmp(*op, fr!(a), fr!(b)) as i64),
            Instr::FLoad { dst, arr, idx } => {
                let index = ir!(idx);
                match aslot!(arr) {
                    ArraySlot::F(v) => match v.get(index as usize) {
                        Some(&x) if index >= 0 => fw!(dst, x),
                        _ => {
                            let len = v.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            Instr::FStore { arr, idx, src } => {
                let index = ir!(idx);
                let v = fr!(src);
                match aslot!(arr) {
                    ArraySlot::F(vec) => match vec.get_mut(index as usize) {
                        Some(slot) if index >= 0 => *slot = v,
                        _ => {
                            let len = vec.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            Instr::F2I { dst, src } => iw!(dst, fr!(src) as i64),
            Instr::I2F { dst, src } => fw!(dst, ir!(src) as f64),

            Instr::IConst { dst, v } => iw!(dst, *v),
            Instr::IMov { dst, src } => iw!(dst, ir!(src)),
            Instr::IAdd { dst, a, b } => iw!(dst, ir!(a).wrapping_add(ir!(b))),
            Instr::ISub { dst, a, b } => iw!(dst, ir!(a).wrapping_sub(ir!(b))),
            Instr::IMul { dst, a, b } => iw!(dst, ir!(a).wrapping_mul(ir!(b))),
            Instr::IDiv { dst, a, b } => {
                let d = ir!(b);
                if d == 0 {
                    return Err(trap(TrapKind::DivByZero, pc));
                }
                iw!(dst, ir!(a).wrapping_div(d));
            }
            Instr::IRem { dst, a, b } => {
                let d = ir!(b);
                if d == 0 {
                    return Err(trap(TrapKind::DivByZero, pc));
                }
                iw!(dst, ir!(a).wrapping_rem(d));
            }
            Instr::INeg { dst, src } => iw!(dst, ir!(src).wrapping_neg()),
            Instr::ICmp { dst, op, a, b } => iw!(dst, icmp(*op, ir!(a), ir!(b)) as i64),
            Instr::ILoad { dst, arr, idx } => {
                let index = ir!(idx);
                match aslot!(arr) {
                    ArraySlot::I(v) => match v.get(index as usize) {
                        Some(&x) if index >= 0 => iw!(dst, x),
                        _ => {
                            let len = v.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            Instr::IStore { arr, idx, src } => {
                let index = ir!(idx);
                let v = ir!(src);
                match aslot!(arr) {
                    ArraySlot::I(vec) => match vec.get_mut(index as usize) {
                        Some(slot) if index >= 0 => *slot = v,
                        _ => {
                            let len = vec.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            Instr::BNot { dst, src } => iw!(dst, (ir!(src) == 0) as i64),

            Instr::Jmp { target } => jump!(*target),
            Instr::JmpIfFalse { cond, target } => {
                if ir!(cond) == 0 {
                    jump!(*target);
                }
            }
            Instr::JmpIfTrue { cond, target } => {
                if ir!(cond) != 0 {
                    jump!(*target);
                }
            }

            Instr::TPushF { src } => {
                if let Err(e) = tape.push_f(fr!(src)) {
                    return Err(trap(TrapKind::Tape(e), pc));
                }
            }
            Instr::TPopF { dst } => match tape.pop_f() {
                Ok(v) => fw!(dst, v),
                Err(e) => return Err(trap(TrapKind::Tape(e), pc)),
            },
            Instr::TPushI { src } => {
                if let Err(e) = tape.push_i(ir!(src)) {
                    return Err(trap(TrapKind::Tape(e), pc));
                }
            }
            Instr::TPopI { dst } => match tape.pop_i() {
                Ok(v) => iw!(dst, v),
                Err(e) => return Err(trap(TrapKind::Tape(e), pc)),
            },

            Instr::AllocF { arr, len } => {
                let n = ir!(len);
                if n < 0 {
                    return Err(trap(TrapKind::NegativeArrayLen(n), pc));
                }
                stats.local_array_bytes += n as usize * 8;
                // Reuse the slot's buffer when it already holds floats
                // (including a stale buffer from a previous call).
                match aslot!(arr) {
                    ArraySlot::F(v) | ArraySlot::StaleF(v) => {
                        v.clear();
                        v.resize(n as usize, 0.0);
                        let buf = std::mem::take(v);
                        *aslot!(arr) = ArraySlot::F(buf);
                    }
                    slot => *slot = ArraySlot::F(vec![0.0; n as usize]),
                }
            }
            Instr::AllocI { arr, len } => {
                let n = ir!(len);
                if n < 0 {
                    return Err(trap(TrapKind::NegativeArrayLen(n), pc));
                }
                stats.local_array_bytes += n as usize * 8;
                match aslot!(arr) {
                    ArraySlot::I(v) | ArraySlot::StaleI(v) => {
                        v.clear();
                        v.resize(n as usize, 0);
                        let buf = std::mem::take(v);
                        *aslot!(arr) = ArraySlot::I(buf);
                    }
                    slot => *slot = ArraySlot::I(vec![0; n as usize]),
                }
            }

            // ---- fused superinstructions ----
            Instr::FMulAdd { dst, a, b, c } => {
                // Two separate roundings, exactly like the unfused pair.
                let p = fr!(a) * fr!(b);
                fw!(dst, p + fr!(c));
            }
            Instr::FAddRound { dst, a, b, ty } => fw!(dst, round_to(fr!(a) + fr!(b), *ty)),
            Instr::FSubRound { dst, a, b, ty } => fw!(dst, round_to(fr!(a) - fr!(b), *ty)),
            Instr::FMulRound { dst, a, b, ty } => fw!(dst, round_to(fr!(a) * fr!(b), *ty)),
            Instr::FDivRound { dst, a, b, ty } => fw!(dst, round_to(fr!(a) / fr!(b), *ty)),
            Instr::FIntr1Round { dst, intr, a, ty } => {
                fw!(dst, round_to(eval1(*intr, fr!(a), approx), *ty))
            }
            Instr::FIntr2Round {
                dst,
                intr,
                a,
                b,
                ty,
            } => fw!(dst, round_to(eval2(*intr, fr!(a), fr!(b), approx), *ty)),
            Instr::FAddC { dst, a, k } => fw!(dst, fr!(a) + *k),
            Instr::FSubC { dst, a, k } => fw!(dst, fr!(a) - *k),
            Instr::FSubCR { dst, k, a } => fw!(dst, *k - fr!(a)),
            Instr::FMulC { dst, a, k } => fw!(dst, fr!(a) * *k),
            Instr::FDivC { dst, a, k } => fw!(dst, fr!(a) / *k),
            Instr::FDivCR { dst, k, a } => fw!(dst, *k / fr!(a)),
            Instr::ICmpImmJmpFalse { op, a, imm, target } => {
                if !icmp(*op, ir!(a), *imm) {
                    jump!(*target);
                }
            }
            Instr::ICmpImmJmpTrue { op, a, imm, target } => {
                if icmp(*op, ir!(a), *imm) {
                    jump!(*target);
                }
            }
            Instr::FLoadOff {
                dst,
                arr,
                base,
                off,
            } => {
                let index = ir!(base).wrapping_add(*off as i64);
                match aslot!(arr) {
                    ArraySlot::F(v) => match v.get(index as usize) {
                        Some(&x) if index >= 0 => fw!(dst, x),
                        _ => {
                            let len = v.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            Instr::FStoreOff {
                arr,
                base,
                off,
                src,
            } => {
                let index = ir!(base).wrapping_add(*off as i64);
                let v = fr!(src);
                match aslot!(arr) {
                    ArraySlot::F(vec) => match vec.get_mut(index as usize) {
                        Some(slot) if index >= 0 => *slot = v,
                        _ => {
                            let len = vec.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            Instr::IAddImm { dst, a, imm } => iw!(dst, ir!(a).wrapping_add(*imm)),
            Instr::FCmpJmpFalse { op, a, b, target } => {
                if !fcmp(*op, fr!(a), fr!(b)) {
                    jump!(*target);
                }
            }
            Instr::FCmpJmpTrue { op, a, b, target } => {
                if fcmp(*op, fr!(a), fr!(b)) {
                    jump!(*target);
                }
            }
            Instr::ICmpJmpFalse { op, a, b, target } => {
                if !icmp(*op, ir!(a), ir!(b)) {
                    jump!(*target);
                }
            }
            Instr::ICmpJmpTrue { op, a, b, target } => {
                if icmp(*op, ir!(a), ir!(b)) {
                    jump!(*target);
                }
            }

            Instr::RetF { src } => {
                let v = fr!(src);
                let v = match func.ret {
                    RetKind::F(ft) => round_to(v, ft),
                    _ => v,
                };
                if trap_nf && !v.is_finite() {
                    return Err(nonfinite_trap(func, src.0 as usize, v, pc));
                }
                break Some(Value::F(v));
            }
            Instr::RetI { src } => break Some(Value::I(ir!(src))),
            Instr::RetB { src } => break Some(Value::B(ir!(src) != 0)),
            Instr::RetVoid => break None,
            Instr::TrapMissingReturn => return Err(trap(TrapKind::MissingReturn, pc)),
        }
        pc += 1;
    };
    stats.instrs_executed = executed;
    // Returns are the other budget checkpoint (backward jumps are the
    // first): a run never reports success past the budget.
    if executed > budget {
        return Err(trap(
            TrapKind::InstrBudgetExhausted { executed },
            pc.min(instrs.len().saturating_sub(1)),
        ));
    }
    Ok(ret)
}

/// The packed-word dispatch loop: the hot path of the engine.
///
/// Semantically identical to [`exec_loop`] — same arithmetic, rounding,
/// traps, tape traffic, statistics and budget checkpoints — but fetches
/// 8-byte words instead of 24-byte enum instructions, decodes operands
/// with shifts, reads wide constants from the hoisted pools, and
/// dispatches on a dense `u8` opcode the compiler lowers to a jump table.
///
/// SAFETY of the unchecked accesses: [`validate_function`] proved (a)
/// every enum operand in range and (b) every packed word decodes to its
/// enum instruction, so the fields extracted here are exactly the
/// validated operands; pool indices were bounds-checked by the decode;
/// jump targets are ≤ `words.len()` and the fetch breaks at `len`.
#[allow(clippy::too_many_arguments)]
#[allow(unused_unsafe)] // `fld!` is an unsafe load and composes with the access macros
#[inline(never)] // own code-layout home: keeps dispatch-loop timing stable
fn exec_loop_packed<const PROFILE: bool>(
    func: &CompiledFunction,
    packed: &crate::pack::PackedCode,
    opts: &ExecOptions,
    f: &mut [f64],
    i: &mut [i64],
    a: &mut [ArraySlot],
    tape: &mut Tape,
    stats: &mut ExecStats,
    prof: &mut [u64],
) -> Result<Option<Value>, Trap> {
    use crate::pack::{
        cmp_from, op, ty_from, w_a, w_b, w_b_i16, w_c, w_c_i16, w_d, w_d_i8, w_op, INTRINSICS,
    };
    let words = &packed.words[..];
    let pool = &packed.pool[..];
    let len = words.len();
    let approx = &opts.approx;
    let budget = opts.max_instrs.unwrap_or(u64::MAX);
    let trap_nf = opts.trap_on_nonfinite;
    let deadline = opts.deadline;
    let mut deadline_at: u64 = if deadline.is_some() {
        DEADLINE_STRIDE
    } else {
        u64::MAX
    };
    // Executed-instruction accounting is block-granular: instead of a
    // loop-carried `executed += 1`, the straight-line run since
    // `block_start` is added at every taken jump and at returns — the
    // same program points where the budget is checked, so both the final
    // count and the budget semantics are identical to the enum loop's
    // per-instruction accounting.
    let mut executed: u64 = 0;
    let mut block_start: usize = 0;
    let mut pc: usize = 0;

    let trap = |kind: TrapKind, pc: usize| Trap {
        kind,
        pc,
        span: func.spans.get(pc).copied().unwrap_or(Span::DUMMY),
    };

    // Register/pool access macros over raw usize fields. SAFETY: see the
    // function-level comment.
    macro_rules! fr {
        ($r:expr) => {
            unsafe { *f.get_unchecked($r) }
        };
    }
    macro_rules! fw {
        ($r:expr, $v:expr) => {{
            let v = $v;
            if trap_nf && !v.is_finite() {
                return Err(nonfinite_trap(func, $r, v, pc));
            }
            unsafe { *f.get_unchecked_mut($r) = v };
        }};
    }
    macro_rules! ir {
        ($r:expr) => {
            unsafe { *i.get_unchecked($r) }
        };
    }
    macro_rules! iw {
        ($r:expr, $v:expr) => {{
            let v = $v;
            unsafe { *i.get_unchecked_mut($r) = v };
        }};
    }
    macro_rules! aslot {
        ($r:expr) => {
            unsafe { &mut *a.get_unchecked_mut($r) }
        };
    }
    // Operand-field macros: direct narrow loads from the word stream,
    // addressed by `pc` alone. SAFETY: the loop head checks `pc < len`.
    macro_rules! fld {
        ($f:ident) => {
            unsafe { $f(words, pc) }
        };
    }
    macro_rules! jump {
        ($target:expr) => {{
            let t = $target;
            executed += (pc - block_start + 1) as u64;
            if t <= pc {
                if executed > budget {
                    return Err(trap(TrapKind::InstrBudgetExhausted { executed }, pc));
                }
                if executed >= deadline_at && deadline_probe(deadline, executed, &mut deadline_at) {
                    return Err(trap(TrapKind::DeadlineExceeded { executed }, pc));
                }
            }
            block_start = t;
            pc = t;
            continue;
        }};
    }

    let ret: Option<Value> = loop {
        if pc >= len {
            executed += (pc - block_start) as u64;
            break None; // fall off the end: treated like RetVoid
        }
        // Per-pc profiling stays per-iteration even though `executed` is
        // block-granular here: one increment per dispatched word sums to
        // the same total the block accounting reports.
        if PROFILE {
            prof[pc] += 1;
        }
        match fld!(w_op) {
            op::FCONST => fw!(
                fld!(w_a),
                f64::from_bits(unsafe { *pool.get_unchecked(fld!(w_b)) })
            ),
            op::FMOV => fw!(fld!(w_a), fr!(fld!(w_b))),
            op::FADD => fw!(fld!(w_a), fr!(fld!(w_b)) + fr!(fld!(w_c))),
            op::FSUB => fw!(fld!(w_a), fr!(fld!(w_b)) - fr!(fld!(w_c))),
            op::FMUL => fw!(fld!(w_a), fr!(fld!(w_b)) * fr!(fld!(w_c))),
            op::FDIV => fw!(fld!(w_a), fr!(fld!(w_b)) / fr!(fld!(w_c))),
            op::FNEG => fw!(fld!(w_a), -fr!(fld!(w_b))),
            op::FROUND => fw!(
                fld!(w_a),
                round_to(fr!(fld!(w_b)), ty_from(fld!(w_d) as u8))
            ),
            op::FINTR1 => {
                let intr = unsafe { *INTRINSICS.get_unchecked(fld!(w_d)) };
                fw!(fld!(w_a), eval1(intr, fr!(fld!(w_b)), approx));
            }
            op::FINTR2 => {
                let intr = unsafe { *INTRINSICS.get_unchecked(fld!(w_d)) };
                fw!(
                    fld!(w_a),
                    eval2(intr, fr!(fld!(w_b)), fr!(fld!(w_c)), approx)
                );
            }
            op::FCMP => iw!(
                fld!(w_a),
                fcmp(cmp_from(fld!(w_d) as u8), fr!(fld!(w_b)), fr!(fld!(w_c))) as i64
            ),
            op::FLOAD => {
                let index = ir!(fld!(w_c));
                match aslot!(fld!(w_b)) {
                    ArraySlot::F(v) => match v.get(index as usize) {
                        Some(&x) if index >= 0 => fw!(fld!(w_a), x),
                        _ => {
                            let len = v.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            op::FSTORE => {
                let index = ir!(fld!(w_b));
                let v = fr!(fld!(w_c));
                match aslot!(fld!(w_a)) {
                    ArraySlot::F(vec) => match vec.get_mut(index as usize) {
                        Some(slot) if index >= 0 => *slot = v,
                        _ => {
                            let len = vec.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            op::F2I => iw!(fld!(w_a), fr!(fld!(w_b)) as i64),
            op::I2F => fw!(fld!(w_a), ir!(fld!(w_b)) as f64),

            op::ICONST => iw!(fld!(w_a), fld!(w_b_i16)),
            op::ICONSTP => iw!(fld!(w_a), unsafe { *pool.get_unchecked(fld!(w_b)) } as i64),
            op::IMOV => iw!(fld!(w_a), ir!(fld!(w_b))),
            op::IADD => iw!(fld!(w_a), ir!(fld!(w_b)).wrapping_add(ir!(fld!(w_c)))),
            op::ISUB => iw!(fld!(w_a), ir!(fld!(w_b)).wrapping_sub(ir!(fld!(w_c)))),
            op::IMUL => iw!(fld!(w_a), ir!(fld!(w_b)).wrapping_mul(ir!(fld!(w_c)))),
            op::IDIV => {
                let d = ir!(fld!(w_c));
                if d == 0 {
                    return Err(trap(TrapKind::DivByZero, pc));
                }
                iw!(fld!(w_a), ir!(fld!(w_b)).wrapping_div(d));
            }
            op::IREM => {
                let d = ir!(fld!(w_c));
                if d == 0 {
                    return Err(trap(TrapKind::DivByZero, pc));
                }
                iw!(fld!(w_a), ir!(fld!(w_b)).wrapping_rem(d));
            }
            op::INEG => iw!(fld!(w_a), ir!(fld!(w_b)).wrapping_neg()),
            op::ICMP => iw!(
                fld!(w_a),
                icmp(cmp_from(fld!(w_d) as u8), ir!(fld!(w_b)), ir!(fld!(w_c))) as i64
            ),
            op::ILOAD => {
                let index = ir!(fld!(w_c));
                match aslot!(fld!(w_b)) {
                    ArraySlot::I(v) => match v.get(index as usize) {
                        Some(&x) if index >= 0 => iw!(fld!(w_a), x),
                        _ => {
                            let len = v.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            op::ISTORE => {
                let index = ir!(fld!(w_b));
                let v = ir!(fld!(w_c));
                match aslot!(fld!(w_a)) {
                    ArraySlot::I(vec) => match vec.get_mut(index as usize) {
                        Some(slot) if index >= 0 => *slot = v,
                        _ => {
                            let len = vec.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            op::BNOT => iw!(fld!(w_a), (ir!(fld!(w_b)) == 0) as i64),

            op::JMP => jump!(fld!(w_c)),
            op::JMPF => {
                if ir!(fld!(w_a)) == 0 {
                    jump!(fld!(w_c));
                }
            }
            op::JMPT => {
                if ir!(fld!(w_a)) != 0 {
                    jump!(fld!(w_c));
                }
            }

            op::TPUSHF => {
                if let Err(e) = tape.push_f(fr!(fld!(w_a))) {
                    return Err(trap(TrapKind::Tape(e), pc));
                }
            }
            op::TPOPF => match tape.pop_f() {
                Ok(v) => fw!(fld!(w_a), v),
                Err(e) => return Err(trap(TrapKind::Tape(e), pc)),
            },
            op::TPUSHI => {
                if let Err(e) = tape.push_i(ir!(fld!(w_a))) {
                    return Err(trap(TrapKind::Tape(e), pc));
                }
            }
            op::TPOPI => match tape.pop_i() {
                Ok(v) => iw!(fld!(w_a), v),
                Err(e) => return Err(trap(TrapKind::Tape(e), pc)),
            },

            op::ALLOCF => {
                let n = ir!(fld!(w_b));
                if n < 0 {
                    return Err(trap(TrapKind::NegativeArrayLen(n), pc));
                }
                stats.local_array_bytes += n as usize * 8;
                match aslot!(fld!(w_a)) {
                    ArraySlot::F(v) | ArraySlot::StaleF(v) => {
                        v.clear();
                        v.resize(n as usize, 0.0);
                        let buf = std::mem::take(v);
                        *aslot!(fld!(w_a)) = ArraySlot::F(buf);
                    }
                    slot => *slot = ArraySlot::F(vec![0.0; n as usize]),
                }
            }
            op::ALLOCI => {
                let n = ir!(fld!(w_b));
                if n < 0 {
                    return Err(trap(TrapKind::NegativeArrayLen(n), pc));
                }
                stats.local_array_bytes += n as usize * 8;
                match aslot!(fld!(w_a)) {
                    ArraySlot::I(v) | ArraySlot::StaleI(v) => {
                        v.clear();
                        v.resize(n as usize, 0);
                        let buf = std::mem::take(v);
                        *aslot!(fld!(w_a)) = ArraySlot::I(buf);
                    }
                    slot => *slot = ArraySlot::I(vec![0; n as usize]),
                }
            }

            op::FMULADD => {
                // Two separate roundings, exactly like the unfused pair.
                let p = fr!(fld!(w_b)) * fr!(fld!(w_c));
                fw!(fld!(w_a), p + fr!(fld!(w_d)));
            }
            op::FADDROUND => fw!(
                fld!(w_a),
                round_to(fr!(fld!(w_b)) + fr!(fld!(w_c)), ty_from(fld!(w_d) as u8))
            ),
            op::FSUBROUND => fw!(
                fld!(w_a),
                round_to(fr!(fld!(w_b)) - fr!(fld!(w_c)), ty_from(fld!(w_d) as u8))
            ),
            op::FMULROUND => fw!(
                fld!(w_a),
                round_to(fr!(fld!(w_b)) * fr!(fld!(w_c)), ty_from(fld!(w_d) as u8))
            ),
            op::FDIVROUND => fw!(
                fld!(w_a),
                round_to(fr!(fld!(w_b)) / fr!(fld!(w_c)), ty_from(fld!(w_d) as u8))
            ),
            op::FINTR1ROUND => {
                let d = fld!(w_d);
                let intr = unsafe { *INTRINSICS.get_unchecked(d & 63) };
                fw!(
                    fld!(w_a),
                    round_to(eval1(intr, fr!(fld!(w_b)), approx), ty_from((d >> 6) as u8))
                );
            }
            op::FINTR2ROUND => {
                let d = fld!(w_d);
                let intr = unsafe { *INTRINSICS.get_unchecked(d & 63) };
                fw!(
                    fld!(w_a),
                    round_to(
                        eval2(intr, fr!(fld!(w_b)), fr!(fld!(w_c)), approx),
                        ty_from((d >> 6) as u8)
                    )
                );
            }
            op::FLOADOFF => {
                let index = ir!(fld!(w_c)).wrapping_add(fld!(w_d_i8));
                match aslot!(fld!(w_b)) {
                    ArraySlot::F(v) => match v.get(index as usize) {
                        Some(&x) if index >= 0 => fw!(fld!(w_a), x),
                        _ => {
                            let len = v.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            op::FSTOREOFF => {
                let index = ir!(fld!(w_b)).wrapping_add(fld!(w_d_i8));
                let v = fr!(fld!(w_c));
                match aslot!(fld!(w_a)) {
                    ArraySlot::F(vec) => match vec.get_mut(index as usize) {
                        Some(slot) if index >= 0 => *slot = v,
                        _ => {
                            let len = vec.len();
                            return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                        }
                    },
                    _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                }
            }
            op::IADDIMM => iw!(fld!(w_a), ir!(fld!(w_b)).wrapping_add(fld!(w_c_i16))),
            op::IADDIMMP => iw!(
                fld!(w_a),
                ir!(fld!(w_b)).wrapping_add(unsafe { *pool.get_unchecked(fld!(w_c)) } as i64)
            ),
            op::FCJF => {
                if !fcmp(cmp_from(fld!(w_d) as u8), fr!(fld!(w_a)), fr!(fld!(w_b))) {
                    jump!(fld!(w_c));
                }
            }
            op::FCJT => {
                if fcmp(cmp_from(fld!(w_d) as u8), fr!(fld!(w_a)), fr!(fld!(w_b))) {
                    jump!(fld!(w_c));
                }
            }
            op::ICJF => {
                if !icmp(cmp_from(fld!(w_d) as u8), ir!(fld!(w_a)), ir!(fld!(w_b))) {
                    jump!(fld!(w_c));
                }
            }
            op::ICJT => {
                if icmp(cmp_from(fld!(w_d) as u8), ir!(fld!(w_a)), ir!(fld!(w_b))) {
                    jump!(fld!(w_c));
                }
            }

            op::FADDC => fw!(
                fld!(w_a),
                fr!(fld!(w_b)) + f64::from_bits(unsafe { *pool.get_unchecked(fld!(w_c)) })
            ),
            op::FSUBC => fw!(
                fld!(w_a),
                fr!(fld!(w_b)) - f64::from_bits(unsafe { *pool.get_unchecked(fld!(w_c)) })
            ),
            op::FSUBCR => fw!(
                fld!(w_a),
                f64::from_bits(unsafe { *pool.get_unchecked(fld!(w_c)) }) - fr!(fld!(w_b))
            ),
            op::FMULC => fw!(
                fld!(w_a),
                fr!(fld!(w_b)) * f64::from_bits(unsafe { *pool.get_unchecked(fld!(w_c)) })
            ),
            op::FDIVC => fw!(
                fld!(w_a),
                fr!(fld!(w_b)) / f64::from_bits(unsafe { *pool.get_unchecked(fld!(w_c)) })
            ),
            op::FDIVCR => fw!(
                fld!(w_a),
                f64::from_bits(unsafe { *pool.get_unchecked(fld!(w_c)) }) / fr!(fld!(w_b))
            ),
            op::ICJFI => {
                if !icmp(cmp_from(fld!(w_d) as u8), ir!(fld!(w_a)), fld!(w_b_i16)) {
                    jump!(fld!(w_c));
                }
            }
            op::ICJTI => {
                if icmp(cmp_from(fld!(w_d) as u8), ir!(fld!(w_a)), fld!(w_b_i16)) {
                    jump!(fld!(w_c));
                }
            }
            op::RETF => {
                let v = fr!(fld!(w_a));
                let v = match func.ret {
                    RetKind::F(ft) => round_to(v, ft),
                    _ => v,
                };
                if trap_nf && !v.is_finite() {
                    return Err(nonfinite_trap(func, fld!(w_a), v, pc));
                }
                executed += (pc - block_start + 1) as u64;
                break Some(Value::F(v));
            }
            op::RETI => {
                executed += (pc - block_start + 1) as u64;
                break Some(Value::I(ir!(fld!(w_a))));
            }
            op::RETB => {
                executed += (pc - block_start + 1) as u64;
                break Some(Value::B(ir!(fld!(w_a)) != 0));
            }
            op::RETVOID => {
                executed += (pc - block_start + 1) as u64;
                break None;
            }
            op::TRAPMISSING => return Err(trap(TrapKind::MissingReturn, pc)),
            // Unreachable for validated functions; kept safe anyway.
            _ => {
                return Err(trap(
                    TrapKind::InvalidBytecode(format!("unknown packed opcode {}", fld!(w_op))),
                    pc,
                ))
            }
        }
        pc += 1;
    };
    stats.instrs_executed = executed;
    // Returns are the other budget checkpoint (backward jumps are the
    // first): a run never reports success past the budget.
    if executed > budget {
        return Err(trap(
            TrapKind::InstrBudgetExhausted { executed },
            pc.min(len.saturating_sub(1)),
        ));
    }
    Ok(ret)
}

#[inline]
pub(crate) fn fcmp(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[inline]
pub(crate) fn icmp(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, compile_default, CompileOptions, PrecisionMap};
    use chef_ir::ast::VarId;
    use chef_ir::parser::parse_program;
    use chef_ir::typeck::check_program;

    fn run_src(src: &str, args: Vec<ArgValue>) -> CallOutcome {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        run(&f, args).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let out = run_src(
            "double f(double x, double y) { return x * y + 1.0; }",
            vec![ArgValue::F(3.0), ArgValue::F(4.0)],
        );
        assert_eq!(out.ret_f(), 13.0);
    }

    #[test]
    fn listing1_float_addition_rounds() {
        // The paper's Listing 1: z = x + y in float.
        let out = run_src(
            "float func(float x, float y) { float z; z = x + y; return z; }",
            vec![ArgValue::F(1.95e-5), ArgValue::F(1.37e-7)],
        );
        let exact = 1.95e-5f64 + 1.37e-7f64;
        let f32_result = (1.95e-5f32 + 1.37e-7f32) as f64;
        assert_eq!(out.ret_f(), f32_result);
        assert_ne!(out.ret_f(), exact);
    }

    #[test]
    fn loops_compute_sums() {
        let out = run_src(
            "double f(int n) { double s = 0.0; for (int i = 1; i <= n; i++) { s += i; } return s; }",
            vec![ArgValue::I(100)],
        );
        assert_eq!(out.ret_f(), 5050.0);
    }

    #[test]
    fn while_loop_and_division() {
        let out = run_src(
            "int f(int n) { int c = 0; while (n > 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } c++; } return c; }",
            vec![ArgValue::I(27)],
        );
        assert_eq!(out.ret.unwrap().as_i(), 111); // Collatz steps for 27
    }

    #[test]
    fn by_ref_scalars_are_written_back() {
        let out = run_src(
            "void f(double x, double &out) { out = x * 2.0; }",
            vec![ArgValue::F(21.0), ArgValue::F(0.0)],
        );
        assert_eq!(out.args[1], ArgValue::F(42.0));
    }

    #[test]
    fn arrays_in_and_out() {
        let out = run_src(
            "void scale(double a[], int n, double k) { for (int i = 0; i < n; i++) { a[i] *= k; } }",
            vec![ArgValue::FArr(vec![1.0, 2.0, 3.0]), ArgValue::I(3), ArgValue::F(2.0)],
        );
        assert_eq!(out.args[0].as_farr(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn local_arrays_work() {
        let out = run_src(
            "double f(int n) { double r[n]; for (int i = 0; i < n; i++) { r[i] = i * 1.0; } double s = 0.0; for (int i = 0; i < n; i++) { s += r[i]; } return s; }",
            vec![ArgValue::I(10)],
        );
        assert_eq!(out.ret_f(), 45.0);
        assert_eq!(out.stats.local_array_bytes, 80);
    }

    #[test]
    fn oob_access_traps() {
        let mut p = parse_program("double f(double a[]) { return a[5]; }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let err = run(&f, vec![ArgValue::FArr(vec![1.0, 2.0])]).unwrap_err();
        assert_eq!(err.kind, TrapKind::OobIndex { idx: 5, len: 2 });
    }

    #[test]
    fn div_by_zero_traps() {
        let mut p = parse_program("int f(int n) { return 1 / n; }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let err = run(&f, vec![ArgValue::I(0)]).unwrap_err();
        assert_eq!(err.kind, TrapKind::DivByZero);
        // Float division by zero is IEEE: no trap.
        let out = run_src(
            "double f(double x) { return 1.0 / x; }",
            vec![ArgValue::F(0.0)],
        );
        assert_eq!(out.ret_f(), f64::INFINITY);
    }

    #[test]
    fn missing_return_traps() {
        let mut p = parse_program("double f(double x) { x = x + 1.0; }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let err = run(&f, vec![ArgValue::F(0.0)]).unwrap_err();
        assert_eq!(err.kind, TrapKind::MissingReturn);
    }

    #[test]
    fn instr_budget_stops_infinite_loop() {
        let mut p = parse_program("void f() { while (true) { } }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let opts = ExecOptions {
            max_instrs: Some(10_000),
            ..Default::default()
        };
        let err = run_with(&f, vec![], &opts).unwrap_err();
        let TrapKind::InstrBudgetExhausted { executed } = err.kind else {
            panic!("expected budget trap, got {:?}", err.kind);
        };
        assert!(executed > 10_000, "count {executed} must exceed the budget");
    }

    #[test]
    fn budget_is_block_granular_not_per_instruction() {
        // A long straight-line block may overshoot the budget but a loop
        // cannot escape it: the backward jump is the checkpoint.
        let mut p = parse_program(
            "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += 1.0; } return s; }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let opts = ExecOptions {
            max_instrs: Some(50),
            ..Default::default()
        };
        let err = run_with(&f, vec![ArgValue::I(1_000_000)], &opts).unwrap_err();
        assert!(
            matches!(err.kind, TrapKind::InstrBudgetExhausted { executed } if executed > 50),
            "{:?}",
            err.kind
        );
        // A run that fits the budget is unaffected.
        let ok = run_with(&f, vec![ArgValue::I(2)], &opts).unwrap();
        assert_eq!(ok.ret_f(), 2.0);
    }

    #[test]
    fn deadline_stops_infinite_loop_with_a_typed_trap() {
        let mut p = parse_program("void f() { while (true) { } }").unwrap();
        check_program(&mut p).unwrap();
        // Both dispatch loops: enum (pack: false) and packed.
        for pack in [false, true] {
            let f = compile(
                &p.functions[0],
                &CompileOptions {
                    pack,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(f.packed.is_some(), pack);
            let opts = ExecOptions::default().deadline_in(std::time::Duration::from_millis(5));
            let err = run_with(&f, vec![], &opts).unwrap_err();
            let TrapKind::DeadlineExceeded { executed } = err.kind else {
                panic!("expected deadline trap, got {:?} (pack: {pack})", err.kind);
            };
            assert!(
                executed >= DEADLINE_STRIDE,
                "the first probe happens a full stride in, not before ({executed})"
            );
            // The trap attributes a real pc (the loop's backward jump).
            assert!(err.pc < f.instrs.len(), "pc {} out of range", err.pc);
        }
    }

    #[test]
    fn short_runs_complete_even_under_an_expired_deadline() {
        // Probes are stride-amortized: a run shorter than one stride
        // never reads the clock, so a deadline already in the past
        // cannot stop it — completion wins over a late cancellation.
        let mut p = parse_program(
            "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += 1.0; } return s; }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let opts = ExecOptions {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
            ..Default::default()
        };
        let ok = run_with(&f, vec![ArgValue::I(100)], &opts).unwrap();
        assert_eq!(ok.ret_f(), 100.0);
        // The same expired deadline stops a loop longer than a stride.
        let err = run_with(&f, vec![ArgValue::I(10_000_000)], &opts).unwrap_err();
        assert!(
            matches!(err.kind, TrapKind::DeadlineExceeded { .. }),
            "{:?}",
            err.kind
        );
    }

    #[test]
    fn intrinsics_evaluate() {
        let out = run_src(
            "double f(double x) { return sqrt(x) + pow(x, 2.0) + fabs(-x); }",
            vec![ArgValue::F(4.0)],
        );
        assert_eq!(out.ret_f(), 2.0 + 16.0 + 4.0);
    }

    #[test]
    fn approx_config_changes_results() {
        let mut p = parse_program("double f(double x) { return exp(x); }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let exact = run(&f, vec![ArgValue::F(1.0)]).unwrap().ret_f();
        let opts = ExecOptions {
            approx: ApproxConfig::exact().with("exp", fastapprox::registry::Grade::Fast),
            ..Default::default()
        };
        let approx = run_with(&f, vec![ArgValue::F(1.0)], &opts).unwrap().ret_f();
        assert_ne!(exact, approx);
        assert!((exact - approx).abs() < 1e-3);
    }

    #[test]
    fn demoted_param_rounds_on_entry() {
        let mut p = parse_program("double f(double x) { return x; }").unwrap();
        check_program(&mut p).unwrap();
        let opts = CompileOptions {
            precisions: PrecisionMap::empty().with(VarId(0), chef_ir::types::FloatTy::F32),
            ..Default::default()
        };
        let f = compile(&p.functions[0], &opts).unwrap();
        let x = 1.0 / 3.0;
        let out = run(&f, vec![ArgValue::F(x)]).unwrap();
        assert_eq!(out.ret_f(), x as f32 as f64);
    }

    #[test]
    fn demoted_array_param_rounds_elements() {
        let mut p = parse_program("double f(double a[]) { return a[0] + a[1]; }").unwrap();
        check_program(&mut p).unwrap();
        let opts = CompileOptions {
            precisions: PrecisionMap::empty().with(VarId(0), chef_ir::types::FloatTy::F32),
            ..Default::default()
        };
        let f = compile(&p.functions[0], &opts).unwrap();
        let (x, y) = (1.0 / 3.0, 2.0 / 7.0);
        let out = run(&f, vec![ArgValue::FArr(vec![x, y])]).unwrap();
        assert_eq!(out.ret_f(), (x as f32 as f64) + (y as f32 as f64));
    }

    #[test]
    fn tape_ops_round_trip_through_vm() {
        use chef_ir::ast::{Expr, LValue, Stmt, StmtKind, VarRef};
        // Hand-build: void f(double &x) { push x; x = 0; pop x; }
        let mut p = parse_program("void f(double &x) { x = 0.0; }").unwrap();
        check_program(&mut p).unwrap();
        let func = &mut p.functions[0];
        let xref = VarRef::resolved("x", VarId(0));
        let push = Stmt::synth(StmtKind::TapePush(Expr::var(
            "x",
            VarId(0),
            chef_ir::types::Type::Float(chef_ir::types::FloatTy::F64),
        )));
        let pop = Stmt::synth(StmtKind::TapePop(LValue::Var(xref)));
        func.body.stmts.insert(0, push);
        func.body.stmts.push(pop);
        let f = compile_default(func).unwrap();
        let out = run(&f, vec![ArgValue::F(7.5)]).unwrap();
        assert_eq!(out.args[0], ArgValue::F(7.5)); // restored by pop
        assert_eq!(out.stats.tape_total_pushes, 1);
        assert_eq!(out.stats.tape_peak_bytes, 8);
    }

    #[test]
    fn tape_limit_reproduces_oom() {
        use chef_ir::ast::{Expr, Stmt, StmtKind};
        let mut p = parse_program(
            "void f(int n) { for (int i = 0; i < n; i++) { double t = 1.0; t = 2.0; } }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let func = &mut p.functions[0];
        // Add a tape push inside the loop body.
        let push = Stmt::synth(StmtKind::TapePush(Expr::flit(1.0)));
        match &mut func.body.stmts[0].kind {
            StmtKind::For { body, .. } => body.stmts.push(push),
            _ => unreachable!(),
        }
        let f = compile_default(func).unwrap();
        let opts = ExecOptions {
            tape_limit: Some(1024),
            ..Default::default()
        };
        // 100 pushes fit easily.
        assert!(run_with(&f, vec![ArgValue::I(100)], &opts).is_ok());
        // A million pushes exceed 1 KiB.
        let err = run_with(&f, vec![ArgValue::I(1_000_000)], &opts).unwrap_err();
        assert!(matches!(
            err.kind,
            TrapKind::Tape(TapeError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn machine_reuse_is_bit_identical_to_fresh_runs() {
        let mut p = parse_program(
            "double f(double x, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += sin(x + i * 0.01); } return s; }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let opts = ExecOptions::default();
        let mut m = Machine::new();
        for k in 0..10 {
            let args = vec![ArgValue::F(0.1 * k as f64), ArgValue::I(50 + k)];
            let reused = m.run_reused(&f, args.clone(), &opts).unwrap();
            let fresh = Machine::new().run_reused(&f, args, &opts).unwrap();
            assert_eq!(reused.ret_f().to_bits(), fresh.ret_f().to_bits());
            assert_eq!(reused.stats, fresh.stats);
        }
    }

    #[test]
    fn machine_reuse_resets_tape_between_calls() {
        use chef_ir::ast::{Expr, Stmt, StmtKind};
        let mut p = parse_program("void f() { double t = 1.0; t = 2.0; }").unwrap();
        check_program(&mut p).unwrap();
        let func = &mut p.functions[0];
        func.body
            .stmts
            .push(Stmt::synth(StmtKind::TapePush(Expr::flit(1.0))));
        let f = compile_default(func).unwrap();
        let opts = ExecOptions {
            tape_limit: Some(16),
            ..Default::default()
        };
        let mut m = Machine::new();
        // Each call pushes once; with a 2-entry budget this only survives
        // repeated calls if the tape is reset between them.
        for _ in 0..100 {
            let out = m.run_reused(&f, vec![], &opts).unwrap();
            assert_eq!(out.stats.tape_total_pushes, 1);
            assert_eq!(out.stats.tape_peak_bytes, 8);
        }
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let mut p = parse_program(
            "double f(double x) { double s = 0.0; for (int i = 0; i < 100; i++) { s += x * i; } return s; }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let opts = ExecOptions::default();
        let sets: Vec<Vec<ArgValue>> = (0..20)
            .map(|k| vec![ArgValue::F(k as f64 * 0.37)])
            .collect();
        let batched = run_batch(&f, sets.clone(), &opts);
        let parallel = run_batch_parallel(&f, sets.clone(), &opts, Some(4));
        for ((set, b), par) in sets.into_iter().zip(&batched).zip(&parallel) {
            let single = run_with(&f, set, &opts).unwrap();
            let b = b.as_ref().unwrap();
            let par = par.as_ref().unwrap();
            assert_eq!(single.ret_f().to_bits(), b.ret_f().to_bits());
            assert_eq!(single.ret_f().to_bits(), par.ret_f().to_bits());
            assert_eq!(single.stats, b.stats);
            assert_eq!(single.stats, par.stats);
        }
    }

    #[test]
    fn batch_preserves_per_call_traps() {
        let mut p = parse_program("int f(int n) { return 10 / n; }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let sets = vec![
            vec![ArgValue::I(2)],
            vec![ArgValue::I(0)], // traps
            vec![ArgValue::I(5)],
        ];
        let out = run_batch_parallel(&f, sets, &ExecOptions::default(), Some(2));
        assert_eq!(out[0].as_ref().unwrap().ret.unwrap().as_i(), 5);
        assert_eq!(out[1].as_ref().unwrap_err().kind, TrapKind::DivByZero);
        assert_eq!(out[2].as_ref().unwrap().ret.unwrap().as_i(), 2);
    }

    #[test]
    fn machine_reuse_does_not_leak_array_slots_across_calls() {
        use chef_ir::span::Span;
        // Function A binds an array argument into slot 0.
        let mut p = parse_program("double f(double a[]) { return a[0]; }").unwrap();
        check_program(&mut p).unwrap();
        let a = compile_default(&p.functions[0]).unwrap();
        // Hand-built function B reads slot 0 without binding or allocating
        // it. On a fresh machine that traps; on a reused machine it must
        // trap identically instead of reading A's leftover buffer.
        let b = CompiledFunction {
            name: "leaky".into(),
            instrs: vec![
                Instr::IConst { dst: IReg(0), v: 0 },
                Instr::FLoad {
                    dst: FReg(0),
                    arr: AReg(0),
                    idx: IReg(0),
                },
                Instr::RetF { src: FReg(0) },
            ],
            spans: vec![Span::DUMMY; 3],
            n_fregs: 1,
            n_iregs: 1,
            n_aregs: 1,
            params: vec![],
            ret: RetKind::F(chef_ir::types::FloatTy::F64),
            fvar_names: vec![],
            avar_names: vec![],
            packed: None,
        };
        let opts = ExecOptions::default();
        let mut m = Machine::new();
        let fresh = Machine::new().run_reused(&b, vec![], &opts).unwrap_err();
        assert_eq!(fresh.kind, TrapKind::OobIndex { idx: 0, len: 0 });
        let ok = m
            .run_reused(&a, vec![ArgValue::FArr(vec![42.0])], &opts)
            .unwrap();
        assert_eq!(ok.ret_f(), 42.0);
        let reused = m.run_reused(&b, vec![], &opts).unwrap_err();
        assert_eq!(reused.kind, fresh.kind, "reuse must not expose stale slots");
    }

    #[test]
    fn nonfinite_trap_reports_pc_op_and_variable() {
        // Demoting `y` to float makes the f64-finite product 1e30 * 1e30
        // overflow its assignment rounding to +Inf.
        let mut p = parse_program("double f(double x) { double y = x * x; return y; }").unwrap();
        check_program(&mut p).unwrap();
        for pack in [true, false] {
            let copts = CompileOptions {
                precisions: PrecisionMap::empty().with(VarId(1), chef_ir::types::FloatTy::F32),
                fuse: true,
                pack,
                ..Default::default()
            };
            let f = compile(&p.functions[0], &copts).unwrap();
            // Default options: the overflow flows through silently.
            let silent = run(&f, vec![ArgValue::F(1e30)]).unwrap();
            assert!(silent.ret_f().is_infinite());
            // trap_on_nonfinite: trapped at the producing op, attributed
            // to the demoted variable — identically in both dispatchers.
            let nf = ExecOptions {
                trap_on_nonfinite: true,
                ..Default::default()
            };
            let err = run_with(&f, vec![ArgValue::F(1e30)], &nf).unwrap_err();
            let TrapKind::NonFinite { value, op, var } = err.kind else {
                panic!("expected NonFinite, got {:?}", err.kind);
            };
            assert!(value.is_infinite());
            assert!(err.pc < f.instrs.len());
            assert!(op.contains("Mul") || op.contains("Round"), "op `{op}`");
            assert_eq!(var.as_deref(), Some("y"), "pack={pack}");
        }
    }

    #[test]
    fn entry_rounding_overflow_is_attributed_to_the_parameter() {
        let mut p = parse_program("double f(double x) { return x * 0.5; }").unwrap();
        check_program(&mut p).unwrap();
        let copts = CompileOptions {
            precisions: PrecisionMap::empty().with(VarId(0), chef_ir::types::FloatTy::F32),
            fuse: true,
            pack: true,
            ..Default::default()
        };
        let f = compile(&p.functions[0], &copts).unwrap();
        // 1e300 is finite in f64 but rounds to +Inf in float at entry.
        assert!(run(&f, vec![ArgValue::F(1e300)])
            .unwrap()
            .ret_f()
            .is_infinite());
        let nf = ExecOptions {
            trap_on_nonfinite: true,
            ..Default::default()
        };
        let err = run_with(&f, vec![ArgValue::F(1e300)], &nf).unwrap_err();
        let TrapKind::NonFinite { op, var, .. } = err.kind else {
            panic!("expected NonFinite, got {:?}", err.kind);
        };
        assert_eq!(op, "bind_args");
        assert_eq!(var.as_deref(), Some("x"));
    }

    #[test]
    fn trap_on_nonfinite_is_silent_on_finite_runs() {
        let mut p = parse_program(
            "double f(double x, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += sin(x + i); } return s; }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let nf = ExecOptions {
            trap_on_nonfinite: true,
            ..Default::default()
        };
        let args = vec![ArgValue::F(0.3), ArgValue::I(50)];
        let checked = run_with(&f, args.clone(), &nf).unwrap();
        let plain = run(&f, args).unwrap();
        assert_eq!(checked.ret_f().to_bits(), plain.ret_f().to_bits());
        assert_eq!(checked.stats, plain.stats);
    }

    #[test]
    fn fault_plan_injects_traps_nans_and_panics_deterministically() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut p = parse_program(
            "double f(double x, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += x; } return s; }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let args = || vec![ArgValue::F(0.5), ArgValue::I(100)];

        // Injected trap: a genuine budget trap, recoverable on retry
        // because consecutive draws never both fire.
        let opts = ExecOptions {
            fault: Some(FaultPlan::new(Some(FaultKind::Trap), 2, 0, 16)),
            ..Default::default()
        };
        let err = run_with(&f, args(), &opts).unwrap_err();
        assert!(matches!(err.kind, TrapKind::InstrBudgetExhausted { .. }));
        assert_eq!(run_with(&f, args(), &opts).unwrap().ret_f(), 50.0);

        // Injected NaN arms `trap_on_nonfinite` for its run, so the
        // poison surfaces as an attributed trap at binding — it can't
        // launder into a finite-but-wrong result downstream.
        let opts = ExecOptions {
            fault: Some(FaultPlan::new(Some(FaultKind::Nan), 2, 0, 16)),
            ..Default::default()
        };
        let err = run_with(&f, args(), &opts).unwrap_err();
        match &err.kind {
            TrapKind::NonFinite { value, op, var } => {
                assert!(value.is_nan());
                assert_eq!(op, "bind_args");
                assert_eq!(var.as_deref(), Some("x"));
            }
            other => panic!("expected a NonFinite trap, got {other:?}"),
        }
        assert_eq!(err.pc, 0);
        assert_eq!(run_with(&f, args(), &opts).unwrap().ret_f(), 50.0);

        // Injected panic unwinds and the thread-local machine survives.
        let opts = ExecOptions {
            fault: Some(FaultPlan::new(Some(FaultKind::Panic), 2, 0, 16)),
            ..Default::default()
        };
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_with(&f, args(), &opts)));
        assert!(r.is_err());
        assert_eq!(run_with(&f, args(), &opts).unwrap().ret_f(), 50.0);
    }

    #[test]
    fn malformed_bytecode_is_rejected_not_ub() {
        use chef_ir::span::Span;
        let f = CompiledFunction {
            name: "bad".into(),
            instrs: vec![Instr::FAdd {
                dst: FReg(0),
                a: FReg(7),
                b: FReg(0),
            }],
            spans: vec![Span::DUMMY],
            n_fregs: 1,
            n_iregs: 0,
            n_aregs: 0,
            params: vec![],
            ret: RetKind::Void,
            fvar_names: vec![],
            avar_names: vec![],
            packed: None,
        };
        let err = run(&f, vec![]).unwrap_err();
        assert!(matches!(err.kind, TrapKind::InvalidBytecode(_)), "{err:?}");
        // Out-of-range jump targets are rejected too.
        let f = CompiledFunction {
            name: "bad_jmp".into(),
            instrs: vec![Instr::Jmp { target: 99 }],
            spans: vec![Span::DUMMY],
            n_fregs: 0,
            n_iregs: 0,
            n_aregs: 0,
            params: vec![],
            ret: RetKind::Void,
            fvar_names: vec![],
            avar_names: vec![],
            packed: None,
        };
        let err = run(&f, vec![]).unwrap_err();
        assert!(matches!(err.kind, TrapKind::InvalidBytecode(_)), "{err:?}");
    }
}
