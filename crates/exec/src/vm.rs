//! The register VM that executes compiled KernelC.
//!
//! One call = one function activation (user calls are inlined before
//! compilation). The VM owns the runtime [`Tape`] and reports execution
//! statistics — instruction count, tape peak, allocated array bytes — that
//! the benchmark harness turns into the analysis-time and peak-memory
//! series of the paper's Figs. 4–8.

use crate::bytecode::*;
use crate::intrinsics::{eval1, eval2, ApproxConfig};
use crate::precision::round_to;
use crate::tape::{Tape, TapeError};
use crate::value::{ArgValue, Value};
use chef_ir::span::Span;
use chef_ir::types::FloatTy;

/// Runtime execution options.
#[derive(Clone, Debug, Default)]
pub struct ExecOptions {
    /// Approximate-intrinsics configuration (the FastApprox relink).
    pub approx: ApproxConfig,
    /// Tape memory budget in bytes; exceeding it traps with
    /// [`TrapKind::Tape`] — this reproduces the ADAPT out-of-memory points
    /// in the paper's figures.
    pub tape_limit: Option<usize>,
    /// Safety valve for tests: trap after this many instructions.
    pub max_instrs: Option<u64>,
}

/// Why execution trapped.
#[derive(Clone, Debug, PartialEq)]
pub enum TrapKind {
    /// Tape failure (out of memory / underflow).
    Tape(TapeError),
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array access out of bounds.
    OobIndex {
        /// The offending index.
        idx: i64,
        /// The array length.
        len: usize,
    },
    /// Negative length in a local array allocation.
    NegativeArrayLen(i64),
    /// Control reached the end of a non-void function.
    MissingReturn,
    /// The [`ExecOptions::max_instrs`] budget was exhausted.
    InstrBudgetExhausted,
    /// Argument count/kind mismatch at call entry.
    BadArguments(String),
}

/// A trap with its program location.
#[derive(Clone, Debug, PartialEq)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// Instruction index.
    pub pc: usize,
    /// Source span of the trapping instruction.
    pub span: Span,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trap at pc {}: {:?}", self.pc, self.kind)
    }
}

impl std::error::Error for Trap {}

/// Execution statistics for one call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instrs_executed: u64,
    /// Tape high-water mark in bytes.
    pub tape_peak_bytes: usize,
    /// Total tape pushes (traffic).
    pub tape_total_pushes: u64,
    /// Bytes allocated for local arrays (sum over allocations).
    pub local_array_bytes: usize,
    /// Bytes of array arguments passed in.
    pub arg_array_bytes: usize,
}

impl ExecStats {
    /// Peak working-set estimate: argument arrays + local arrays + tape
    /// peak. This is the "Memory (MB)" series of Figs. 4–8.
    pub fn peak_memory_bytes(&self) -> usize {
        self.arg_array_bytes + self.local_array_bytes + self.tape_peak_bytes
    }
}

/// The result of a successful call.
#[derive(Clone, Debug)]
pub struct CallOutcome {
    /// Return value, if the function returns one.
    pub ret: Option<Value>,
    /// The argument vector with by-ref scalars updated and arrays moved
    /// back (same order as passed in).
    pub args: Vec<ArgValue>,
    /// Execution statistics.
    pub stats: ExecStats,
}

impl CallOutcome {
    /// The float return value; panics if the function did not return one.
    pub fn ret_f(&self) -> f64 {
        self.ret.expect("function returned no value").as_f()
    }
}

enum ArraySlot {
    Empty,
    F(Vec<f64>),
    I(Vec<i64>),
}

/// Runs `func` on `args` with default options.
pub fn run(func: &CompiledFunction, args: Vec<ArgValue>) -> Result<CallOutcome, Trap> {
    run_with(func, args, &ExecOptions::default())
}

/// Runs `func` on `args` under `opts`.
pub fn run_with(
    func: &CompiledFunction,
    args: Vec<ArgValue>,
    opts: &ExecOptions,
) -> Result<CallOutcome, Trap> {
    Machine::new(func, opts).run(args)
}

struct Machine<'a> {
    func: &'a CompiledFunction,
    opts: &'a ExecOptions,
    f: Vec<f64>,
    i: Vec<i64>,
    a: Vec<ArraySlot>,
    tape: Tape,
    stats: ExecStats,
}

impl<'a> Machine<'a> {
    fn new(func: &'a CompiledFunction, opts: &'a ExecOptions) -> Self {
        let tape = match opts.tape_limit {
            Some(limit) => Tape::with_limit(limit),
            None => Tape::new(),
        };
        Machine {
            func,
            opts,
            f: vec![0.0; func.n_fregs as usize],
            i: vec![0; func.n_iregs as usize],
            a: (0..func.n_aregs).map(|_| ArraySlot::Empty).collect(),
            tape,
            stats: ExecStats::default(),
        }
    }

    fn trap(&self, kind: TrapKind, pc: usize) -> Trap {
        let span = self.func.spans.get(pc).copied().unwrap_or(Span::DUMMY);
        Trap { kind, pc, span }
    }

    fn bind_args(&mut self, args: Vec<ArgValue>) -> Result<(), Trap> {
        if args.len() != self.func.params.len() {
            return Err(self.trap(
                TrapKind::BadArguments(format!(
                    "expected {} arguments, got {}",
                    self.func.params.len(),
                    args.len()
                )),
                0,
            ));
        }
        for (spec, arg) in self.func.params.iter().zip(args) {
            match (spec.kind, arg) {
                (ParamKind::F(prec), ArgValue::F(v)) => {
                    self.f[spec.reg as usize] = round_to(v, prec);
                }
                (ParamKind::F(prec), ArgValue::I(v)) => {
                    self.f[spec.reg as usize] = round_to(v as f64, prec);
                }
                (ParamKind::I, ArgValue::I(v)) => {
                    self.i[spec.reg as usize] = v;
                }
                (ParamKind::B, ArgValue::B(v)) => {
                    self.i[spec.reg as usize] = v as i64;
                }
                (ParamKind::FArr(prec), ArgValue::FArr(mut v)) => {
                    self.stats.arg_array_bytes += v.len() * 8;
                    if prec != FloatTy::F64 {
                        for x in &mut v {
                            *x = round_to(*x, prec);
                        }
                    }
                    self.a[spec.reg as usize] = ArraySlot::F(v);
                }
                (ParamKind::IArr, ArgValue::IArr(v)) => {
                    self.stats.arg_array_bytes += v.len() * 8;
                    self.a[spec.reg as usize] = ArraySlot::I(v);
                }
                (kind, got) => {
                    return Err(self.trap(
                        TrapKind::BadArguments(format!(
                            "parameter `{}` expects {kind:?}, got {got:?}",
                            spec.name
                        )),
                        0,
                    ))
                }
            }
        }
        Ok(())
    }

    fn unbind_args(&mut self) -> Vec<ArgValue> {
        let mut out = Vec::with_capacity(self.func.params.len());
        for spec in &self.func.params {
            let v = match spec.kind {
                ParamKind::F(_) => ArgValue::F(self.f[spec.reg as usize]),
                ParamKind::I => ArgValue::I(self.i[spec.reg as usize]),
                ParamKind::B => ArgValue::B(self.i[spec.reg as usize] != 0),
                ParamKind::FArr(_) => {
                    match std::mem::replace(&mut self.a[spec.reg as usize], ArraySlot::Empty) {
                        ArraySlot::F(v) => ArgValue::FArr(v),
                        _ => ArgValue::FArr(Vec::new()),
                    }
                }
                ParamKind::IArr => {
                    match std::mem::replace(&mut self.a[spec.reg as usize], ArraySlot::Empty) {
                        ArraySlot::I(v) => ArgValue::IArr(v),
                        _ => ArgValue::IArr(Vec::new()),
                    }
                }
            };
            out.push(v);
        }
        out
    }

    fn run(mut self, args: Vec<ArgValue>) -> Result<CallOutcome, Trap> {
        self.bind_args(args)?;
        let instrs = &self.func.instrs;
        let approx = &self.opts.approx;
        let mut pc: usize = 0;
        let ret: Option<Value> = loop {
            if pc >= instrs.len() {
                break None; // treated like RetVoid for robustness
            }
            self.stats.instrs_executed += 1;
            if let Some(budget) = self.opts.max_instrs {
                if self.stats.instrs_executed > budget {
                    return Err(self.trap(TrapKind::InstrBudgetExhausted, pc));
                }
            }
            match &instrs[pc] {
                Instr::FConst { dst, v } => self.f[dst.0 as usize] = *v,
                Instr::FMov { dst, src } => self.f[dst.0 as usize] = self.f[src.0 as usize],
                Instr::FAdd { dst, a, b } => {
                    self.f[dst.0 as usize] = self.f[a.0 as usize] + self.f[b.0 as usize]
                }
                Instr::FSub { dst, a, b } => {
                    self.f[dst.0 as usize] = self.f[a.0 as usize] - self.f[b.0 as usize]
                }
                Instr::FMul { dst, a, b } => {
                    self.f[dst.0 as usize] = self.f[a.0 as usize] * self.f[b.0 as usize]
                }
                Instr::FDiv { dst, a, b } => {
                    self.f[dst.0 as usize] = self.f[a.0 as usize] / self.f[b.0 as usize]
                }
                Instr::FNeg { dst, src } => self.f[dst.0 as usize] = -self.f[src.0 as usize],
                Instr::FRound { dst, src, ty } => {
                    self.f[dst.0 as usize] = round_to(self.f[src.0 as usize], *ty)
                }
                Instr::FIntr1 { dst, intr, a } => {
                    self.f[dst.0 as usize] = eval1(*intr, self.f[a.0 as usize], approx)
                }
                Instr::FIntr2 { dst, intr, a, b } => {
                    self.f[dst.0 as usize] =
                        eval2(*intr, self.f[a.0 as usize], self.f[b.0 as usize], approx)
                }
                Instr::FCmp { dst, op, a, b } => {
                    let (x, y) = (self.f[a.0 as usize], self.f[b.0 as usize]);
                    self.i[dst.0 as usize] = fcmp(*op, x, y) as i64;
                }
                Instr::FLoad { dst, arr, idx } => {
                    let i = self.i[idx.0 as usize];
                    let v = self.farr(arr.0, i, pc)?;
                    self.f[dst.0 as usize] = v;
                }
                Instr::FStore { arr, idx, src } => {
                    let i = self.i[idx.0 as usize];
                    let v = self.f[src.0 as usize];
                    self.farr_store(arr.0, i, v, pc)?;
                }
                Instr::F2I { dst, src } => {
                    self.i[dst.0 as usize] = self.f[src.0 as usize] as i64
                }
                Instr::I2F { dst, src } => {
                    self.f[dst.0 as usize] = self.i[src.0 as usize] as f64
                }

                Instr::IConst { dst, v } => self.i[dst.0 as usize] = *v,
                Instr::IMov { dst, src } => self.i[dst.0 as usize] = self.i[src.0 as usize],
                Instr::IAdd { dst, a, b } => {
                    self.i[dst.0 as usize] =
                        self.i[a.0 as usize].wrapping_add(self.i[b.0 as usize])
                }
                Instr::ISub { dst, a, b } => {
                    self.i[dst.0 as usize] =
                        self.i[a.0 as usize].wrapping_sub(self.i[b.0 as usize])
                }
                Instr::IMul { dst, a, b } => {
                    self.i[dst.0 as usize] =
                        self.i[a.0 as usize].wrapping_mul(self.i[b.0 as usize])
                }
                Instr::IDiv { dst, a, b } => {
                    let d = self.i[b.0 as usize];
                    if d == 0 {
                        return Err(self.trap(TrapKind::DivByZero, pc));
                    }
                    self.i[dst.0 as usize] = self.i[a.0 as usize].wrapping_div(d);
                }
                Instr::IRem { dst, a, b } => {
                    let d = self.i[b.0 as usize];
                    if d == 0 {
                        return Err(self.trap(TrapKind::DivByZero, pc));
                    }
                    self.i[dst.0 as usize] = self.i[a.0 as usize].wrapping_rem(d);
                }
                Instr::INeg { dst, src } => {
                    self.i[dst.0 as usize] = self.i[src.0 as usize].wrapping_neg()
                }
                Instr::ICmp { dst, op, a, b } => {
                    let (x, y) = (self.i[a.0 as usize], self.i[b.0 as usize]);
                    self.i[dst.0 as usize] = icmp(*op, x, y) as i64;
                }
                Instr::ILoad { dst, arr, idx } => {
                    let i = self.i[idx.0 as usize];
                    let v = self.iarr(arr.0, i, pc)?;
                    self.i[dst.0 as usize] = v;
                }
                Instr::IStore { arr, idx, src } => {
                    let i = self.i[idx.0 as usize];
                    let v = self.i[src.0 as usize];
                    self.iarr_store(arr.0, i, v, pc)?;
                }
                Instr::BNot { dst, src } => {
                    self.i[dst.0 as usize] = (self.i[src.0 as usize] == 0) as i64
                }

                Instr::Jmp { target } => {
                    pc = *target as usize;
                    continue;
                }
                Instr::JmpIfFalse { cond, target } => {
                    if self.i[cond.0 as usize] == 0 {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::JmpIfTrue { cond, target } => {
                    if self.i[cond.0 as usize] != 0 {
                        pc = *target as usize;
                        continue;
                    }
                }

                Instr::TPushF { src } => {
                    let v = self.f[src.0 as usize];
                    if let Err(e) = self.tape.push_f(v) {
                        return Err(self.trap(TrapKind::Tape(e), pc));
                    }
                }
                Instr::TPopF { dst } => match self.tape.pop_f() {
                    Ok(v) => self.f[dst.0 as usize] = v,
                    Err(e) => return Err(self.trap(TrapKind::Tape(e), pc)),
                },
                Instr::TPushI { src } => {
                    let v = self.i[src.0 as usize];
                    if let Err(e) = self.tape.push_i(v) {
                        return Err(self.trap(TrapKind::Tape(e), pc));
                    }
                }
                Instr::TPopI { dst } => match self.tape.pop_i() {
                    Ok(v) => self.i[dst.0 as usize] = v,
                    Err(e) => return Err(self.trap(TrapKind::Tape(e), pc)),
                },

                Instr::AllocF { arr, len } => {
                    let n = self.i[len.0 as usize];
                    if n < 0 {
                        return Err(self.trap(TrapKind::NegativeArrayLen(n), pc));
                    }
                    self.stats.local_array_bytes += n as usize * 8;
                    self.a[arr.0 as usize] = ArraySlot::F(vec![0.0; n as usize]);
                }
                Instr::AllocI { arr, len } => {
                    let n = self.i[len.0 as usize];
                    if n < 0 {
                        return Err(self.trap(TrapKind::NegativeArrayLen(n), pc));
                    }
                    self.stats.local_array_bytes += n as usize * 8;
                    self.a[arr.0 as usize] = ArraySlot::I(vec![0; n as usize]);
                }

                Instr::RetF { src } => {
                    let v = self.f[src.0 as usize];
                    let v = match self.func.ret {
                        RetKind::F(ft) => round_to(v, ft),
                        _ => v,
                    };
                    break Some(Value::F(v));
                }
                Instr::RetI { src } => break Some(Value::I(self.i[src.0 as usize])),
                Instr::RetB { src } => break Some(Value::B(self.i[src.0 as usize] != 0)),
                Instr::RetVoid => break None,
                Instr::TrapMissingReturn => {
                    return Err(self.trap(TrapKind::MissingReturn, pc))
                }
            }
            pc += 1;
        };
        self.stats.tape_peak_bytes = self.tape.peak_bytes();
        self.stats.tape_total_pushes = self.tape.total_pushes();
        let args = self.unbind_args();
        Ok(CallOutcome { ret, args, stats: self.stats })
    }

    #[inline]
    fn farr(&self, arr: u32, idx: i64, pc: usize) -> Result<f64, Trap> {
        match &self.a[arr as usize] {
            ArraySlot::F(v) => {
                if idx < 0 || idx as usize >= v.len() {
                    Err(self.trap(TrapKind::OobIndex { idx, len: v.len() }, pc))
                } else {
                    Ok(v[idx as usize])
                }
            }
            _ => Err(self.trap(TrapKind::OobIndex { idx, len: 0 }, pc)),
        }
    }

    #[inline]
    fn farr_store(&mut self, arr: u32, idx: i64, v: f64, pc: usize) -> Result<(), Trap> {
        match &mut self.a[arr as usize] {
            ArraySlot::F(vec) => {
                if idx < 0 || idx as usize >= vec.len() {
                    let len = vec.len();
                    Err(self.trap(TrapKind::OobIndex { idx, len }, pc))
                } else {
                    vec[idx as usize] = v;
                    Ok(())
                }
            }
            _ => Err(self.trap(TrapKind::OobIndex { idx, len: 0 }, pc)),
        }
    }

    #[inline]
    fn iarr(&self, arr: u32, idx: i64, pc: usize) -> Result<i64, Trap> {
        match &self.a[arr as usize] {
            ArraySlot::I(v) => {
                if idx < 0 || idx as usize >= v.len() {
                    Err(self.trap(TrapKind::OobIndex { idx, len: v.len() }, pc))
                } else {
                    Ok(v[idx as usize])
                }
            }
            _ => Err(self.trap(TrapKind::OobIndex { idx, len: 0 }, pc)),
        }
    }

    #[inline]
    fn iarr_store(&mut self, arr: u32, idx: i64, v: i64, pc: usize) -> Result<(), Trap> {
        match &mut self.a[arr as usize] {
            ArraySlot::I(vec) => {
                if idx < 0 || idx as usize >= vec.len() {
                    let len = vec.len();
                    Err(self.trap(TrapKind::OobIndex { idx, len }, pc))
                } else {
                    vec[idx as usize] = v;
                    Ok(())
                }
            }
            _ => Err(self.trap(TrapKind::OobIndex { idx, len: 0 }, pc)),
        }
    }
}

#[inline]
fn fcmp(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[inline]
fn icmp(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, compile_default, CompileOptions, PrecisionMap};
    use chef_ir::ast::VarId;
    use chef_ir::parser::parse_program;
    use chef_ir::typeck::check_program;

    fn run_src(src: &str, args: Vec<ArgValue>) -> CallOutcome {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        run(&f, args).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let out = run_src(
            "double f(double x, double y) { return x * y + 1.0; }",
            vec![ArgValue::F(3.0), ArgValue::F(4.0)],
        );
        assert_eq!(out.ret_f(), 13.0);
    }

    #[test]
    fn listing1_float_addition_rounds() {
        // The paper's Listing 1: z = x + y in float.
        let out = run_src(
            "float func(float x, float y) { float z; z = x + y; return z; }",
            vec![ArgValue::F(1.95e-5), ArgValue::F(1.37e-7)],
        );
        let exact = 1.95e-5f64 + 1.37e-7f64;
        let f32_result = (1.95e-5f32 + 1.37e-7f32) as f64;
        assert_eq!(out.ret_f(), f32_result);
        assert_ne!(out.ret_f(), exact);
    }

    #[test]
    fn loops_compute_sums() {
        let out = run_src(
            "double f(int n) { double s = 0.0; for (int i = 1; i <= n; i++) { s += i; } return s; }",
            vec![ArgValue::I(100)],
        );
        assert_eq!(out.ret_f(), 5050.0);
    }

    #[test]
    fn while_loop_and_division() {
        let out = run_src(
            "int f(int n) { int c = 0; while (n > 1) { if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; } c++; } return c; }",
            vec![ArgValue::I(27)],
        );
        assert_eq!(out.ret.unwrap().as_i(), 111); // Collatz steps for 27
    }

    #[test]
    fn by_ref_scalars_are_written_back() {
        let out = run_src(
            "void f(double x, double &out) { out = x * 2.0; }",
            vec![ArgValue::F(21.0), ArgValue::F(0.0)],
        );
        assert_eq!(out.args[1], ArgValue::F(42.0));
    }

    #[test]
    fn arrays_in_and_out() {
        let out = run_src(
            "void scale(double a[], int n, double k) { for (int i = 0; i < n; i++) { a[i] *= k; } }",
            vec![ArgValue::FArr(vec![1.0, 2.0, 3.0]), ArgValue::I(3), ArgValue::F(2.0)],
        );
        assert_eq!(out.args[0].as_farr(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn local_arrays_work() {
        let out = run_src(
            "double f(int n) { double r[n]; for (int i = 0; i < n; i++) { r[i] = i * 1.0; } double s = 0.0; for (int i = 0; i < n; i++) { s += r[i]; } return s; }",
            vec![ArgValue::I(10)],
        );
        assert_eq!(out.ret_f(), 45.0);
        assert_eq!(out.stats.local_array_bytes, 80);
    }

    #[test]
    fn oob_access_traps() {
        let mut p = parse_program("double f(double a[]) { return a[5]; }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let err = run(&f, vec![ArgValue::FArr(vec![1.0, 2.0])]).unwrap_err();
        assert_eq!(err.kind, TrapKind::OobIndex { idx: 5, len: 2 });
    }

    #[test]
    fn div_by_zero_traps() {
        let mut p = parse_program("int f(int n) { return 1 / n; }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let err = run(&f, vec![ArgValue::I(0)]).unwrap_err();
        assert_eq!(err.kind, TrapKind::DivByZero);
        // Float division by zero is IEEE: no trap.
        let out = run_src("double f(double x) { return 1.0 / x; }", vec![ArgValue::F(0.0)]);
        assert_eq!(out.ret_f(), f64::INFINITY);
    }

    #[test]
    fn missing_return_traps() {
        let mut p = parse_program("double f(double x) { x = x + 1.0; }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let err = run(&f, vec![ArgValue::F(0.0)]).unwrap_err();
        assert_eq!(err.kind, TrapKind::MissingReturn);
    }

    #[test]
    fn instr_budget_stops_infinite_loop() {
        let mut p = parse_program("void f() { while (true) { } }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let opts = ExecOptions { max_instrs: Some(10_000), ..Default::default() };
        let err = run_with(&f, vec![], &opts).unwrap_err();
        assert_eq!(err.kind, TrapKind::InstrBudgetExhausted);
    }

    #[test]
    fn intrinsics_evaluate() {
        let out = run_src(
            "double f(double x) { return sqrt(x) + pow(x, 2.0) + fabs(-x); }",
            vec![ArgValue::F(4.0)],
        );
        assert_eq!(out.ret_f(), 2.0 + 16.0 + 4.0);
    }

    #[test]
    fn approx_config_changes_results() {
        let mut p = parse_program("double f(double x) { return exp(x); }").unwrap();
        check_program(&mut p).unwrap();
        let f = compile_default(&p.functions[0]).unwrap();
        let exact = run(&f, vec![ArgValue::F(1.0)]).unwrap().ret_f();
        let opts = ExecOptions {
            approx: ApproxConfig::exact()
                .with("exp", fastapprox::registry::Grade::Fast),
            ..Default::default()
        };
        let approx = run_with(&f, vec![ArgValue::F(1.0)], &opts).unwrap().ret_f();
        assert_ne!(exact, approx);
        assert!((exact - approx).abs() < 1e-3);
    }

    #[test]
    fn demoted_param_rounds_on_entry() {
        let mut p = parse_program("double f(double x) { return x; }").unwrap();
        check_program(&mut p).unwrap();
        let opts = CompileOptions {
            precisions: PrecisionMap::empty().with(VarId(0), chef_ir::types::FloatTy::F32),
        };
        let f = compile(&p.functions[0], &opts).unwrap();
        let x = 1.0 / 3.0;
        let out = run(&f, vec![ArgValue::F(x)]).unwrap();
        assert_eq!(out.ret_f(), x as f32 as f64);
    }

    #[test]
    fn demoted_array_param_rounds_elements() {
        let mut p =
            parse_program("double f(double a[]) { return a[0] + a[1]; }").unwrap();
        check_program(&mut p).unwrap();
        let opts = CompileOptions {
            precisions: PrecisionMap::empty().with(VarId(0), chef_ir::types::FloatTy::F32),
        };
        let f = compile(&p.functions[0], &opts).unwrap();
        let (x, y) = (1.0 / 3.0, 2.0 / 7.0);
        let out = run(&f, vec![ArgValue::FArr(vec![x, y])]).unwrap();
        assert_eq!(out.ret_f(), (x as f32 as f64) + (y as f32 as f64));
    }

    #[test]
    fn tape_ops_round_trip_through_vm() {
        use chef_ir::ast::{Expr, LValue, Stmt, StmtKind, VarRef};
        // Hand-build: void f(double &x) { push x; x = 0; pop x; }
        let mut p = parse_program("void f(double &x) { x = 0.0; }").unwrap();
        check_program(&mut p).unwrap();
        let func = &mut p.functions[0];
        let xref = VarRef::resolved("x", VarId(0));
        let push = Stmt::synth(StmtKind::TapePush(Expr::var(
            "x",
            VarId(0),
            chef_ir::types::Type::Float(chef_ir::types::FloatTy::F64),
        )));
        let pop = Stmt::synth(StmtKind::TapePop(LValue::Var(xref)));
        func.body.stmts.insert(0, push);
        func.body.stmts.push(pop);
        let f = compile_default(func).unwrap();
        let out = run(&f, vec![ArgValue::F(7.5)]).unwrap();
        assert_eq!(out.args[0], ArgValue::F(7.5)); // restored by pop
        assert_eq!(out.stats.tape_total_pushes, 1);
        assert_eq!(out.stats.tape_peak_bytes, 8);
    }

    #[test]
    fn tape_limit_reproduces_oom() {
        use chef_ir::ast::{Expr, Stmt, StmtKind};
        let mut p = parse_program(
            "void f(int n) { for (int i = 0; i < n; i++) { double t = 1.0; t = 2.0; } }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let func = &mut p.functions[0];
        // Add a tape push inside the loop body.
        let push = Stmt::synth(StmtKind::TapePush(Expr::flit(1.0)));
        match &mut func.body.stmts[0].kind {
            StmtKind::For { body, .. } => body.stmts.push(push),
            _ => unreachable!(),
        }
        let f = compile_default(func).unwrap();
        let opts = ExecOptions { tape_limit: Some(1024), ..Default::default() };
        // 100 pushes fit easily.
        assert!(run_with(&f, vec![ArgValue::I(100)], &opts).is_ok());
        // A million pushes exceed 1 KiB.
        let err = run_with(&f, vec![ArgValue::I(1_000_000)], &opts).unwrap_err();
        assert!(matches!(err.kind, TrapKind::Tape(TapeError::OutOfMemory { .. })));
    }
}
