//! AST → bytecode compilation with precision simulation.
//!
//! The compiler assigns every variable a register, then lowers statements
//! to the flat [`Instr`] stream. Floating-point precision is handled
//! **bottom-up at compile time**: every expression has an *effective
//! precision* computed from its operands (C promotion rules), and any
//! operation whose effective precision is below `f64` gets an explicit
//! [`Instr::FRound`] after it. Assignments round to the target variable's
//! effective precision.
//!
//! "Effective" matters because of [`PrecisionMap`]: a mixed-precision
//! configuration demotes chosen variables without touching the source,
//! which is this reproduction's stand-in for the paper's manual
//! mixed-precision rewriting. Compiling the same function under different
//! precision maps yields the original and the tuned program variants.
//!
//! User-function calls must be inlined first (`chef-passes`' inliner);
//! compiling a remaining call reports [`CompileError::UserCallNotInlined`].

use crate::bytecode::*;
use chef_ir::ast::*;
use chef_ir::span::Span;
use chef_ir::types::{ElemTy, FloatTy, Type};
use std::collections::HashMap;

/// Per-variable precision overrides: the mixed-precision configuration.
#[derive(Clone, Debug, Default)]
pub struct PrecisionMap {
    map: HashMap<VarId, FloatTy>,
}

impl PrecisionMap {
    /// No overrides: every variable at its declared precision.
    pub fn empty() -> Self {
        PrecisionMap::default()
    }

    /// Demotes (or promotes) variable `id` to `ty`.
    pub fn set(&mut self, id: VarId, ty: FloatTy) {
        self.map.insert(id, ty);
    }

    /// Builder-style [`PrecisionMap::set`].
    pub fn with(mut self, id: VarId, ty: FloatTy) -> Self {
        self.set(id, ty);
        self
    }

    /// The override for `id`, if any.
    pub fn get(&self, id: VarId) -> Option<FloatTy> {
        self.map.get(&id).copied()
    }

    /// Number of overridden variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no variable is overridden.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The overrides as an id-sorted list — a canonical form usable as a
    /// cache key for compiled variants (two maps with the same overrides
    /// produce the same list).
    pub fn sorted_entries(&self) -> Vec<(VarId, FloatTy)> {
        let mut v: Vec<_> = self.map.iter().map(|(&id, &ty)| (id, ty)).collect();
        v.sort_by_key(|&(id, _)| id);
        v
    }
}

/// Compilation options.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Mixed-precision variable overrides.
    pub precisions: PrecisionMap,
    /// Run the bytecode fusion peephole ([`crate::fuse`]) after codegen.
    /// On by default; turn off to inspect or benchmark the raw
    /// instruction stream (results are bit-identical either way).
    pub fuse: bool,
    /// Pack the (fused) instruction stream into the `u64` word format
    /// ([`crate::pack`]) so the VM uses the packed dispatch loop. On by
    /// default; turn off to benchmark or differentially test the enum
    /// interpreter (results are bit-identical either way).
    pub pack: bool,
    /// Run the CFG optimizer tier ([`crate::cfg`]: dominator-guided
    /// loop-invariant code motion + register-file compaction) between
    /// fusion and packing. On by default; turn off to benchmark the
    /// peephole-only pipeline (results are bit-identical either way).
    pub cfg: bool,
}

impl Default for CompileOptions {
    /// Fusion, the CFG tier, and packing default to **on**, overridable
    /// process-wide by the environment: `CHEF_EXEC_FUSE=0` /
    /// `CHEF_EXEC_CFG=0` / `CHEF_EXEC_PACK=0` (also `false`/`off`/`no`)
    /// force the respective default off. This is how CI runs the whole
    /// tier-1 suite against the enum fallback interpreter (or the
    /// peephole-only pipeline) without a recompile; code that sets the
    /// flags explicitly is unaffected. Read once per process.
    fn default() -> Self {
        CompileOptions {
            precisions: PrecisionMap::default(),
            fuse: env_toggle(&FUSE_DEFAULT, "CHEF_EXEC_FUSE"),
            pack: env_toggle(&PACK_DEFAULT, "CHEF_EXEC_PACK"),
            cfg: env_toggle(&CFG_DEFAULT, "CHEF_EXEC_CFG"),
        }
    }
}

static FUSE_DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
static PACK_DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
static CFG_DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

/// `true` unless the environment variable is set to a falsy value
/// (`0`/`false`/`off`/`no`, case-insensitive); cached per process.
fn env_toggle(cell: &std::sync::OnceLock<bool>, name: &str) -> bool {
    *cell.get_or_init(|| match std::env::var(name) {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    })
}

/// Errors the compiler can report.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// A user-function call survived to compilation; run the inliner first.
    UserCallNotInlined {
        /// Callee name.
        name: String,
        /// Call site.
        span: Span,
    },
    /// A variable reference was not resolved by typeck.
    UnresolvedVar {
        /// Variable name.
        name: String,
    },
    /// Any other unsupported construct.
    Unsupported {
        /// Description.
        msg: String,
        /// Location.
        span: Span,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UserCallNotInlined { name, .. } => {
                write!(f, "call to `{name}` must be inlined before compilation")
            }
            CompileError::UnresolvedVar { name } => {
                write!(f, "unresolved variable `{name}` (run the type checker)")
            }
            CompileError::Unsupported { msg, .. } => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles `func` with default options (declared precisions).
pub fn compile_default(func: &Function) -> Result<CompiledFunction, CompileError> {
    compile(func, &CompileOptions::default())
}

/// Compiles `func` under `opts`.
pub fn compile(func: &Function, opts: &CompileOptions) -> Result<CompiledFunction, CompileError> {
    let _span = chef_telemetry::span("compile");
    let mut c = Compiler::new(func, opts);
    c.assign_var_slots();
    c.compile_body()?;
    let mut compiled = c.finish();
    if opts.fuse {
        let _span = chef_telemetry::span("fuse");
        crate::fuse::fuse_to_fixpoint(&mut compiled);
    }
    if opts.cfg {
        crate::cfg::optimize(&mut compiled);
    }
    if opts.pack {
        let _span = chef_telemetry::span("pack");
        compiled.packed = crate::pack::pack_function(&compiled);
    }
    Ok(compiled)
}

/// A variable's home: register plus effective precision.
#[derive(Clone, Copy, Debug)]
enum Slot {
    F(FReg, FloatTy),
    I(IReg),
    B(IReg),
    FA(AReg, FloatTy),
    IA(AReg),
}

/// The result of compiling an expression.
#[derive(Clone, Copy, Debug)]
enum Operand {
    F(FReg, FloatTy),
    I(IReg),
    B(IReg),
}

struct Compiler<'a> {
    func: &'a Function,
    opts: &'a CompileOptions,
    instrs: Vec<Instr>,
    spans: Vec<Span>,
    slots: Vec<Slot>,
    nf_vars: u32,
    ni_vars: u32,
    na: u32,
    tf: u32,
    ti: u32,
    max_f: u32,
    max_i: u32,
    cur_span: Span,
}

impl<'a> Compiler<'a> {
    fn new(func: &'a Function, opts: &'a CompileOptions) -> Self {
        Compiler {
            func,
            opts,
            instrs: Vec::new(),
            spans: Vec::new(),
            slots: Vec::new(),
            nf_vars: 0,
            ni_vars: 0,
            na: 0,
            tf: 0,
            ti: 0,
            max_f: 0,
            max_i: 0,
            cur_span: Span::DUMMY,
        }
    }

    /// Effective precision of a float variable under the precision map.
    fn effective_prec(&self, id: VarId, declared: FloatTy) -> FloatTy {
        self.opts.precisions.get(id).unwrap_or(declared)
    }

    fn assign_var_slots(&mut self) {
        for (id, info) in self.func.vars_iter() {
            let slot = match info.ty {
                Type::Float(ft) => {
                    let r = FReg(self.nf_vars);
                    self.nf_vars += 1;
                    Slot::F(r, self.effective_prec(id, ft))
                }
                Type::Int => {
                    let r = IReg(self.ni_vars);
                    self.ni_vars += 1;
                    Slot::I(r)
                }
                Type::Bool => {
                    let r = IReg(self.ni_vars);
                    self.ni_vars += 1;
                    Slot::B(r)
                }
                Type::Array(ElemTy::Float(ft)) => {
                    let r = AReg(self.na);
                    self.na += 1;
                    Slot::FA(r, self.effective_prec(id, ft))
                }
                Type::Array(ElemTy::Int) => {
                    let r = AReg(self.na);
                    self.na += 1;
                    Slot::IA(r)
                }
                Type::Void => unreachable!("void variables are rejected by typeck"),
            };
            self.slots.push(slot);
        }
        self.max_f = self.nf_vars;
        self.max_i = self.ni_vars;
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.spans.push(self.cur_span);
        self.instrs.len() - 1
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn patch_jump(&mut self, at: usize, target: u32) {
        match &mut self.instrs[at] {
            Instr::Jmp { target: t }
            | Instr::JmpIfFalse { target: t, .. }
            | Instr::JmpIfTrue { target: t, .. } => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn temp_f(&mut self) -> FReg {
        let r = FReg(self.tf);
        self.tf += 1;
        self.max_f = self.max_f.max(self.tf);
        r
    }

    fn temp_i(&mut self) -> IReg {
        let r = IReg(self.ti);
        self.ti += 1;
        self.max_i = self.max_i.max(self.ti);
        r
    }

    /// Resets the per-statement temporary region.
    fn reset_temps(&mut self) {
        self.tf = self.nf_vars;
        self.ti = self.ni_vars;
    }

    fn slot(&self, v: &VarRef) -> Result<Slot, CompileError> {
        let id = v.id.ok_or_else(|| CompileError::UnresolvedVar {
            name: v.name.clone(),
        })?;
        Ok(self.slots[id.index()])
    }

    fn compile_body(&mut self) -> Result<(), CompileError> {
        self.reset_temps();
        let body = self.func.body.clone();
        self.block(&body)?;
        // Fall-off-the-end behaviour.
        match self.func.ret {
            Type::Void => {
                self.emit(Instr::RetVoid);
            }
            _ => {
                self.emit(Instr::TrapMissingReturn);
            }
        }
        Ok(())
    }

    fn block(&mut self, b: &Block) -> Result<(), CompileError> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        self.reset_temps();
        self.cur_span = s.span;
        match &s.kind {
            StmtKind::Decl { id, size, init, .. } => {
                let id = id.expect("typeck assigns decl ids");
                let slot = self.slots[id.index()];
                match (slot, size) {
                    (Slot::FA(arr, _), Some(sz)) => {
                        let len = self.expr_as_i(sz)?;
                        self.emit(Instr::AllocF { arr, len });
                    }
                    (Slot::IA(arr, ..), Some(sz)) => {
                        let len = self.expr_as_i(sz)?;
                        self.emit(Instr::AllocI { arr, len });
                    }
                    _ => {
                        if let Some(e) = init {
                            let op = self.expr(e)?;
                            self.store_to_slot(slot, op)?;
                        }
                    }
                }
                Ok(())
            }
            StmtKind::Assign { lhs, op, rhs } => self.assign(lhs, *op, rhs),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.expr_as_b(cond)?;
                let jf = self.emit(Instr::JmpIfFalse { cond: c, target: 0 });
                self.block(then_branch)?;
                match else_branch {
                    Some(eb) => {
                        let jend = self.emit(Instr::Jmp { target: 0 });
                        let else_at = self.here();
                        self.patch_jump(jf, else_at);
                        self.block(eb)?;
                        let end = self.here();
                        self.patch_jump(jend, end);
                    }
                    None => {
                        let end = self.here();
                        self.patch_jump(jf, end);
                    }
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let lcond = self.here();
                let jexit = match cond {
                    Some(c) => {
                        self.reset_temps();
                        self.cur_span = c.span;
                        let creg = self.expr_as_b(c)?;
                        Some(self.emit(Instr::JmpIfFalse {
                            cond: creg,
                            target: 0,
                        }))
                    }
                    None => None,
                };
                self.block(body)?;
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.emit(Instr::Jmp { target: lcond });
                let end = self.here();
                if let Some(j) = jexit {
                    self.patch_jump(j, end);
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let lcond = self.here();
                let creg = self.expr_as_b(cond)?;
                let jexit = self.emit(Instr::JmpIfFalse {
                    cond: creg,
                    target: 0,
                });
                self.block(body)?;
                self.emit(Instr::Jmp { target: lcond });
                let end = self.here();
                self.patch_jump(jexit, end);
                Ok(())
            }
            StmtKind::Return(e) => {
                match (e, self.func.ret) {
                    (None, _) => {
                        self.emit(Instr::RetVoid);
                    }
                    (Some(e), Type::Float(ft)) => {
                        let (r, _) = self.expr_as_f(e)?;
                        // Round to the declared return precision.
                        let out = if ft != FloatTy::F64 {
                            let t = self.temp_f();
                            self.emit(Instr::FRound {
                                dst: t,
                                src: r,
                                ty: ft,
                            });
                            t
                        } else {
                            r
                        };
                        self.emit(Instr::RetF { src: out });
                    }
                    (Some(e), Type::Int) => {
                        let r = self.expr_as_i(e)?;
                        self.emit(Instr::RetI { src: r });
                    }
                    (Some(e), Type::Bool) => {
                        let r = self.expr_as_b(e)?;
                        self.emit(Instr::RetB { src: r });
                    }
                    (Some(_), other) => {
                        return Err(CompileError::Unsupported {
                            msg: format!("return of `{other}`"),
                            span: s.span,
                        })
                    }
                }
                Ok(())
            }
            StmtKind::Block(b) => self.block(b),
            StmtKind::ExprStmt(e) => {
                let _ = self.expr(e)?;
                Ok(())
            }
            StmtKind::TapePush(e) => {
                match self.expr(e)? {
                    Operand::F(r, _) => {
                        self.emit(Instr::TPushF { src: r });
                    }
                    Operand::I(r) | Operand::B(r) => {
                        self.emit(Instr::TPushI { src: r });
                    }
                }
                Ok(())
            }
            StmtKind::TapePop(lv) => match (self.slot(lv.var())?, lv) {
                (Slot::F(r, _), LValue::Var(_)) => {
                    self.emit(Instr::TPopF { dst: r });
                    Ok(())
                }
                (Slot::I(r) | Slot::B(r), LValue::Var(_)) => {
                    self.emit(Instr::TPopI { dst: r });
                    Ok(())
                }
                (Slot::FA(arr, _), LValue::Index { index, .. }) => {
                    let idx = self.expr_as_i(index)?;
                    let t = self.temp_f();
                    self.emit(Instr::TPopF { dst: t });
                    self.emit(Instr::FStore { arr, idx, src: t });
                    Ok(())
                }
                (Slot::IA(arr), LValue::Index { index, .. }) => {
                    let idx = self.expr_as_i(index)?;
                    let t = self.temp_i();
                    self.emit(Instr::TPopI { dst: t });
                    self.emit(Instr::IStore { arr, idx, src: t });
                    Ok(())
                }
                _ => Err(CompileError::Unsupported {
                    msg: "tape pop into this location".into(),
                    span: s.span,
                }),
            },
        }
    }

    fn assign(&mut self, lhs: &LValue, op: AssignOp, rhs: &Expr) -> Result<(), CompileError> {
        let rhs_op = self.expr(rhs)?;
        let final_op = match op.binop() {
            None => rhs_op,
            Some(bop) => {
                // Compound: load current value, apply, store.
                let cur = self.load_lvalue(lhs)?;
                self.binary_op(bop, cur, rhs_op)?
            }
        };
        self.store_lvalue(lhs, final_op)
    }

    fn load_lvalue(&mut self, lv: &LValue) -> Result<Operand, CompileError> {
        match lv {
            LValue::Var(v) => Ok(match self.slot(v)? {
                Slot::F(r, p) => Operand::F(r, p),
                Slot::I(r) => Operand::I(r),
                Slot::B(r) => Operand::B(r),
                Slot::FA(..) | Slot::IA(..) => {
                    return Err(CompileError::Unsupported {
                        msg: "whole-array read".into(),
                        span: v.span,
                    })
                }
            }),
            LValue::Index { base, index } => {
                let slot = self.slot(base)?;
                let idx = self.expr_as_i(index)?;
                match slot {
                    Slot::FA(arr, p) => {
                        let dst = self.temp_f();
                        self.emit(Instr::FLoad { dst, arr, idx });
                        Ok(Operand::F(dst, p))
                    }
                    Slot::IA(arr) => {
                        let dst = self.temp_i();
                        self.emit(Instr::ILoad { dst, arr, idx });
                        Ok(Operand::I(dst))
                    }
                    _ => Err(CompileError::Unsupported {
                        msg: "indexing a scalar".into(),
                        span: base.span,
                    }),
                }
            }
        }
    }

    fn store_lvalue(&mut self, lv: &LValue, op: Operand) -> Result<(), CompileError> {
        match lv {
            LValue::Var(v) => {
                let slot = self.slot(v)?;
                self.store_to_slot(slot, op)
            }
            LValue::Index { base, index } => {
                let slot = self.slot(base)?;
                match slot {
                    Slot::FA(arr, prec) => {
                        let (src, sp) = self.operand_as_f(op)?;
                        // Round to the element precision on store (unless
                        // the value is already at most that precise).
                        let src = if prec != FloatTy::F64 && sp > prec {
                            let t = self.temp_f();
                            self.emit(Instr::FRound {
                                dst: t,
                                src,
                                ty: prec,
                            });
                            t
                        } else {
                            src
                        };
                        let idx = self.expr_as_i(index)?;
                        self.emit(Instr::FStore { arr, idx, src });
                        Ok(())
                    }
                    Slot::IA(arr) => {
                        let src = self.operand_as_i(op)?;
                        let idx = self.expr_as_i(index)?;
                        self.emit(Instr::IStore { arr, idx, src });
                        Ok(())
                    }
                    _ => Err(CompileError::Unsupported {
                        msg: "indexing a scalar".into(),
                        span: base.span,
                    }),
                }
            }
        }
    }

    fn store_to_slot(&mut self, slot: Slot, op: Operand) -> Result<(), CompileError> {
        match slot {
            Slot::F(dst, prec) => {
                let (src, sp) = self.operand_as_f(op)?;
                if prec != FloatTy::F64 && sp > prec {
                    self.emit(Instr::FRound { dst, src, ty: prec });
                } else if src != dst {
                    self.emit(Instr::FMov { dst, src });
                }
                Ok(())
            }
            Slot::I(dst) => {
                let src = self.operand_as_i(op)?;
                if src != dst {
                    self.emit(Instr::IMov { dst, src });
                }
                Ok(())
            }
            Slot::B(dst) => {
                let src = match op {
                    Operand::B(r) | Operand::I(r) => r,
                    Operand::F(..) => {
                        return Err(CompileError::Unsupported {
                            msg: "float stored to bool".into(),
                            span: self.cur_span,
                        })
                    }
                };
                if src != dst {
                    self.emit(Instr::IMov { dst, src });
                }
                Ok(())
            }
            Slot::FA(..) | Slot::IA(..) => Err(CompileError::Unsupported {
                msg: "whole-array store".into(),
                span: self.cur_span,
            }),
        }
    }

    // ---- expression compilation ----

    fn expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match &e.kind {
            ExprKind::FloatLit(v) => {
                let dst = self.temp_f();
                self.emit(Instr::FConst { dst, v: *v });
                // Honor the type annotation: constant folding may replace
                // a `(float)`-cast subtree with an f32-typed literal whose
                // value is exactly representable at that precision; the
                // surrounding operation must keep f32 promotion semantics.
                let prec = match e.ty {
                    Some(Type::Float(ft)) => ft,
                    _ => FloatTy::F64,
                };
                Ok(Operand::F(dst, prec))
            }
            ExprKind::IntLit(v) => {
                let dst = self.temp_i();
                self.emit(Instr::IConst { dst, v: *v });
                Ok(Operand::I(dst))
            }
            ExprKind::BoolLit(b) => {
                let dst = self.temp_i();
                self.emit(Instr::IConst { dst, v: *b as i64 });
                Ok(Operand::B(dst))
            }
            ExprKind::Var(v) => Ok(match self.slot(v)? {
                Slot::F(r, p) => Operand::F(r, p),
                Slot::I(r) => Operand::I(r),
                Slot::B(r) => Operand::B(r),
                Slot::FA(..) | Slot::IA(..) => {
                    return Err(CompileError::Unsupported {
                        msg: format!("array `{}` used as a scalar", v.name),
                        span: v.span,
                    })
                }
            }),
            ExprKind::Index { base, index } => {
                let lv = LValue::Index {
                    base: base.clone(),
                    index: (**index).clone(),
                };
                self.load_lvalue(&lv)
            }
            ExprKind::Unary { op, operand } => {
                let inner = self.expr(operand)?;
                match op {
                    UnOp::Neg => match inner {
                        Operand::F(r, p) => {
                            let dst = self.temp_f();
                            self.emit(Instr::FNeg { dst, src: r });
                            Ok(Operand::F(dst, p))
                        }
                        Operand::I(r) => {
                            let dst = self.temp_i();
                            self.emit(Instr::INeg { dst, src: r });
                            Ok(Operand::I(dst))
                        }
                        Operand::B(_) => Err(CompileError::Unsupported {
                            msg: "negating bool".into(),
                            span: e.span,
                        }),
                    },
                    UnOp::Not => match inner {
                        Operand::B(r) => {
                            let dst = self.temp_i();
                            self.emit(Instr::BNot { dst, src: r });
                            Ok(Operand::B(dst))
                        }
                        _ => Err(CompileError::Unsupported {
                            msg: "`!` on non-bool".into(),
                            span: e.span,
                        }),
                    },
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                if op.is_logic() {
                    return self.logic_op(*op, lhs, rhs);
                }
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                self.binary_op(*op, a, b)
            }
            ExprKind::Call { callee, args } => match callee {
                Callee::Intrinsic(i) => self.intrinsic_call(*i, args),
                Callee::Func(name) => Err(CompileError::UserCallNotInlined {
                    name: name.clone(),
                    span: e.span,
                }),
            },
            ExprKind::Cast { ty, expr } => {
                let inner = self.expr(expr)?;
                match ty {
                    Type::Float(ft) => {
                        let (r, p) = self.operand_as_f(inner)?;
                        if *ft != FloatTy::F64 && p > *ft {
                            let dst = self.temp_f();
                            self.emit(Instr::FRound {
                                dst,
                                src: r,
                                ty: *ft,
                            });
                            Ok(Operand::F(dst, *ft))
                        } else {
                            Ok(Operand::F(r, p.min(*ft)))
                        }
                    }
                    Type::Int => match inner {
                        Operand::I(r) => Ok(Operand::I(r)),
                        Operand::F(r, _) => {
                            let dst = self.temp_i();
                            self.emit(Instr::F2I { dst, src: r });
                            Ok(Operand::I(dst))
                        }
                        Operand::B(_) => Err(CompileError::Unsupported {
                            msg: "bool cast".into(),
                            span: e.span,
                        }),
                    },
                    other => Err(CompileError::Unsupported {
                        msg: format!("cast to `{other}`"),
                        span: e.span,
                    }),
                }
            }
        }
    }

    fn logic_op(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Operand, CompileError> {
        let a = self.expr_as_b(lhs)?;
        let dst = self.temp_i();
        self.emit(Instr::IMov { dst, src: a });
        let jshort = match op {
            BinOp::And => self.emit(Instr::JmpIfFalse {
                cond: dst,
                target: 0,
            }),
            BinOp::Or => self.emit(Instr::JmpIfTrue {
                cond: dst,
                target: 0,
            }),
            _ => unreachable!(),
        };
        let b = self.expr_as_b(rhs)?;
        self.emit(Instr::IMov { dst, src: b });
        let end = self.here();
        self.patch_jump(jshort, end);
        Ok(Operand::B(dst))
    }

    fn binary_op(&mut self, op: BinOp, a: Operand, b: Operand) -> Result<Operand, CompileError> {
        if op.is_cmp() {
            let cmp = cmp_of(op);
            let any_float = matches!(a, Operand::F(..)) || matches!(b, Operand::F(..));
            let dst = self.temp_i();
            if any_float {
                let (ra, _) = self.operand_as_f(a)?;
                let (rb, _) = self.operand_as_f(b)?;
                self.emit(Instr::FCmp {
                    dst,
                    op: cmp,
                    a: ra,
                    b: rb,
                });
            } else {
                let ra = self.operand_as_i(a)?;
                let rb = self.operand_as_i(b)?;
                self.emit(Instr::ICmp {
                    dst,
                    op: cmp,
                    a: ra,
                    b: rb,
                });
            }
            return Ok(Operand::B(dst));
        }
        // Arithmetic.
        let any_float = matches!(a, Operand::F(..)) || matches!(b, Operand::F(..));
        if any_float {
            let (ra, pa) = self.operand_as_f(a)?;
            let (rb, pb) = self.operand_as_f(b)?;
            let prec = pa.max(pb);
            let dst = self.temp_f();
            let ins = match op {
                BinOp::Add => Instr::FAdd { dst, a: ra, b: rb },
                BinOp::Sub => Instr::FSub { dst, a: ra, b: rb },
                BinOp::Mul => Instr::FMul { dst, a: ra, b: rb },
                BinOp::Div => Instr::FDiv { dst, a: ra, b: rb },
                BinOp::Rem => {
                    return Err(CompileError::Unsupported {
                        msg: "`%` on floats".into(),
                        span: self.cur_span,
                    })
                }
                _ => unreachable!(),
            };
            self.emit(ins);
            if prec != FloatTy::F64 {
                self.emit(Instr::FRound {
                    dst,
                    src: dst,
                    ty: prec,
                });
            }
            Ok(Operand::F(dst, prec))
        } else {
            let ra = self.operand_as_i(a)?;
            let rb = self.operand_as_i(b)?;
            let dst = self.temp_i();
            let ins = match op {
                BinOp::Add => Instr::IAdd { dst, a: ra, b: rb },
                BinOp::Sub => Instr::ISub { dst, a: ra, b: rb },
                BinOp::Mul => Instr::IMul { dst, a: ra, b: rb },
                BinOp::Div => Instr::IDiv { dst, a: ra, b: rb },
                BinOp::Rem => Instr::IRem { dst, a: ra, b: rb },
                _ => unreachable!(),
            };
            self.emit(ins);
            Ok(Operand::I(dst))
        }
    }

    fn intrinsic_call(&mut self, i: Intrinsic, args: &[Expr]) -> Result<Operand, CompileError> {
        let mut regs = Vec::with_capacity(args.len());
        let mut prec: Option<FloatTy> = None;
        for a in args {
            let op = self.expr(a)?;
            if let Operand::F(_, p) = op {
                prec = Some(prec.map_or(p, |q| q.max(p)));
            }
            let (r, _) = self.operand_as_f(op)?;
            regs.push(r);
        }
        let prec = prec.unwrap_or(FloatTy::F64);
        let dst = self.temp_f();
        match regs.len() {
            1 => {
                self.emit(Instr::FIntr1 {
                    dst,
                    intr: i,
                    a: regs[0],
                });
            }
            2 => {
                self.emit(Instr::FIntr2 {
                    dst,
                    intr: i,
                    a: regs[0],
                    b: regs[1],
                });
            }
            n => {
                return Err(CompileError::Unsupported {
                    msg: format!("{n}-ary intrinsic"),
                    span: self.cur_span,
                })
            }
        }
        if prec != FloatTy::F64 {
            self.emit(Instr::FRound {
                dst,
                src: dst,
                ty: prec,
            });
        }
        Ok(Operand::F(dst, prec))
    }

    // ---- operand coercions ----

    fn operand_as_f(&mut self, op: Operand) -> Result<(FReg, FloatTy), CompileError> {
        match op {
            Operand::F(r, p) => Ok((r, p)),
            Operand::I(r) => {
                let dst = self.temp_f();
                self.emit(Instr::I2F { dst, src: r });
                Ok((dst, FloatTy::F64))
            }
            Operand::B(_) => Err(CompileError::Unsupported {
                msg: "bool used as float".into(),
                span: self.cur_span,
            }),
        }
    }

    fn operand_as_i(&mut self, op: Operand) -> Result<IReg, CompileError> {
        match op {
            Operand::I(r) | Operand::B(r) => Ok(r),
            Operand::F(..) => Err(CompileError::Unsupported {
                msg: "float used as int (use an explicit cast)".into(),
                span: self.cur_span,
            }),
        }
    }

    fn expr_as_f(&mut self, e: &Expr) -> Result<(FReg, FloatTy), CompileError> {
        let op = self.expr(e)?;
        self.operand_as_f(op)
    }

    fn expr_as_i(&mut self, e: &Expr) -> Result<IReg, CompileError> {
        let op = self.expr(e)?;
        self.operand_as_i(op)
    }

    fn expr_as_b(&mut self, e: &Expr) -> Result<IReg, CompileError> {
        match self.expr(e)? {
            Operand::B(r) => Ok(r),
            _ => Err(CompileError::Unsupported {
                msg: "condition is not bool".into(),
                span: e.span,
            }),
        }
    }

    fn finish(self) -> CompiledFunction {
        let params = self
            .func
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let slot = self.slots[i];
                let (kind, reg) = match slot {
                    Slot::F(r, prec) => (ParamKind::F(prec), r.0),
                    Slot::I(r) => (ParamKind::I, r.0),
                    Slot::B(r) => (ParamKind::B, r.0),
                    Slot::FA(r, prec) => (ParamKind::FArr(prec), r.0),
                    Slot::IA(r) => (ParamKind::IArr, r.0),
                };
                ParamSpec {
                    name: p.name.clone(),
                    kind,
                    by_ref: p.by_ref,
                    reg,
                }
            })
            .collect();
        let ret = match self.func.ret {
            Type::Float(ft) => RetKind::F(ft),
            Type::Int => RetKind::I,
            Type::Bool => RetKind::B,
            _ => RetKind::Void,
        };
        // Name tables for attribution/diagnostics: every variable's home
        // register, in slot order (temps live above `nf_vars`/`na` and
        // stay unnamed).
        let mut fvar_names = Vec::new();
        let mut avar_names = Vec::new();
        for ((_, info), slot) in self.func.vars_iter().zip(&self.slots) {
            match slot {
                Slot::F(r, _) => fvar_names.push((r.0, info.name.clone())),
                Slot::FA(r, _) | Slot::IA(r) => avar_names.push((r.0, info.name.clone())),
                Slot::I(_) | Slot::B(_) => {}
            }
        }
        CompiledFunction {
            name: self.func.name.clone(),
            instrs: self.instrs,
            spans: self.spans,
            n_fregs: self.max_f,
            n_iregs: self.max_i,
            n_aregs: self.na,
            params,
            ret,
            fvar_names,
            avar_names,
            packed: None,
        }
    }
}

fn cmp_of(op: BinOp) -> CmpOp {
    match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        other => panic!("not a comparison: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::parser::parse_program;
    use chef_ir::typeck::check_program;

    fn compile_src(src: &str) -> CompiledFunction {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        compile_default(&p.functions[0]).unwrap()
    }

    #[test]
    fn compiles_simple_function() {
        let f = compile_src("double f(double x, double y) { return x * y + 1.0; }");
        // Fusion (on by default) turns the mul+add into FMulAdd.
        assert!(
            f.instrs
                .iter()
                .any(|i| matches!(i, Instr::FMul { .. } | Instr::FMulAdd { .. })),
            "{}",
            f.disassemble()
        );
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::RetF { .. })));
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, RetKind::F(FloatTy::F64));
    }

    #[test]
    fn fuse_off_keeps_base_instructions() {
        let mut p = parse_program("double f(double x, double y) { return x * y + 1.0; }").unwrap();
        check_program(&mut p).unwrap();
        let opts = CompileOptions {
            fuse: false,
            ..Default::default()
        };
        let f = compile(&p.functions[0], &opts).unwrap();
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::FMul { .. })));
        assert!(!f.instrs.iter().any(|i| matches!(i, Instr::FMulAdd { .. })));
    }

    #[test]
    fn f32_arithmetic_gets_rounds() {
        let f = compile_src("float f(float x, float y) { float z; z = x + y; return z; }");
        // x + y at f32 must be followed by a round to f32.
        assert!(
            f.instrs.iter().any(|i| matches!(
                i,
                Instr::FRound {
                    ty: FloatTy::F32,
                    ..
                }
            )),
            "{}",
            f.disassemble()
        );
    }

    #[test]
    fn f64_arithmetic_has_no_rounds() {
        let f = compile_src("double f(double x, double y) { double z; z = x + y; return z; }");
        assert!(
            !f.instrs.iter().any(|i| matches!(i, Instr::FRound { .. })),
            "{}",
            f.disassemble()
        );
    }

    #[test]
    fn precision_override_demotes_variable() {
        let mut p = parse_program("double f(double x) { double z; z = x * x; return z; }").unwrap();
        check_program(&mut p).unwrap();
        let func = &p.functions[0];
        // Demote z (VarId 1) to f32.
        let opts = CompileOptions {
            precisions: PrecisionMap::empty().with(VarId(1), FloatTy::F32),
            ..Default::default()
        };
        let f = compile(func, &opts).unwrap();
        // The round may be fused into the arithmetic op.
        assert!(
            f.instrs.iter().any(|i| matches!(
                i,
                Instr::FRound {
                    ty: FloatTy::F32,
                    ..
                } | Instr::FAddRound {
                    ty: FloatTy::F32,
                    ..
                } | Instr::FSubRound {
                    ty: FloatTy::F32,
                    ..
                } | Instr::FMulRound {
                    ty: FloatTy::F32,
                    ..
                } | Instr::FDivRound {
                    ty: FloatTy::F32,
                    ..
                }
            )),
            "{}",
            f.disassemble()
        );
    }

    #[test]
    fn user_calls_rejected() {
        let src = "double g(double a) { return a; } double f(double x) { return g(x); }";
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let err = compile_default(p.function("f").unwrap()).unwrap_err();
        assert!(matches!(err, CompileError::UserCallNotInlined { .. }));
    }

    #[test]
    fn loop_compiles_with_backward_jump() {
        let f = compile_src(
            "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += 1.0; } return s; }",
        );
        let has_backjump = f.instrs.iter().enumerate().any(|(pc, i)| match i {
            Instr::Jmp { target } => (*target as usize) < pc,
            _ => false,
        });
        assert!(has_backjump, "{}", f.disassemble());
    }

    #[test]
    fn short_circuit_and_emits_branch() {
        let f = compile_src("bool f(double x) { return x > 0.0 && x < 1.0; }");
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::JmpIfFalse { .. })));
    }

    #[test]
    fn missing_return_traps() {
        let f = compile_src("double f(double x) { x = x + 1.0; }");
        assert!(matches!(f.instrs.last(), Some(Instr::TrapMissingReturn)));
    }

    #[test]
    fn local_array_allocs() {
        let f = compile_src("void f(int n) { double r[n]; r[0] = 1.0; }");
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::AllocF { .. })));
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::FStore { .. })));
    }

    #[test]
    fn cast_emits_round() {
        let f = compile_src("double f(double x) { return x - (float)x; }");
        assert!(f.instrs.iter().any(|i| matches!(
            i,
            Instr::FRound {
                ty: FloatTy::F32,
                ..
            }
        )));
    }
}
