//! Persistent content-addressed store for compiled functions.
//!
//! Compilation (fuse-to-fixpoint + packing) is the cold-start cost every
//! process pays again from scratch; this module makes compiled variants
//! survive the process. Three pieces:
//!
//! * [`ContentKey`] / [`content_key`] — a 128-bit FNV-1a fingerprint of
//!   a variant's *identity*: the canonical printed source of the
//!   (inlined) primal function plus the canonicalized
//!   [`CompileOptions`] (precision overrides keyed by **variable name**,
//!   fuse/pack flags, codec version). Keying by content instead of by
//!   function name is what makes the key safe to share across programs
//!   and processes: two different programs that happen to both define
//!   `f` get different keys, while the same source always maps to the
//!   same key (compilation is deterministic).
//! * [`encode_function`] / [`decode_function`] — a versioned,
//!   checksummed, dependency-free binary codec for the packed word
//!   stream, constant pool, signature, spans and name tables. Only
//!   functions the packer could represent (`packed.is_some()`) are
//!   encodable; the enum instruction stream is *reconstructed* on load
//!   by running [`crate::pack::decode`] over the stored words, so the
//!   words are the single source of truth and an entry can never hold a
//!   word stream that disagrees with its enum stream.
//! * [`DiskStore`] — the `CHEF_CACHE_DIR` directory of entries, one
//!   `<32-hex-key>.cfn` file per variant, written atomically (unique
//!   temp file + `sync_all` + rename) and revalidated on load through
//!   [`crate::vm::validate_function`] before the function can reach the
//!   unchecked packed dispatch loops. Anything invalid — bad magic,
//!   wrong version, checksum mismatch, key mismatch, undecodable word,
//!   failed validation — is quarantined by renaming the entry to
//!   `<name>.bad` and counted (`cache.disk.corrupt`), and the caller
//!   sees an ordinary miss.
//!
//! See the "Persistent variant cache" section of the crate docs for the
//! on-disk format table and the atomicity/invalidation argument.

use crate::bytecode::{CompiledFunction, ParamKind, ParamSpec, RetKind};
use crate::compile::CompileOptions;
use crate::pack::{decode, PackedCode};
use crate::vm::validate_function;
use chef_ir::ast::Function;
use chef_ir::span::Span;
use chef_ir::types::FloatTy;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// On-disk codec version. Bump on any layout change — old entries then
/// fail the version check, are quarantined, and get recompiled; the
/// version also feeds [`content_key`], so a bump changes every key and
/// stale-format entries are simply never looked up again.
pub const FORMAT_VERSION: u32 = 1;

/// Entry file magic.
const MAGIC: [u8; 8] = *b"CHEFFUNC";

/// Extension of a valid entry (`<32 hex>.cfn`).
const ENTRY_EXT: &str = "cfn";

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// Streaming 64-bit FNV-1a hasher (dependency-free, stable across
/// platforms and processes — unlike `DefaultHasher`, which is randomly
/// seeded per process and therefore useless as a disk key).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher starting from the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// A hasher starting from a custom offset basis (used to derive the
    /// independent second half of a [`ContentKey`]).
    pub fn with_offset(offset: u64) -> Self {
        Fnv64(offset)
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string (so `("ab","c")` and `("a","bc")`
    /// hash differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// FNV-1a of a whole buffer — the entry checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// The 128-bit content hash identifying one compiled variant: two
/// independent FNV-1a streams over the same canonical input. 64 bits of
/// FNV is already a fingerprint; doubling the width pushes accidental
/// collision out of reach for any realistic cache population. The key
/// is the **only** cache key — in the in-memory [`VariantCache`] tier
/// and on disk (its 32-hex rendering is the entry's file name).
///
/// [`VariantCache`]: https://docs.rs/chef-tuner
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey {
    /// First FNV-1a stream (standard offset basis).
    pub hi: u64,
    /// Second FNV-1a stream (alternate offset basis).
    pub lo: u64,
}

impl ContentKey {
    /// File name of this key's store entry: 32 hex digits + `.cfn`.
    pub fn file_name(&self) -> String {
        format!("{self}.{ENTRY_EXT}")
    }
}

impl std::fmt::Display for ContentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Computes the [`ContentKey`] of compiling `primal` under `opts`.
///
/// The canonical input is the *printed source* of the function (the
/// parser/printer round-trip is the repo's canonical form), so the key
/// can be computed **without compiling** — a warm process resolves a
/// variant with zero `compile`/`fuse`/`pack` work. Precision overrides
/// are hashed by *variable name* (ids are only meaningful within one
/// program instance); entries whose id no longer resolves hash the raw
/// id, which can only make keys differ — never collide.
pub fn content_key(primal: &Function, opts: &CompileOptions) -> ContentKey {
    let src = chef_ir::printer::print_function(primal);
    let mut entries: Vec<(String, FloatTy)> = opts
        .precisions
        .sorted_entries()
        .into_iter()
        .map(|(id, ty)| {
            let name = primal
                .vars_iter()
                .find(|(vid, _)| *vid == id)
                .map(|(_, v)| v.name.clone())
                .unwrap_or_else(|| format!("#{}", id.0));
            (name, ty)
        })
        .collect();
    entries.sort();
    let absorb = |h: &mut Fnv64| {
        h.write_u32(FORMAT_VERSION);
        h.write_str(&src);
        h.write(&[opts.fuse as u8, opts.pack as u8, opts.cfg as u8]);
        // The CFG pass-tier revision is part of a variant's identity:
        // a pre-CFG (or differently-optimizing) process must never
        // warm-hit an entry this tier produced, and vice versa.
        h.write_u32(if opts.cfg {
            crate::cfg::CFG_TIER_VERSION
        } else {
            0
        });
        h.write_u32(entries.len() as u32);
        for (name, ty) in &entries {
            h.write_str(name);
            h.write(&[float_ty_tag(*ty)]);
        }
    };
    let mut hi = Fnv64::new();
    absorb(&mut hi);
    let mut lo = Fnv64::with_offset(FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
    absorb(&mut lo);
    ContentKey {
        hi: hi.finish(),
        lo: lo.finish(),
    }
}

fn float_ty_tag(ty: FloatTy) -> u8 {
    FloatTy::ALL
        .iter()
        .position(|&t| t == ty)
        .expect("FloatTy::ALL is exhaustive") as u8
}

fn float_ty_from_tag(tag: u8) -> Result<FloatTy, String> {
    FloatTy::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("invalid FloatTy tag {tag}"))
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------
//
// Layout (all integers little-endian):
//
//   magic    8  b"CHEFFUNC"
//   version  4  FORMAT_VERSION
//   key     16  hi, lo — echo of the content key (detects a file whose
//                bytes are internally consistent but sits under the
//                wrong name, e.g. after a manual copy)
//   payload  …  name, register counts, return kind, params,
//                fvar/avar name tables, packed words, constant pool,
//                spans (one per word)
//   checksum 8  FNV-1a over everything above
//
// The enum instruction stream is deliberately NOT stored: it is
// reconstructed by `pack::decode` over the words, so the two streams
// cannot disagree on disk, and `validate_function`'s word-for-word
// re-decode on load is checking exactly what will execute.

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or("truncated entry")?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in entry".to_string())
    }
    /// An element count, sanity-bounded by the bytes actually left in
    /// the buffer (`elem_size` ≥ 1 per element) so a crafted length
    /// field cannot force a huge allocation before the loop fails.
    fn count(&mut self, elem_size: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size) > self.buf.len() - self.at {
            return Err("count exceeds entry size".to_string());
        }
        Ok(n)
    }
}

fn ret_tag(ret: RetKind) -> (u8, u8) {
    match ret {
        RetKind::F(ty) => (0, float_ty_tag(ty)),
        RetKind::I => (1, 0),
        RetKind::B => (2, 0),
        RetKind::Void => (3, 0),
    }
}

fn param_tag(kind: ParamKind) -> (u8, u8) {
    match kind {
        ParamKind::F(ty) => (0, float_ty_tag(ty)),
        ParamKind::I => (1, 0),
        ParamKind::B => (2, 0),
        ParamKind::FArr(ty) => (3, float_ty_tag(ty)),
        ParamKind::IArr => (4, 0),
    }
}

/// Serializes `func` under `key`. Returns `None` when the function has
/// no packed stream (the packer bailed or packing was disabled) — such
/// functions are never stored; the enum stream can't be reconstructed
/// without the words, and the packer only bails on shapes compiler
/// output never produces anyway.
pub fn encode_function(key: &ContentKey, func: &CompiledFunction) -> Option<Vec<u8>> {
    let packed = func.packed.as_ref()?;
    debug_assert_eq!(packed.words.len(), func.instrs.len());
    debug_assert_eq!(func.spans.len(), func.instrs.len());
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(key.hi);
    w.u64(key.lo);
    w.str(&func.name);
    w.u32(func.n_fregs);
    w.u32(func.n_iregs);
    w.u32(func.n_aregs);
    let (rt, rty) = ret_tag(func.ret);
    w.u8(rt);
    w.u8(rty);
    w.u32(func.params.len() as u32);
    for p in &func.params {
        w.str(&p.name);
        let (kt, kty) = param_tag(p.kind);
        w.u8(kt);
        w.u8(kty);
        w.u8(p.by_ref as u8);
        w.u32(p.reg);
    }
    w.u32(func.fvar_names.len() as u32);
    for (reg, name) in &func.fvar_names {
        w.u32(*reg);
        w.str(name);
    }
    w.u32(func.avar_names.len() as u32);
    for (reg, name) in &func.avar_names {
        w.u32(*reg);
        w.str(name);
    }
    w.u32(packed.words.len() as u32);
    for &word in &packed.words {
        w.u64(word);
    }
    w.u32(packed.pool.len() as u32);
    for &c in &packed.pool {
        w.u64(c);
    }
    w.u32(func.spans.len() as u32);
    for s in &func.spans {
        w.u32(s.lo);
        w.u32(s.hi);
    }
    let checksum = fnv64(&w.buf);
    w.u64(checksum);
    Some(w.buf)
}

/// Deserializes an entry, verifying (in order) length, magic, version,
/// checksum, and the key echo, then reconstructing the enum stream by
/// decoding every stored word. The result has **not** yet passed
/// [`validate_function`] — [`DiskStore::load`] runs that before handing
/// the function out; call it yourself if you use the codec directly.
pub fn decode_function(bytes: &[u8], expected: &ContentKey) -> Result<CompiledFunction, String> {
    // magic + version + key + checksum is the minimum envelope.
    if bytes.len() < 8 + 4 + 16 + 8 {
        return Err("entry too short".to_string());
    }
    if bytes[..8] != MAGIC {
        return Err("bad magic".to_string());
    }
    let body = &bytes[..bytes.len() - 8];
    let stored_sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let mut r = Reader { buf: body, at: 8 };
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version}, expected {FORMAT_VERSION}"
        ));
    }
    if fnv64(body) != stored_sum {
        return Err("checksum mismatch".to_string());
    }
    let hi = r.u64()?;
    let lo = r.u64()?;
    if (ContentKey { hi, lo }) != *expected {
        return Err("content key mismatch".to_string());
    }
    let name = r.str()?;
    let n_fregs = r.u32()?;
    let n_iregs = r.u32()?;
    let n_aregs = r.u32()?;
    let rt = r.u8()?;
    let rty = r.u8()?;
    let ret = match rt {
        0 => RetKind::F(float_ty_from_tag(rty)?),
        1 => RetKind::I,
        2 => RetKind::B,
        3 => RetKind::Void,
        t => return Err(format!("invalid return tag {t}")),
    };
    let n_params = r.count(7)?;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let name = r.str()?;
        let kt = r.u8()?;
        let kty = r.u8()?;
        let kind = match kt {
            0 => ParamKind::F(float_ty_from_tag(kty)?),
            1 => ParamKind::I,
            2 => ParamKind::B,
            3 => ParamKind::FArr(float_ty_from_tag(kty)?),
            4 => ParamKind::IArr,
            t => return Err(format!("invalid param tag {t}")),
        };
        let by_ref = r.u8()? != 0;
        let reg = r.u32()?;
        params.push(ParamSpec {
            name,
            kind,
            by_ref,
            reg,
        });
    }
    let read_names = |r: &mut Reader| -> Result<Vec<(u32, String)>, String> {
        let n = r.count(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            let reg = r.u32()?;
            let name = r.str()?;
            v.push((reg, name));
        }
        Ok(v)
    };
    let fvar_names = read_names(&mut r)?;
    let avar_names = read_names(&mut r)?;
    let n_words = r.count(8)?;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    let n_pool = r.count(8)?;
    let mut pool = Vec::with_capacity(n_pool);
    for _ in 0..n_pool {
        pool.push(r.u64()?);
    }
    let n_spans = r.count(8)?;
    if n_spans != n_words {
        return Err(format!("{n_spans} spans for {n_words} words"));
    }
    let mut spans = Vec::with_capacity(n_spans);
    for _ in 0..n_spans {
        let lo = r.u32()?;
        let hi = r.u32()?;
        spans.push(Span { lo, hi });
    }
    if r.at != body.len() {
        return Err("trailing bytes after payload".to_string());
    }
    let packed = PackedCode { words, pool };
    let mut instrs = Vec::with_capacity(packed.words.len());
    for (pc, &word) in packed.words.iter().enumerate() {
        instrs.push(decode(word, &packed).ok_or_else(|| format!("undecodable word at pc {pc}"))?);
    }
    Ok(CompiledFunction {
        name,
        instrs,
        spans,
        n_fregs,
        n_iregs,
        n_aregs,
        params,
        ret,
        fvar_names,
        avar_names,
        packed: Some(packed),
    })
}

// ---------------------------------------------------------------------------
// Disk store
// ---------------------------------------------------------------------------

/// The `CHEF_CACHE_DIR` store: a flat directory of `<key>.cfn` entries.
///
/// All operations degrade to a miss, never an error: a load that fails
/// for any reason (absent, unreadable, corrupt, stale version, failed
/// revalidation) returns `None` and the caller compiles as if the store
/// did not exist; a store that fails leaves no partial entry behind
/// (writes go to a unique temp file and are renamed into place only
/// after `sync_all`). Corrupt entries are quarantined to `<name>.bad`
/// so the next process does not pay the parse-and-reject cost again.
///
/// Counters (`hits`/`misses`/`writes`/`corrupt`) are kept both as
/// per-store fields and as the process-global telemetry counters
/// `cache.disk.{hits,misses,writes,corrupt}`.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    tmp_seq: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The process-wide store named by `CHEF_CACHE_DIR`, or `None` when
    /// the variable is unset/empty or the directory cannot be created.
    /// Read once per process (the `CHEF_EXEC_FUSE` pattern); every
    /// caller shares one instance, so the counters are process totals.
    pub fn from_env() -> Option<Arc<DiskStore>> {
        static ENV_STORE: OnceLock<Option<Arc<DiskStore>>> = OnceLock::new();
        ENV_STORE
            .get_or_init(|| {
                let dir = std::env::var_os("CHEF_CACHE_DIR")?;
                if dir.is_empty() {
                    return None;
                }
                DiskStore::open(PathBuf::from(dir)).ok().map(Arc::new)
            })
            .clone()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of `key`'s entry file (whether or not it exists).
    pub fn entry_path(&self, key: &ContentKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Successful loads.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that found no entry (or an unreadable one).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries written.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Entries found invalid and quarantined (each also counts as a
    /// miss: the caller recompiles).
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Loads `key`'s entry, fully revalidated and ready for dispatch.
    ///
    /// Returns `None` on any failure: absent/unreadable file (counted
    /// as a miss) or an invalid entry (quarantined to `.bad`, counted
    /// as corrupt **and** miss). A function returned here has passed
    /// the codec's checksum + key echo, had its enum stream rebuilt
    /// from the packed words, and passed [`validate_function`]'s
    /// register-bound and word-for-word equivalence checks — the same
    /// gate a freshly compiled function passes before unchecked packed
    /// dispatch.
    pub fn load(&self, key: &ContentKey) -> Option<CompiledFunction> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                chef_telemetry::counter!("cache.disk.misses").inc();
                return None;
            }
        };
        let checked = decode_function(&bytes, key).and_then(|f| validate_function(&f).map(|()| f));
        match checked {
            Ok(func) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                chef_telemetry::counter!("cache.disk.hits").inc();
                Some(func)
            }
            Err(_why) => {
                self.quarantine(&path);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                chef_telemetry::counter!("cache.disk.corrupt").inc();
                chef_telemetry::counter!("cache.disk.misses").inc();
                None
            }
        }
    }

    /// Writes `func` under `key`, atomically: encode to a unique temp
    /// file in the same directory, `sync_all`, then rename over the
    /// final name. A crash at any point leaves either no entry, the old
    /// entry, or the complete new entry — never a torn file under a
    /// `.cfn` name (leftover `*.tmp` files are ignored by [`load`] and
    /// overwritten harmlessly). Returns `false` (without touching the
    /// store) for unpackable functions or on any I/O failure.
    pub fn store(&self, key: &ContentKey, func: &CompiledFunction) -> bool {
        let Some(bytes) = encode_function(key, func) else {
            return false;
        };
        let final_path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            ".{key}.{}.{}.tmp",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, &final_path)
        })();
        match written {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                chef_telemetry::counter!("cache.disk.writes").inc();
                true
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                false
            }
        }
    }

    /// Moves an invalid entry aside as `<file_name>.bad` (best-effort:
    /// if the rename fails — e.g. read-only store — the entry stays and
    /// will be rejected again next time, which is still safe).
    fn quarantine(&self, path: &Path) {
        let mut bad = path.as_os_str().to_owned();
        bad.push(".bad");
        let _ = std::fs::rename(path, PathBuf::from(bad));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions, PrecisionMap};
    use chef_ir::prelude::*;

    fn program(src: &str) -> chef_ir::ast::Program {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        p
    }

    fn compiled(src: &str, name: &str) -> (chef_ir::ast::Program, CompiledFunction) {
        let p = program(src);
        let f = compile(p.function(name).unwrap(), &CompileOptions::default()).unwrap();
        (p, f)
    }

    const LOOPY: &str = "double acc(double x, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i = i + 1) { s = s + x * x; }
        return s;
    }";

    #[test]
    fn codec_round_trips_a_compiled_function() {
        let (p, func) = compiled(LOOPY, "acc");
        let key = content_key(p.function("acc").unwrap(), &CompileOptions::default());
        let bytes = encode_function(&key, &func).expect("packed function encodes");
        let back = decode_function(&bytes, &key).expect("decodes");
        assert_eq!(back.name, func.name);
        assert_eq!(back.instrs, func.instrs);
        assert_eq!(back.spans, func.spans);
        assert_eq!(back.n_fregs, func.n_fregs);
        assert_eq!(back.n_iregs, func.n_iregs);
        assert_eq!(back.n_aregs, func.n_aregs);
        assert_eq!(back.params, func.params);
        assert_eq!(back.ret, func.ret);
        assert_eq!(back.fvar_names, func.fvar_names);
        assert_eq!(back.avar_names, func.avar_names);
        assert_eq!(back.packed, func.packed);
        validate_function(&back).expect("round-tripped function validates");
    }

    #[test]
    fn unpackable_functions_are_not_encodable() {
        let (p, mut func) = compiled(LOOPY, "acc");
        func.packed = None;
        let key = content_key(p.function("acc").unwrap(), &CompileOptions::default());
        assert!(encode_function(&key, &func).is_none());
    }

    #[test]
    fn content_key_distinguishes_same_name_different_body() {
        let a = program("double f(double x) { return x + 1.0; }");
        let b = program("double f(double x) { return x + 2.0; }");
        let opts = CompileOptions::default();
        let ka = content_key(a.function("f").unwrap(), &opts);
        let kb = content_key(b.function("f").unwrap(), &opts);
        assert_ne!(ka, kb, "same name, different body must not collide");
    }

    #[test]
    fn content_key_distinguishes_precision_maps() {
        let p = program("double f(double x) { double y = x * x; return y; }");
        let f = p.function("f").unwrap();
        let base = CompileOptions::default();
        let (yid, _) = f.vars_iter().find(|(_, v)| v.name == "y").unwrap();
        let demoted = CompileOptions {
            precisions: PrecisionMap::empty().with(yid, FloatTy::F32),
            ..CompileOptions::default()
        };
        assert_ne!(content_key(f, &base), content_key(f, &demoted));
        // …and is stable for a re-parsed identical program.
        let p2 = program("double f(double x) { double y = x * x; return y; }");
        assert_eq!(
            content_key(f, &base),
            content_key(p2.function("f").unwrap(), &base)
        );
    }

    #[test]
    fn decode_rejects_truncation_flip_version_and_key_mismatch() {
        let (p, func) = compiled(LOOPY, "acc");
        let key = content_key(p.function("acc").unwrap(), &CompileOptions::default());
        let bytes = encode_function(&key, &func).unwrap();

        // Truncation at every prefix length fails, never panics.
        for cut in [0, 7, 12, 27, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_function(&bytes[..cut], &key).is_err(), "cut={cut}");
        }
        // Any single flipped bit fails the checksum (or an earlier check).
        for at in [8, 15, 40, bytes.len() / 2, bytes.len() - 3] {
            let mut b = bytes.clone();
            b[at] ^= 0x01;
            assert!(decode_function(&b, &key).is_err(), "flip at {at}");
        }
        // Wrong version header.
        let mut b = bytes.clone();
        b[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let err = decode_function(&b, &key).unwrap_err();
        assert!(err.contains("version"), "{err}");
        // Valid bytes under the wrong key.
        let other = ContentKey {
            hi: key.hi ^ 1,
            lo: key.lo,
        };
        let err = decode_function(&bytes, &other).unwrap_err();
        assert!(err.contains("key"), "{err}");
    }

    #[test]
    fn disk_store_round_trip_and_counters() {
        let dir = std::env::temp_dir().join(format!("chef-store-ut-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let (p, func) = compiled(LOOPY, "acc");
        let key = content_key(p.function("acc").unwrap(), &CompileOptions::default());

        assert!(store.load(&key).is_none());
        assert_eq!(store.misses(), 1);
        assert!(store.store(&key, &func));
        assert_eq!(store.writes(), 1);
        let back = store.load(&key).expect("stored entry loads");
        assert_eq!(store.hits(), 1);
        assert_eq!(back.instrs, func.instrs);
        assert_eq!(back.packed, func.packed);

        // No temp files linger after a successful store.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
