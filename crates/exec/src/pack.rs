//! Packed-word bytecode: the enum instruction stream flattened into
//! fixed-width `u64` words for the dispatch loops.
//!
//! [`Instr`] is a ~24-byte tagged enum — comfortable to build, match and
//! debug, but three times wider than the information it carries, and its
//! wide immediates (`f64` constants, `i64` immediates) live inline in the
//! stream, re-materialized on every execution of a loop body. This pass
//! runs after [`crate::fuse`] and re-encodes each instruction 1:1 into one
//! packed word:
//!
//! ```text
//! bits  0..8    opcode      (dense u8 — drives a jump-table match)
//! bits  8..24   A           (u16 operand: register / array slot)
//! bits 24..40   B           (u16 operand: register / pool index / i16 imm)
//! bits 40..56   C           (u16 operand: register / jump target / i16 imm)
//! bits 56..64   D           (u8 operand: FloatTy / CmpOp / intrinsic /
//!                            i8 offset / 4th register)
//! ```
//!
//! Wide operands are hoisted into a per-function **constant pool**
//! ([`PackedCode::pool`]; intrinsics are coded against the link-time
//! [`INTRINSICS`] table), deduplicated, and referenced by 16-bit index — an `FConst` in a loop
//! body becomes one pool load instead of decoding an inline `f64` each
//! iteration. Small integer immediates (`IConst`, `IAddImm`) that fit an
//! `i16` are encoded inline with a dedicated opcode so the common loop
//! increments never touch a pool.
//!
//! ## When the packer bails
//!
//! [`pack_function`] returns `None` — and the VM falls back to enum
//! dispatch — when the function cannot be represented losslessly:
//!
//! * more than 65 535 instructions (jump targets must fit a u16; a target
//!   equal to the length — "fall off the end" — is still representable);
//! * a register operand above 65 535, or above 255 in the one 8-bit
//!   register position ([`Instr::FMulAdd`]'s addend);
//! * a constant pool exceeding 65 536 entries;
//! * an [`Instr::FLoadOff`]/[`Instr::FStoreOff`] offset outside `i8`.
//!
//! Compiler-produced functions never hit these limits in practice; the
//! bail path exists so hand-built or adversarial bytecode degrades to the
//! (checked, slower) enum interpreter instead of failing.
//!
//! ## Equivalence guarantee
//!
//! Packing is per-instruction and order-preserving: word `k` encodes
//! `instrs[k]`, jump targets are unchanged, and [`decode`] is a total
//! inverse on packer output. [`crate::vm::validate_function`] re-decodes
//! every word and compares it against the enum stream before execution,
//! so the packed dispatch loops may access registers and pools unchecked
//! with the same soundness argument as the enum loop.

use crate::bytecode::*;
use chef_ir::ast::Intrinsic;
use chef_ir::types::FloatTy;
use std::collections::HashMap;

/// Dense opcodes of the packed word format. Kept contiguous from zero so
/// the dispatch `match` lowers to a jump table.
pub mod op {
    /// `f[A] = pool[B]` (as `f64` bits)
    pub const FCONST: u8 = 0;
    /// `f[A] = f[B]`
    pub const FMOV: u8 = 1;
    /// `f[A] = f[B] + f[C]`
    pub const FADD: u8 = 2;
    /// `f[A] = f[B] - f[C]`
    pub const FSUB: u8 = 3;
    /// `f[A] = f[B] * f[C]`
    pub const FMUL: u8 = 4;
    /// `f[A] = f[B] / f[C]`
    pub const FDIV: u8 = 5;
    /// `f[A] = -f[B]`
    pub const FNEG: u8 = 6;
    /// `f[A] = round_to(f[B], ty(D))`
    pub const FROUND: u8 = 7;
    /// `f[A] = INTRINSICS[D](f[B])`
    pub const FINTR1: u8 = 8;
    /// `f[A] = INTRINSICS[D](f[B], f[C])`
    pub const FINTR2: u8 = 9;
    /// `i[A] = f[B] cmp(D) f[C]`
    pub const FCMP: u8 = 10;
    /// `f[A] = farr[B][i[C]]`
    pub const FLOAD: u8 = 11;
    /// `farr[A][i[B]] = f[C]`
    pub const FSTORE: u8 = 12;
    /// `i[A] = trunc(f[B])`
    pub const F2I: u8 = 13;
    /// `f[A] = i[B] as f64`
    pub const I2F: u8 = 14;
    /// `i[A] = B as i16`
    pub const ICONST: u8 = 15;
    /// `i[A] = pool[B]` (as `i64` bits)
    pub const ICONSTP: u8 = 16;
    /// `i[A] = i[B]`
    pub const IMOV: u8 = 17;
    /// `i[A] = i[B] + i[C]`
    pub const IADD: u8 = 18;
    /// `i[A] = i[B] - i[C]`
    pub const ISUB: u8 = 19;
    /// `i[A] = i[B] * i[C]`
    pub const IMUL: u8 = 20;
    /// `i[A] = i[B] / i[C]`
    pub const IDIV: u8 = 21;
    /// `i[A] = i[B] % i[C]`
    pub const IREM: u8 = 22;
    /// `i[A] = -i[B]`
    pub const INEG: u8 = 23;
    /// `i[A] = i[B] cmp(D) i[C]`
    pub const ICMP: u8 = 24;
    /// `i[A] = iarr[B][i[C]]`
    pub const ILOAD: u8 = 25;
    /// `iarr[A][i[B]] = i[C]`
    pub const ISTORE: u8 = 26;
    /// `i[A] = 1 - i[B]`
    pub const BNOT: u8 = 27;
    /// `pc = C`
    pub const JMP: u8 = 28;
    /// `if i[A] == 0 { pc = C }`
    pub const JMPF: u8 = 29;
    /// `if i[A] != 0 { pc = C }`
    pub const JMPT: u8 = 30;
    /// push `f[A]` onto the tape
    pub const TPUSHF: u8 = 31;
    /// pop the tape into `f[A]`
    pub const TPOPF: u8 = 32;
    /// push `i[A]` onto the int tape
    pub const TPUSHI: u8 = 33;
    /// pop the int tape into `i[A]`
    pub const TPOPI: u8 = 34;
    /// `farr[A] = zeroed(i[B])`
    pub const ALLOCF: u8 = 35;
    /// `iarr[A] = zeroed(i[B])`
    pub const ALLOCI: u8 = 36;
    /// `f[A] = f[B] * f[C] + f[D]` (separate roundings — not an FMA)
    pub const FMULADD: u8 = 37;
    /// `f[A] = round_to(f[B] + f[C], ty(D))`
    pub const FADDROUND: u8 = 38;
    /// `f[A] = round_to(f[B] - f[C], ty(D))`
    pub const FSUBROUND: u8 = 39;
    /// `f[A] = round_to(f[B] * f[C], ty(D))`
    pub const FMULROUND: u8 = 40;
    /// `f[A] = round_to(f[B] / f[C], ty(D))`
    pub const FDIVROUND: u8 = 41;
    /// `f[A] = farr[B][i[C] + D as i8]`
    pub const FLOADOFF: u8 = 42;
    /// `farr[A][i[B] + D as i8] = f[C]`
    pub const FSTOREOFF: u8 = 43;
    /// `i[A] = i[B] + C as i16`
    pub const IADDIMM: u8 = 44;
    /// `i[A] = i[B] + pool[C]` (as `i64` bits)
    pub const IADDIMMP: u8 = 45;
    /// `if !(f[A] cmp(D) f[B]) { pc = C }`
    pub const FCJF: u8 = 46;
    /// `if f[A] cmp(D) f[B] { pc = C }`
    pub const FCJT: u8 = 47;
    /// `if !(i[A] cmp(D) i[B]) { pc = C }`
    pub const ICJF: u8 = 48;
    /// `if i[A] cmp(D) i[B] { pc = C }`
    pub const ICJT: u8 = 49;
    /// return `f[A]`
    pub const RETF: u8 = 50;
    /// return `i[A]` as int
    pub const RETI: u8 = 51;
    /// return `i[A]` as bool
    pub const RETB: u8 = 52;
    /// return nothing
    pub const RETVOID: u8 = 53;
    /// trap: control fell off a non-void function
    pub const TRAPMISSING: u8 = 54;
    /// `f[A] = round_to(INTRINSICS[D & 63](f[B]), ty(D >> 6))`
    pub const FINTR1ROUND: u8 = 55;
    /// `f[A] = round_to(INTRINSICS[D & 63](f[B], f[C]), ty(D >> 6))`
    pub const FINTR2ROUND: u8 = 56;
    /// `f[A] = f[B] + pool[C]` (as `f64` bits)
    pub const FADDC: u8 = 57;
    /// `f[A] = f[B] - pool[C]`
    pub const FSUBC: u8 = 58;
    /// `f[A] = pool[C] - f[B]`
    pub const FSUBCR: u8 = 59;
    /// `f[A] = f[B] * pool[C]`
    pub const FMULC: u8 = 60;
    /// `f[A] = f[B] / pool[C]`
    pub const FDIVC: u8 = 61;
    /// `f[A] = pool[C] / f[B]`
    pub const FDIVCR: u8 = 62;
    /// `if !(i[A] cmp(D) B as i16) { pc = C }`
    pub const ICJFI: u8 = 63;
    /// `if i[A] cmp(D) B as i16 { pc = C }`
    pub const ICJTI: u8 = 64;
    /// Number of opcodes (all values below are valid).
    pub const COUNT: u8 = 65;
}

/// Every intrinsic, indexed by its packed 6-bit code ([`intr_code`]).
/// A link-time constant, so the dispatch loops decode intrinsics without
/// carrying a per-function table pointer.
pub const INTRINSICS: [Intrinsic; 26] = [
    Intrinsic::Sin,
    Intrinsic::Cos,
    Intrinsic::Tan,
    Intrinsic::Exp,
    Intrinsic::Log,
    Intrinsic::Exp2,
    Intrinsic::Log2,
    Intrinsic::Sqrt,
    Intrinsic::Pow,
    Intrinsic::Fabs,
    Intrinsic::Floor,
    Intrinsic::Ceil,
    Intrinsic::Fmin,
    Intrinsic::Fmax,
    Intrinsic::Erf,
    Intrinsic::Erfc,
    Intrinsic::NormCdf,
    Intrinsic::Tanh,
    Intrinsic::Sinh,
    Intrinsic::Cosh,
    Intrinsic::Atan,
    Intrinsic::FastExp,
    Intrinsic::FasterExp,
    Intrinsic::FastLog,
    Intrinsic::FastSqrt,
    Intrinsic::FastNormCdf,
];

/// The 6-bit code of an intrinsic: its index in [`INTRINSICS`]. Fits the
/// packed D field alongside a 2-bit precision code (26 < 64).
#[inline]
pub fn intr_code(i: Intrinsic) -> u8 {
    INTRINSICS
        .iter()
        .position(|&x| x == i)
        .expect("every intrinsic is in the table") as u8
}

/// Checked inverse of [`intr_code`].
#[inline]
pub fn intr_from(code: u8) -> Option<Intrinsic> {
    INTRINSICS.get(code as usize).copied()
}

/// The packed program: one `u64` word per enum instruction, plus the
/// hoisted constant pool the words index into.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedCode {
    /// One packed word per instruction (`words.len() == instrs.len()`;
    /// word `k` encodes `instrs[k]`, so `pc`, spans and jump targets are
    /// shared with the enum stream).
    pub words: Vec<u64>,
    /// Hoisted wide constants, deduplicated by bit pattern: `f64`s are
    /// stored as their bits (`FCONST` reads them back with
    /// [`f64::from_bits`]), `i64` immediates as their two's-complement
    /// bits. One pool keeps one live pointer in the dispatch loop.
    pub pool: Vec<u64>,
}

impl PackedCode {
    /// Human-readable disassembly of the packed stream: raw word plus its
    /// decoded instruction (or `<undecodable>` for malformed words).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "packed ({} words, pool={})",
            self.words.len(),
            self.pool.len()
        );
        for (pc, &w) in self.words.iter().enumerate() {
            match decode(w, self) {
                Some(ins) => {
                    let _ = writeln!(out, "{pc:4}: {w:016x}  {ins:?}");
                }
                None => {
                    let _ = writeln!(out, "{pc:4}: {w:016x}  <undecodable>");
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------- fields

/// Opcode byte of a word.
#[inline(always)]
pub fn opcode(w: u64) -> u8 {
    w as u8
}

/// 16-bit A field (bits 8..24).
#[inline(always)]
pub fn fa(w: u64) -> usize {
    (w >> 8) as u16 as usize
}

/// 16-bit B field (bits 24..40).
#[inline(always)]
pub fn fb(w: u64) -> usize {
    (w >> 24) as u16 as usize
}

/// 16-bit C field (bits 40..56).
#[inline(always)]
pub fn fc(w: u64) -> usize {
    (w >> 40) as u16 as usize
}

/// 8-bit D field (bits 56..64).
#[inline(always)]
pub fn fd(w: u64) -> usize {
    (w >> 56) as usize
}

/// B field as a sign-extended i16 immediate.
#[inline(always)]
pub fn fb_i16(w: u64) -> i64 {
    (w >> 24) as u16 as i16 as i64
}

/// C field as a sign-extended i16 immediate.
#[inline(always)]
pub fn fc_i16(w: u64) -> i64 {
    (w >> 40) as u16 as i16 as i64
}

/// D field as a sign-extended i8 offset.
#[inline(always)]
pub fn fd_i8(w: u64) -> i64 {
    (w >> 56) as u8 as i8 as i64
}

// Hot-loop field accessors: read operand fields straight out of the
// word stream with `pc`-relative addresses. On little-endian targets
// these compile to independent narrow loads whose addresses depend only
// on `pc` — not on the loaded word — so they issue in parallel with the
// dispatch jump instead of chaining load → shift → use (the big-endian
// fallback decodes via shifts). Words are 8-byte aligned, so the narrow
// loads never cross a cache line.
//
// # Safety
// All require `pc < words.len()`.

/// Opcode byte of word `pc`.
///
/// # Safety
/// `pc < words.len()`.
#[inline(always)]
pub unsafe fn w_op(words: &[u64], pc: usize) -> u8 {
    #[cfg(target_endian = "little")]
    return *words.as_ptr().cast::<u8>().add(pc * 8);
    #[cfg(not(target_endian = "little"))]
    return opcode(*words.get_unchecked(pc));
}

/// A field of word `pc`.
///
/// # Safety
/// `pc < words.len()`.
#[inline(always)]
pub unsafe fn w_a(words: &[u64], pc: usize) -> usize {
    #[cfg(target_endian = "little")]
    return words
        .as_ptr()
        .cast::<u8>()
        .add(pc * 8 + 1)
        .cast::<u16>()
        .read_unaligned() as usize;
    #[cfg(not(target_endian = "little"))]
    return fa(*words.get_unchecked(pc));
}

/// B field of word `pc`.
///
/// # Safety
/// `pc < words.len()`.
#[inline(always)]
pub unsafe fn w_b(words: &[u64], pc: usize) -> usize {
    #[cfg(target_endian = "little")]
    return words
        .as_ptr()
        .cast::<u8>()
        .add(pc * 8 + 3)
        .cast::<u16>()
        .read_unaligned() as usize;
    #[cfg(not(target_endian = "little"))]
    return fb(*words.get_unchecked(pc));
}

/// C field of word `pc`.
///
/// # Safety
/// `pc < words.len()`.
#[inline(always)]
pub unsafe fn w_c(words: &[u64], pc: usize) -> usize {
    #[cfg(target_endian = "little")]
    return words
        .as_ptr()
        .cast::<u8>()
        .add(pc * 8 + 5)
        .cast::<u16>()
        .read_unaligned() as usize;
    #[cfg(not(target_endian = "little"))]
    return fc(*words.get_unchecked(pc));
}

/// D field of word `pc`.
///
/// # Safety
/// `pc < words.len()`.
#[inline(always)]
pub unsafe fn w_d(words: &[u64], pc: usize) -> usize {
    #[cfg(target_endian = "little")]
    return *words.as_ptr().cast::<u8>().add(pc * 8 + 7) as usize;
    #[cfg(not(target_endian = "little"))]
    return fd(*words.get_unchecked(pc));
}

/// B field of word `pc` as a sign-extended i16.
///
/// # Safety
/// `pc < words.len()`.
#[inline(always)]
pub unsafe fn w_b_i16(words: &[u64], pc: usize) -> i64 {
    #[cfg(target_endian = "little")]
    return words
        .as_ptr()
        .cast::<u8>()
        .add(pc * 8 + 3)
        .cast::<i16>()
        .read_unaligned() as i64;
    #[cfg(not(target_endian = "little"))]
    return fb_i16(*words.get_unchecked(pc));
}

/// C field of word `pc` as a sign-extended i16.
///
/// # Safety
/// `pc < words.len()`.
#[inline(always)]
pub unsafe fn w_c_i16(words: &[u64], pc: usize) -> i64 {
    #[cfg(target_endian = "little")]
    return words
        .as_ptr()
        .cast::<u8>()
        .add(pc * 8 + 5)
        .cast::<i16>()
        .read_unaligned() as i64;
    #[cfg(not(target_endian = "little"))]
    return fc_i16(*words.get_unchecked(pc));
}

/// D field of word `pc` as a sign-extended i8.
///
/// # Safety
/// `pc < words.len()`.
#[inline(always)]
pub unsafe fn w_d_i8(words: &[u64], pc: usize) -> i64 {
    #[cfg(target_endian = "little")]
    return *words.as_ptr().cast::<u8>().add(pc * 8 + 7).cast::<i8>() as i64;
    #[cfg(not(target_endian = "little"))]
    return fd_i8(*words.get_unchecked(pc));
}

#[inline(always)]
fn word(op: u8, a: u16, b: u16, c: u16, d: u8) -> u64 {
    op as u64 | (a as u64) << 8 | (b as u64) << 24 | (c as u64) << 40 | (d as u64) << 56
}

/// 2-bit precision code in the D field (shared with a 6-bit intrinsic
/// index by the `FINTR*ROUND` forms).
#[inline(always)]
pub fn ty_code(ty: FloatTy) -> u8 {
    match ty {
        FloatTy::F16 => 0,
        FloatTy::BF16 => 1,
        FloatTy::F32 => 2,
        FloatTy::F64 => 3,
    }
}

/// Inverse of [`ty_code`].
#[inline(always)]
pub fn ty_from(code: u8) -> FloatTy {
    match code & 3 {
        0 => FloatTy::F16,
        1 => FloatTy::BF16,
        2 => FloatTy::F32,
        _ => FloatTy::F64,
    }
}

/// Comparison-operator code in the D field.
#[inline(always)]
pub fn cmp_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

/// Inverse of [`cmp_code`] (codes ≥ 6 alias `Ge`; the packer never emits
/// them and validation rejects words that do not decode to their enum
/// instruction).
#[inline(always)]
pub fn cmp_from(code: u8) -> CmpOp {
    match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

// ----------------------------------------------------------------- pack

struct Pools {
    pool: Vec<u64>,
    map: HashMap<u64, u16>,
}

impl Pools {
    fn new() -> Self {
        Pools {
            pool: Vec::new(),
            map: HashMap::new(),
        }
    }

    fn entry(&mut self, bits: u64) -> Option<u16> {
        if let Some(&k) = self.map.get(&bits) {
            return Some(k);
        }
        let k = u16::try_from(self.pool.len()).ok()?;
        self.pool.push(bits);
        self.map.insert(bits, k);
        Some(k)
    }

    fn fconst(&mut self, v: f64) -> Option<u16> {
        self.entry(v.to_bits())
    }

    fn iconst(&mut self, v: i64) -> Option<u16> {
        self.entry(v as u64)
    }
}

#[inline]
fn r16(r: u32) -> Option<u16> {
    u16::try_from(r).ok()
}

#[inline]
fn r8(r: u32) -> Option<u8> {
    u8::try_from(r).ok()
}

/// Packs one enum instruction; `None` when it has no packed encoding
/// (operand out of field range, pool overflow).
fn pack_instr(ins: &Instr, pools: &mut Pools) -> Option<u64> {
    use op::*;
    Some(match *ins {
        Instr::FConst { dst, v } => word(FCONST, r16(dst.0)?, pools.fconst(v)?, 0, 0),
        Instr::FMov { dst, src } => word(FMOV, r16(dst.0)?, r16(src.0)?, 0, 0),
        Instr::FAdd { dst, a, b } => word(FADD, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::FSub { dst, a, b } => word(FSUB, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::FMul { dst, a, b } => word(FMUL, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::FDiv { dst, a, b } => word(FDIV, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::FNeg { dst, src } => word(FNEG, r16(dst.0)?, r16(src.0)?, 0, 0),
        Instr::FRound { dst, src, ty } => word(FROUND, r16(dst.0)?, r16(src.0)?, 0, ty_code(ty)),
        Instr::FIntr1 { dst, intr, a } => word(FINTR1, r16(dst.0)?, r16(a.0)?, 0, intr_code(intr)),
        Instr::FIntr2 { dst, intr, a, b } => {
            word(FINTR2, r16(dst.0)?, r16(a.0)?, r16(b.0)?, intr_code(intr))
        }
        Instr::FCmp { dst, op, a, b } => {
            word(FCMP, r16(dst.0)?, r16(a.0)?, r16(b.0)?, cmp_code(op))
        }
        Instr::FLoad { dst, arr, idx } => word(FLOAD, r16(dst.0)?, r16(arr.0)?, r16(idx.0)?, 0),
        Instr::FStore { arr, idx, src } => word(FSTORE, r16(arr.0)?, r16(idx.0)?, r16(src.0)?, 0),
        Instr::F2I { dst, src } => word(F2I, r16(dst.0)?, r16(src.0)?, 0, 0),
        Instr::I2F { dst, src } => word(I2F, r16(dst.0)?, r16(src.0)?, 0, 0),
        Instr::IConst { dst, v } => match i16::try_from(v) {
            Ok(imm) => word(ICONST, r16(dst.0)?, imm as u16, 0, 0),
            Err(_) => word(ICONSTP, r16(dst.0)?, pools.iconst(v)?, 0, 0),
        },
        Instr::IMov { dst, src } => word(IMOV, r16(dst.0)?, r16(src.0)?, 0, 0),
        Instr::IAdd { dst, a, b } => word(IADD, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::ISub { dst, a, b } => word(ISUB, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::IMul { dst, a, b } => word(IMUL, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::IDiv { dst, a, b } => word(IDIV, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::IRem { dst, a, b } => word(IREM, r16(dst.0)?, r16(a.0)?, r16(b.0)?, 0),
        Instr::INeg { dst, src } => word(INEG, r16(dst.0)?, r16(src.0)?, 0, 0),
        Instr::ICmp { dst, op, a, b } => {
            word(ICMP, r16(dst.0)?, r16(a.0)?, r16(b.0)?, cmp_code(op))
        }
        Instr::ILoad { dst, arr, idx } => word(ILOAD, r16(dst.0)?, r16(arr.0)?, r16(idx.0)?, 0),
        Instr::IStore { arr, idx, src } => word(ISTORE, r16(arr.0)?, r16(idx.0)?, r16(src.0)?, 0),
        Instr::BNot { dst, src } => word(BNOT, r16(dst.0)?, r16(src.0)?, 0, 0),
        Instr::Jmp { target } => word(JMP, 0, 0, r16(target)?, 0),
        Instr::JmpIfFalse { cond, target } => word(JMPF, r16(cond.0)?, 0, r16(target)?, 0),
        Instr::JmpIfTrue { cond, target } => word(JMPT, r16(cond.0)?, 0, r16(target)?, 0),
        Instr::TPushF { src } => word(TPUSHF, r16(src.0)?, 0, 0, 0),
        Instr::TPopF { dst } => word(TPOPF, r16(dst.0)?, 0, 0, 0),
        Instr::TPushI { src } => word(TPUSHI, r16(src.0)?, 0, 0, 0),
        Instr::TPopI { dst } => word(TPOPI, r16(dst.0)?, 0, 0, 0),
        Instr::AllocF { arr, len } => word(ALLOCF, r16(arr.0)?, r16(len.0)?, 0, 0),
        Instr::AllocI { arr, len } => word(ALLOCI, r16(arr.0)?, r16(len.0)?, 0, 0),
        Instr::FMulAdd { dst, a, b, c } => {
            word(FMULADD, r16(dst.0)?, r16(a.0)?, r16(b.0)?, r8(c.0)?)
        }
        Instr::FAddRound { dst, a, b, ty } => {
            word(FADDROUND, r16(dst.0)?, r16(a.0)?, r16(b.0)?, ty_code(ty))
        }
        Instr::FSubRound { dst, a, b, ty } => {
            word(FSUBROUND, r16(dst.0)?, r16(a.0)?, r16(b.0)?, ty_code(ty))
        }
        Instr::FMulRound { dst, a, b, ty } => {
            word(FMULROUND, r16(dst.0)?, r16(a.0)?, r16(b.0)?, ty_code(ty))
        }
        Instr::FDivRound { dst, a, b, ty } => {
            word(FDIVROUND, r16(dst.0)?, r16(a.0)?, r16(b.0)?, ty_code(ty))
        }
        Instr::FIntr1Round { dst, intr, a, ty } => {
            let d = (ty_code(ty) << 6) | intr_code(intr);
            word(FINTR1ROUND, r16(dst.0)?, r16(a.0)?, 0, d)
        }
        Instr::FIntr2Round {
            dst,
            intr,
            a,
            b,
            ty,
        } => {
            let d = (ty_code(ty) << 6) | intr_code(intr);
            word(FINTR2ROUND, r16(dst.0)?, r16(a.0)?, r16(b.0)?, d)
        }
        Instr::FLoadOff {
            dst,
            arr,
            base,
            off,
        } => {
            let off = i8::try_from(off).ok()?;
            word(FLOADOFF, r16(dst.0)?, r16(arr.0)?, r16(base.0)?, off as u8)
        }
        Instr::FStoreOff {
            arr,
            base,
            off,
            src,
        } => {
            let off = i8::try_from(off).ok()?;
            word(FSTOREOFF, r16(arr.0)?, r16(base.0)?, r16(src.0)?, off as u8)
        }
        Instr::IAddImm { dst, a, imm } => match i16::try_from(imm) {
            Ok(v) => word(IADDIMM, r16(dst.0)?, r16(a.0)?, v as u16, 0),
            Err(_) => word(IADDIMMP, r16(dst.0)?, r16(a.0)?, pools.iconst(imm)?, 0),
        },
        Instr::FCmpJmpFalse { op, a, b, target } => {
            word(FCJF, r16(a.0)?, r16(b.0)?, r16(target)?, cmp_code(op))
        }
        Instr::FCmpJmpTrue { op, a, b, target } => {
            word(FCJT, r16(a.0)?, r16(b.0)?, r16(target)?, cmp_code(op))
        }
        Instr::ICmpJmpFalse { op, a, b, target } => {
            word(ICJF, r16(a.0)?, r16(b.0)?, r16(target)?, cmp_code(op))
        }
        Instr::ICmpJmpTrue { op, a, b, target } => {
            word(ICJT, r16(a.0)?, r16(b.0)?, r16(target)?, cmp_code(op))
        }
        Instr::FAddC { dst, a, k } => word(FADDC, r16(dst.0)?, r16(a.0)?, pools.fconst(k)?, 0),
        Instr::FSubC { dst, a, k } => word(FSUBC, r16(dst.0)?, r16(a.0)?, pools.fconst(k)?, 0),
        Instr::FSubCR { dst, k, a } => word(FSUBCR, r16(dst.0)?, r16(a.0)?, pools.fconst(k)?, 0),
        Instr::FMulC { dst, a, k } => word(FMULC, r16(dst.0)?, r16(a.0)?, pools.fconst(k)?, 0),
        Instr::FDivC { dst, a, k } => word(FDIVC, r16(dst.0)?, r16(a.0)?, pools.fconst(k)?, 0),
        Instr::FDivCR { dst, k, a } => word(FDIVCR, r16(dst.0)?, r16(a.0)?, pools.fconst(k)?, 0),
        Instr::ICmpImmJmpFalse { op, a, imm, target } => {
            let imm = i16::try_from(imm).ok()?;
            word(ICJFI, r16(a.0)?, imm as u16, r16(target)?, cmp_code(op))
        }
        Instr::ICmpImmJmpTrue { op, a, imm, target } => {
            let imm = i16::try_from(imm).ok()?;
            word(ICJTI, r16(a.0)?, imm as u16, r16(target)?, cmp_code(op))
        }
        Instr::RetF { src } => word(RETF, r16(src.0)?, 0, 0, 0),
        Instr::RetI { src } => word(RETI, r16(src.0)?, 0, 0, 0),
        Instr::RetB { src } => word(RETB, r16(src.0)?, 0, 0, 0),
        Instr::RetVoid => word(RETVOID, 0, 0, 0, 0),
        Instr::TrapMissingReturn => word(TRAPMISSING, 0, 0, 0, 0),
    })
}

/// Packs a whole function; `None` when any instruction has no packed
/// encoding (the VM then stays on the enum interpreter).
pub fn pack_function(func: &CompiledFunction) -> Option<PackedCode> {
    // Jump targets may legally equal the instruction count ("jump to the
    // end"), so the count itself must fit the 16-bit target field.
    if func.instrs.len() > u16::MAX as usize {
        chef_telemetry::counter!("exec.pack.bailout.too_long").inc();
        return None;
    }
    let mut pools = Pools::new();
    let mut words = Vec::with_capacity(func.instrs.len());
    for ins in &func.instrs {
        let Some(w) = pack_instr(ins, &mut pools) else {
            chef_telemetry::counter!("exec.pack.bailout.unencodable").inc();
            return None;
        };
        words.push(w);
    }
    Some(PackedCode {
        words,
        pool: pools.pool,
    })
}

/// Decodes one packed word back to its enum instruction; `None` for an
/// unknown opcode or an out-of-range pool index. Total inverse of the
/// packer: `decode(pack_instr(i)) == Some(i)` (bit-for-bit on constants).
pub fn decode(w: u64, p: &PackedCode) -> Option<Instr> {
    use op::*;
    let (a, b, c, d) = (fa(w), fb(w), fc(w), fd(w));
    Some(match opcode(w) {
        FCONST => Instr::FConst {
            dst: FReg(a as u32),
            v: f64::from_bits(*p.pool.get(b)?),
        },
        FMOV => Instr::FMov {
            dst: FReg(a as u32),
            src: FReg(b as u32),
        },
        FADD => Instr::FAdd {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
        },
        FSUB => Instr::FSub {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
        },
        FMUL => Instr::FMul {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
        },
        FDIV => Instr::FDiv {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
        },
        FNEG => Instr::FNeg {
            dst: FReg(a as u32),
            src: FReg(b as u32),
        },
        FROUND => Instr::FRound {
            dst: FReg(a as u32),
            src: FReg(b as u32),
            ty: ty_from(d as u8),
        },
        FINTR1 => Instr::FIntr1 {
            dst: FReg(a as u32),
            intr: intr_from(d as u8)?,
            a: FReg(b as u32),
        },
        FINTR2 => Instr::FIntr2 {
            dst: FReg(a as u32),
            intr: intr_from(d as u8)?,
            a: FReg(b as u32),
            b: FReg(c as u32),
        },
        FCMP => Instr::FCmp {
            dst: IReg(a as u32),
            op: cmp_from(d as u8),
            a: FReg(b as u32),
            b: FReg(c as u32),
        },
        FLOAD => Instr::FLoad {
            dst: FReg(a as u32),
            arr: AReg(b as u32),
            idx: IReg(c as u32),
        },
        FSTORE => Instr::FStore {
            arr: AReg(a as u32),
            idx: IReg(b as u32),
            src: FReg(c as u32),
        },
        F2I => Instr::F2I {
            dst: IReg(a as u32),
            src: FReg(b as u32),
        },
        I2F => Instr::I2F {
            dst: FReg(a as u32),
            src: IReg(b as u32),
        },
        ICONST => Instr::IConst {
            dst: IReg(a as u32),
            v: fb_i16(w),
        },
        ICONSTP => Instr::IConst {
            dst: IReg(a as u32),
            v: *p.pool.get(b)? as i64,
        },
        IMOV => Instr::IMov {
            dst: IReg(a as u32),
            src: IReg(b as u32),
        },
        IADD => Instr::IAdd {
            dst: IReg(a as u32),
            a: IReg(b as u32),
            b: IReg(c as u32),
        },
        ISUB => Instr::ISub {
            dst: IReg(a as u32),
            a: IReg(b as u32),
            b: IReg(c as u32),
        },
        IMUL => Instr::IMul {
            dst: IReg(a as u32),
            a: IReg(b as u32),
            b: IReg(c as u32),
        },
        IDIV => Instr::IDiv {
            dst: IReg(a as u32),
            a: IReg(b as u32),
            b: IReg(c as u32),
        },
        IREM => Instr::IRem {
            dst: IReg(a as u32),
            a: IReg(b as u32),
            b: IReg(c as u32),
        },
        INEG => Instr::INeg {
            dst: IReg(a as u32),
            src: IReg(b as u32),
        },
        ICMP => Instr::ICmp {
            dst: IReg(a as u32),
            op: cmp_from(d as u8),
            a: IReg(b as u32),
            b: IReg(c as u32),
        },
        ILOAD => Instr::ILoad {
            dst: IReg(a as u32),
            arr: AReg(b as u32),
            idx: IReg(c as u32),
        },
        ISTORE => Instr::IStore {
            arr: AReg(a as u32),
            idx: IReg(b as u32),
            src: IReg(c as u32),
        },
        BNOT => Instr::BNot {
            dst: IReg(a as u32),
            src: IReg(b as u32),
        },
        JMP => Instr::Jmp { target: c as u32 },
        JMPF => Instr::JmpIfFalse {
            cond: IReg(a as u32),
            target: c as u32,
        },
        JMPT => Instr::JmpIfTrue {
            cond: IReg(a as u32),
            target: c as u32,
        },
        TPUSHF => Instr::TPushF {
            src: FReg(a as u32),
        },
        TPOPF => Instr::TPopF {
            dst: FReg(a as u32),
        },
        TPUSHI => Instr::TPushI {
            src: IReg(a as u32),
        },
        TPOPI => Instr::TPopI {
            dst: IReg(a as u32),
        },
        ALLOCF => Instr::AllocF {
            arr: AReg(a as u32),
            len: IReg(b as u32),
        },
        ALLOCI => Instr::AllocI {
            arr: AReg(a as u32),
            len: IReg(b as u32),
        },
        FMULADD => Instr::FMulAdd {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
            c: FReg(d as u32),
        },
        FADDROUND => Instr::FAddRound {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
            ty: ty_from(d as u8),
        },
        FSUBROUND => Instr::FSubRound {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
            ty: ty_from(d as u8),
        },
        FMULROUND => Instr::FMulRound {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
            ty: ty_from(d as u8),
        },
        FDIVROUND => Instr::FDivRound {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            b: FReg(c as u32),
            ty: ty_from(d as u8),
        },
        FINTR1ROUND => Instr::FIntr1Round {
            dst: FReg(a as u32),
            intr: intr_from((d & 63) as u8)?,
            a: FReg(b as u32),
            ty: ty_from((d >> 6) as u8),
        },
        FINTR2ROUND => Instr::FIntr2Round {
            dst: FReg(a as u32),
            intr: intr_from((d & 63) as u8)?,
            a: FReg(b as u32),
            b: FReg(c as u32),
            ty: ty_from((d >> 6) as u8),
        },
        FLOADOFF => Instr::FLoadOff {
            dst: FReg(a as u32),
            arr: AReg(b as u32),
            base: IReg(c as u32),
            off: fd_i8(w) as i32,
        },
        FSTOREOFF => Instr::FStoreOff {
            arr: AReg(a as u32),
            base: IReg(b as u32),
            off: fd_i8(w) as i32,
            src: FReg(c as u32),
        },
        IADDIMM => Instr::IAddImm {
            dst: IReg(a as u32),
            a: IReg(b as u32),
            imm: fc_i16(w),
        },
        IADDIMMP => Instr::IAddImm {
            dst: IReg(a as u32),
            a: IReg(b as u32),
            imm: *p.pool.get(c)? as i64,
        },
        FCJF => Instr::FCmpJmpFalse {
            op: cmp_from(d as u8),
            a: FReg(a as u32),
            b: FReg(b as u32),
            target: c as u32,
        },
        FCJT => Instr::FCmpJmpTrue {
            op: cmp_from(d as u8),
            a: FReg(a as u32),
            b: FReg(b as u32),
            target: c as u32,
        },
        ICJF => Instr::ICmpJmpFalse {
            op: cmp_from(d as u8),
            a: IReg(a as u32),
            b: IReg(b as u32),
            target: c as u32,
        },
        ICJT => Instr::ICmpJmpTrue {
            op: cmp_from(d as u8),
            a: IReg(a as u32),
            b: IReg(b as u32),
            target: c as u32,
        },
        FADDC => Instr::FAddC {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            k: f64::from_bits(*p.pool.get(c)?),
        },
        FSUBC => Instr::FSubC {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            k: f64::from_bits(*p.pool.get(c)?),
        },
        FSUBCR => Instr::FSubCR {
            dst: FReg(a as u32),
            k: f64::from_bits(*p.pool.get(c)?),
            a: FReg(b as u32),
        },
        FMULC => Instr::FMulC {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            k: f64::from_bits(*p.pool.get(c)?),
        },
        FDIVC => Instr::FDivC {
            dst: FReg(a as u32),
            a: FReg(b as u32),
            k: f64::from_bits(*p.pool.get(c)?),
        },
        FDIVCR => Instr::FDivCR {
            dst: FReg(a as u32),
            k: f64::from_bits(*p.pool.get(c)?),
            a: FReg(b as u32),
        },
        ICJFI => Instr::ICmpImmJmpFalse {
            op: cmp_from(d as u8),
            a: IReg(a as u32),
            imm: fb_i16(w),
            target: c as u32,
        },
        ICJTI => Instr::ICmpImmJmpTrue {
            op: cmp_from(d as u8),
            a: IReg(a as u32),
            imm: fb_i16(w),
            target: c as u32,
        },
        RETF => Instr::RetF {
            src: FReg(a as u32),
        },
        RETI => Instr::RetI {
            src: IReg(a as u32),
        },
        RETB => Instr::RetB {
            src: IReg(a as u32),
        },
        RETVOID => Instr::RetVoid,
        TRAPMISSING => Instr::TrapMissingReturn,
        _ => return None,
    })
}

/// Instruction equality with bit-exact float comparison (`FConst` holding
/// a NaN must still round-trip; `PartialEq` on `f64` would reject it).
pub fn instr_eq_bits(x: &Instr, y: &Instr) -> bool {
    match (x, y) {
        (Instr::FConst { dst: d1, v: v1 }, Instr::FConst { dst: d2, v: v2 }) => {
            d1 == d2 && v1.to_bits() == v2.to_bits()
        }
        (
            Instr::FAddC {
                dst: d1,
                a: a1,
                k: k1,
            },
            Instr::FAddC {
                dst: d2,
                a: a2,
                k: k2,
            },
        )
        | (
            Instr::FSubC {
                dst: d1,
                a: a1,
                k: k1,
            },
            Instr::FSubC {
                dst: d2,
                a: a2,
                k: k2,
            },
        )
        | (
            Instr::FSubCR {
                dst: d1,
                a: a1,
                k: k1,
            },
            Instr::FSubCR {
                dst: d2,
                a: a2,
                k: k2,
            },
        )
        | (
            Instr::FMulC {
                dst: d1,
                a: a1,
                k: k1,
            },
            Instr::FMulC {
                dst: d2,
                a: a2,
                k: k2,
            },
        )
        | (
            Instr::FDivC {
                dst: d1,
                a: a1,
                k: k1,
            },
            Instr::FDivC {
                dst: d2,
                a: a2,
                k: k2,
            },
        )
        | (
            Instr::FDivCR {
                dst: d1,
                a: a1,
                k: k1,
            },
            Instr::FDivCR {
                dst: d2,
                a: a2,
                k: k2,
            },
        ) => d1 == d2 && a1 == a2 && k1.to_bits() == k2.to_bits(),
        _ => x == y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ins: Instr) {
        let mut pools = Pools::new();
        let w = pack_instr(&ins, &mut pools).expect("packs");
        let p = PackedCode {
            words: vec![w],
            pool: pools.pool,
        };
        let back = decode(w, &p).expect("decodes");
        assert!(instr_eq_bits(&ins, &back), "{ins:?} != {back:?}");
    }

    #[test]
    fn every_instruction_shape_round_trips() {
        use chef_ir::ast::Intrinsic;
        let f = FReg;
        let i = IReg;
        let cases = vec![
            Instr::FConst { dst: f(3), v: 1.5 },
            Instr::FConst {
                dst: f(0),
                v: f64::NAN,
            },
            Instr::FConst { dst: f(0), v: -0.0 },
            Instr::FMov {
                dst: f(1),
                src: f(2),
            },
            Instr::FAdd {
                dst: f(1),
                a: f(2),
                b: f(3),
            },
            Instr::FRound {
                dst: f(1),
                src: f(2),
                ty: FloatTy::BF16,
            },
            Instr::FIntr1 {
                dst: f(1),
                intr: Intrinsic::Sin,
                a: f(2),
            },
            Instr::FIntr2 {
                dst: f(1),
                intr: Intrinsic::Pow,
                a: f(2),
                b: f(3),
            },
            Instr::FIntr1Round {
                dst: f(1),
                intr: Intrinsic::Sqrt,
                a: f(2),
                ty: FloatTy::F32,
            },
            Instr::FIntr2Round {
                dst: f(1),
                intr: Intrinsic::Fmax,
                a: f(2),
                b: f(3),
                ty: FloatTy::F16,
            },
            Instr::FCmp {
                dst: i(1),
                op: CmpOp::Le,
                a: f(2),
                b: f(3),
            },
            Instr::FLoad {
                dst: f(1),
                arr: AReg(0),
                idx: i(2),
            },
            Instr::FStore {
                arr: AReg(0),
                idx: i(2),
                src: f(1),
            },
            Instr::IConst {
                dst: i(1),
                v: -32768,
            },
            Instr::IConst {
                dst: i(1),
                v: 1 << 40,
            },
            Instr::IAddImm {
                dst: i(1),
                a: i(2),
                imm: -1,
            },
            Instr::IAddImm {
                dst: i(1),
                a: i(2),
                imm: i64::MIN,
            },
            Instr::Jmp { target: 65535 },
            Instr::JmpIfFalse {
                cond: i(1),
                target: 7,
            },
            Instr::FMulAdd {
                dst: f(1),
                a: f(2),
                b: f(3),
                c: f(255),
            },
            Instr::FAddRound {
                dst: f(1),
                a: f(2),
                b: f(3),
                ty: FloatTy::F32,
            },
            Instr::FLoadOff {
                dst: f(1),
                arr: AReg(0),
                base: i(2),
                off: -128,
            },
            Instr::FStoreOff {
                arr: AReg(0),
                base: i(2),
                off: 127,
                src: f(1),
            },
            Instr::FCmpJmpFalse {
                op: CmpOp::Gt,
                a: f(1),
                b: f(2),
                target: 12,
            },
            Instr::ICmpJmpTrue {
                op: CmpOp::Ne,
                a: i(1),
                b: i(2),
                target: 0,
            },
            Instr::TPushF { src: f(9) },
            Instr::TPopI { dst: i(9) },
            Instr::AllocF {
                arr: AReg(1),
                len: i(0),
            },
            Instr::RetF { src: f(0) },
            Instr::RetVoid,
            Instr::TrapMissingReturn,
        ];
        for ins in cases {
            roundtrip(ins);
        }
    }

    #[test]
    fn packer_bails_on_wide_operands() {
        let mut pools = Pools::new();
        // 4th register of FMulAdd only has 8 bits.
        assert!(pack_instr(
            &Instr::FMulAdd {
                dst: FReg(0),
                a: FReg(1),
                b: FReg(2),
                c: FReg(256),
            },
            &mut pools
        )
        .is_none());
        // Register above the 16-bit field.
        assert!(pack_instr(
            &Instr::FMov {
                dst: FReg(70_000),
                src: FReg(0),
            },
            &mut pools
        )
        .is_none());
        // Load offset outside i8.
        assert!(pack_instr(
            &Instr::FLoadOff {
                dst: FReg(0),
                arr: AReg(0),
                base: IReg(0),
                off: 1000,
            },
            &mut pools
        )
        .is_none());
    }

    #[test]
    fn offset_i8_boundaries_pack_exactly() {
        // The D field holds the offset as `off as u8`, so exactly
        // i8::MIN..=i8::MAX is representable: −128 and 127 round-trip,
        // −129 and 128 bail (for both the load and the store form).
        for off in [-128, 127] {
            roundtrip(Instr::FLoadOff {
                dst: FReg(1),
                arr: AReg(0),
                base: IReg(2),
                off,
            });
            roundtrip(Instr::FStoreOff {
                arr: AReg(0),
                base: IReg(2),
                off,
                src: FReg(1),
            });
        }
        for off in [-129, 128] {
            let mut pools = Pools::new();
            assert!(
                pack_instr(
                    &Instr::FLoadOff {
                        dst: FReg(1),
                        arr: AReg(0),
                        base: IReg(2),
                        off,
                    },
                    &mut pools
                )
                .is_none(),
                "FLoadOff off={off} must bail"
            );
            assert!(
                pack_instr(
                    &Instr::FStoreOff {
                        arr: AReg(0),
                        base: IReg(2),
                        off,
                        src: FReg(1),
                    },
                    &mut pools
                )
                .is_none(),
                "FStoreOff off={off} must bail"
            );
        }
    }

    #[test]
    fn constants_are_pooled_and_deduplicated() {
        let mut pools = Pools::new();
        let w1 = pack_instr(
            &Instr::FConst {
                dst: FReg(0),
                v: 2.5,
            },
            &mut pools,
        )
        .unwrap();
        let w2 = pack_instr(
            &Instr::FConst {
                dst: FReg(1),
                v: 2.5,
            },
            &mut pools,
        )
        .unwrap();
        let w3 = pack_instr(
            &Instr::FConst {
                dst: FReg(2),
                v: 3.5,
            },
            &mut pools,
        )
        .unwrap();
        assert_eq!(pools.pool, vec![2.5f64.to_bits(), 3.5f64.to_bits()]);
        assert_eq!(fb(w1), fb(w2));
        assert_ne!(fb(w1), fb(w3));
    }

    #[test]
    fn disassemble_shows_decoded_instructions() {
        let mut pools = Pools::new();
        let w = pack_instr(
            &Instr::FConst {
                dst: FReg(0),
                v: 1.5,
            },
            &mut pools,
        )
        .unwrap();
        let p = PackedCode {
            words: vec![w],
            pool: pools.pool,
        };
        let d = p.disassemble();
        assert!(d.contains("FConst"), "{d}");
        assert!(d.contains("pool=1"), "{d}");
    }
}
