//! The register bytecode the VM executes.
//!
//! KernelC functions are compiled ([`crate::compile`]) to a flat
//! instruction vector over three register files: floats (`f64` slots),
//! integers (`i64` slots, also holding booleans as 0/1), and arrays.
//! Narrow float precisions are simulated explicitly in the instruction
//! stream with [`Instr::FRound`] — the compiler inserts a round after
//! every operation whose result precision is below `f64`, which is what
//! makes a "demoted" compilation behave like the hand-rewritten
//! mixed-precision source of the paper.

use chef_ir::ast::Intrinsic;
use chef_ir::span::Span;
use chef_ir::types::FloatTy;

/// Index into the float register file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FReg(pub u32);

/// Index into the integer register file (also used for booleans).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IReg(pub u32);

/// Index into the array register file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AReg(pub u32);

/// Comparison operator for `FCmp`/`ICmp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The comparison with its operands swapped: `a op b` ≡ `b op' a`.
    pub fn mirror(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// One VM instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `f[dst] = v`
    FConst { dst: FReg, v: f64 },
    /// `f[dst] = f[src]`
    FMov { dst: FReg, src: FReg },
    /// `f[dst] = f[a] + f[b]`
    FAdd { dst: FReg, a: FReg, b: FReg },
    /// `f[dst] = f[a] - f[b]`
    FSub { dst: FReg, a: FReg, b: FReg },
    /// `f[dst] = f[a] * f[b]`
    FMul { dst: FReg, a: FReg, b: FReg },
    /// `f[dst] = f[a] / f[b]` (IEEE semantics: ±∞/NaN on zero divisor)
    FDiv { dst: FReg, a: FReg, b: FReg },
    /// `f[dst] = -f[src]`
    FNeg { dst: FReg, src: FReg },
    /// `f[dst] = round_to(f[src], ty)` — the precision-simulation hook.
    FRound { dst: FReg, src: FReg, ty: FloatTy },
    /// `f[dst] = intr(f[a])` (dispatches through the approx config)
    FIntr1 { dst: FReg, intr: Intrinsic, a: FReg },
    /// `f[dst] = intr(f[a], f[b])`
    FIntr2 {
        dst: FReg,
        intr: Intrinsic,
        a: FReg,
        b: FReg,
    },
    /// `i[dst] = f[a] op f[b]`
    FCmp {
        dst: IReg,
        op: CmpOp,
        a: FReg,
        b: FReg,
    },
    /// `f[dst] = farr[arr][i[idx]]` (bounds-checked)
    FLoad { dst: FReg, arr: AReg, idx: IReg },
    /// `farr[arr][i[idx]] = f[src]` (bounds-checked)
    FStore { arr: AReg, idx: IReg, src: FReg },
    /// `i[dst] = trunc(f[src])` (C cast semantics)
    F2I { dst: IReg, src: FReg },
    /// `f[dst] = i[src] as f64`
    I2F { dst: FReg, src: IReg },

    /// `i[dst] = v`
    IConst { dst: IReg, v: i64 },
    /// `i[dst] = i[src]`
    IMov { dst: IReg, src: IReg },
    /// `i[dst] = i[a] + i[b]` (wrapping)
    IAdd { dst: IReg, a: IReg, b: IReg },
    /// `i[dst] = i[a] - i[b]` (wrapping)
    ISub { dst: IReg, a: IReg, b: IReg },
    /// `i[dst] = i[a] * i[b]` (wrapping)
    IMul { dst: IReg, a: IReg, b: IReg },
    /// `i[dst] = i[a] / i[b]` (traps on zero divisor)
    IDiv { dst: IReg, a: IReg, b: IReg },
    /// `i[dst] = i[a] % i[b]` (traps on zero divisor)
    IRem { dst: IReg, a: IReg, b: IReg },
    /// `i[dst] = -i[src]`
    INeg { dst: IReg, src: IReg },
    /// `i[dst] = i[a] op i[b]`
    ICmp {
        dst: IReg,
        op: CmpOp,
        a: IReg,
        b: IReg,
    },
    /// `i[dst] = iarr[arr][i[idx]]` (bounds-checked)
    ILoad { dst: IReg, arr: AReg, idx: IReg },
    /// `iarr[arr][i[idx]] = i[src]` (bounds-checked)
    IStore { arr: AReg, idx: IReg, src: IReg },
    /// `i[dst] = 1 - i[src]` (boolean not)
    BNot { dst: IReg, src: IReg },

    /// Unconditional jump to instruction index `target`.
    Jmp { target: u32 },
    /// Jump when `i[cond] == 0`.
    JmpIfFalse { cond: IReg, target: u32 },
    /// Jump when `i[cond] != 0`.
    JmpIfTrue { cond: IReg, target: u32 },

    /// Push `f[src]` onto the tape (forward sweep of Fig. 2).
    TPushF { src: FReg },
    /// Pop the tape into `f[dst]` (backward sweep of Fig. 2).
    TPopF { dst: FReg },
    /// Push `i[src]` onto the int tape (trip counts, branch flags).
    TPushI { src: IReg },
    /// Pop the int tape into `i[dst]`.
    TPopI { dst: IReg },

    /// Allocate a zeroed float array of length `i[len]` into slot `arr`.
    AllocF { arr: AReg, len: IReg },
    /// Allocate a zeroed int array of length `i[len]` into slot `arr`.
    AllocI { arr: AReg, len: IReg },

    // ---- fused superinstructions (emitted by [`crate::fuse`]) ----
    //
    // Each one is the exact composition of the base instructions it
    // replaces — same rounding, same trap points — so a fused program is
    // bit-identical to its unfused compilation; only the dispatch count
    // changes.
    /// `f[dst] = f[a] * f[b] + f[c]` — mul and add rounded **separately**
    /// (not an FMA), matching the unfused pair.
    FMulAdd {
        dst: FReg,
        a: FReg,
        b: FReg,
        c: FReg,
    },
    /// `f[dst] = round_to(f[a] + f[b], ty)` — the dominant pair in
    /// demoted code.
    FAddRound {
        dst: FReg,
        a: FReg,
        b: FReg,
        ty: FloatTy,
    },
    /// `f[dst] = round_to(f[a] - f[b], ty)`
    FSubRound {
        dst: FReg,
        a: FReg,
        b: FReg,
        ty: FloatTy,
    },
    /// `f[dst] = round_to(f[a] * f[b], ty)`
    FMulRound {
        dst: FReg,
        a: FReg,
        b: FReg,
        ty: FloatTy,
    },
    /// `f[dst] = round_to(f[a] / f[b], ty)`
    FDivRound {
        dst: FReg,
        a: FReg,
        b: FReg,
        ty: FloatTy,
    },
    /// `f[dst] = round_to(intr(f[a]), ty)` — intrinsic call into a demoted
    /// variable (e.g. `float y = sin(x)`).
    FIntr1Round {
        dst: FReg,
        intr: Intrinsic,
        a: FReg,
        ty: FloatTy,
    },
    /// `f[dst] = round_to(intr(f[a], f[b]), ty)`
    FIntr2Round {
        dst: FReg,
        intr: Intrinsic,
        a: FReg,
        b: FReg,
        ty: FloatTy,
    },
    /// `f[dst] = f[a] + k` — constant operand folded out of an `FConst`
    /// the loop body would otherwise re-materialize every iteration.
    FAddC { dst: FReg, a: FReg, k: f64 },
    /// `f[dst] = f[a] - k`
    FSubC { dst: FReg, a: FReg, k: f64 },
    /// `f[dst] = k - f[a]`
    FSubCR { dst: FReg, k: f64, a: FReg },
    /// `f[dst] = f[a] * k`
    FMulC { dst: FReg, a: FReg, k: f64 },
    /// `f[dst] = f[a] / k`
    FDivC { dst: FReg, a: FReg, k: f64 },
    /// `f[dst] = k / f[a]` (the `1.0 / x` idiom)
    FDivCR { dst: FReg, k: f64, a: FReg },
    /// Jump to `target` when `!(i[a] op imm)` — the fused
    /// constant-bound loop test (`IConst` + `ICmpJmpFalse`).
    ICmpImmJmpFalse {
        op: CmpOp,
        a: IReg,
        imm: i64,
        target: u32,
    },
    /// Jump to `target` when `i[a] op imm`.
    ICmpImmJmpTrue {
        op: CmpOp,
        a: IReg,
        imm: i64,
        target: u32,
    },
    /// `f[dst] = farr[arr][i[base] + off]` (bounds-checked)
    FLoadOff {
        dst: FReg,
        arr: AReg,
        base: IReg,
        off: i32,
    },
    /// `farr[arr][i[base] + off] = f[src]` (bounds-checked)
    FStoreOff {
        arr: AReg,
        base: IReg,
        off: i32,
        src: FReg,
    },
    /// `i[dst] = i[a] + imm` (wrapping) — loop increments.
    IAddImm { dst: IReg, a: IReg, imm: i64 },
    /// Jump to `target` when `!(f[a] op f[b])` — fused compare-and-branch
    /// (the loop-exit test).
    FCmpJmpFalse {
        op: CmpOp,
        a: FReg,
        b: FReg,
        target: u32,
    },
    /// Jump to `target` when `f[a] op f[b]`.
    FCmpJmpTrue {
        op: CmpOp,
        a: FReg,
        b: FReg,
        target: u32,
    },
    /// Jump to `target` when `!(i[a] op i[b])`.
    ICmpJmpFalse {
        op: CmpOp,
        a: IReg,
        b: IReg,
        target: u32,
    },
    /// Jump to `target` when `i[a] op i[b]`.
    ICmpJmpTrue {
        op: CmpOp,
        a: IReg,
        b: IReg,
        target: u32,
    },

    /// Return `f[src]`.
    RetF { src: FReg },
    /// Return `i[src]` as an int.
    RetI { src: IReg },
    /// Return `i[src]` as a bool.
    RetB { src: IReg },
    /// Return nothing.
    RetVoid,
    /// Control fell off the end of a non-void function.
    TrapMissingReturn,
}

/// Scalar/array kind of one parameter in the compiled signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// Float scalar at the (possibly demoted) precision; incoming values
    /// are rounded to this precision at call entry.
    F(FloatTy),
    /// Int scalar.
    I,
    /// Bool scalar.
    B,
    /// Float array with the given (possibly demoted) element precision;
    /// elements are rounded in place at call entry.
    FArr(FloatTy),
    /// Int array.
    IArr,
}

/// One parameter of a compiled function.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamSpec {
    /// Source-level name (for diagnostics and reports).
    pub name: String,
    /// Scalar/array kind with effective precision.
    pub kind: ParamKind,
    /// `true` if the updated value is copied back to the caller (arrays
    /// always are).
    pub by_ref: bool,
    /// The register (in the file implied by `kind`) the parameter binds to.
    pub reg: u32,
}

/// Return-value kind of a compiled function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetKind {
    /// Float return at the given precision (the VM rounds on return).
    F(FloatTy),
    /// Int return.
    I,
    /// Bool return.
    B,
    /// No return value.
    Void,
}

/// A fully compiled KernelC function.
#[derive(Clone, Debug)]
pub struct CompiledFunction {
    /// Source function name.
    pub name: String,
    /// The instruction stream.
    pub instrs: Vec<Instr>,
    /// Source span of each instruction (parallel to `instrs`), for traps.
    pub spans: Vec<Span>,
    /// Number of float registers.
    pub n_fregs: u32,
    /// Number of integer registers.
    pub n_iregs: u32,
    /// Number of array registers.
    pub n_aregs: u32,
    /// Parameter binding specs, in call order.
    pub params: Vec<ParamSpec>,
    /// Return kind.
    pub ret: RetKind,
    /// Source names of the float registers that are variable homes
    /// (`(register index, name)`, ascending; temporaries are unnamed).
    /// Consumed by the shadow interpreter's per-variable attribution and
    /// by diagnostics; execution never reads it.
    pub fvar_names: Vec<(u32, String)>,
    /// Source names of the array registers (every array register is a
    /// variable home; there are no array temporaries).
    pub avar_names: Vec<(u32, String)>,
    /// The packed `u64` word stream + constant pools produced by
    /// [`crate::pack`] (`None` when packing is disabled or the packer
    /// bailed — the VM then dispatches the enum stream). When present it
    /// is word-for-word equivalent to `instrs`; [`crate::vm::validate_function`]
    /// enforces that before any unchecked packed dispatch.
    pub packed: Option<crate::pack::PackedCode>,
}

impl CompiledFunction {
    /// Human-readable disassembly (one instruction per line), useful in
    /// tests and for debugging generated adjoints.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fn {} (fregs={}, iregs={}, aregs={})",
            self.name, self.n_fregs, self.n_iregs, self.n_aregs
        );
        for (pc, ins) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "{pc:4}: {ins:?}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembly_contains_instructions() {
        let f = CompiledFunction {
            name: "t".into(),
            instrs: vec![
                Instr::FConst {
                    dst: FReg(0),
                    v: 1.5,
                },
                Instr::RetF { src: FReg(0) },
            ],
            spans: vec![Span::DUMMY; 2],
            n_fregs: 1,
            n_iregs: 0,
            n_aregs: 0,
            params: vec![],
            ret: RetKind::F(FloatTy::F64),
            fvar_names: vec![],
            avar_names: vec![],
            packed: None,
        };
        let d = f.disassemble();
        assert!(d.contains("FConst"));
        assert!(d.contains("RetF"));
    }
}
