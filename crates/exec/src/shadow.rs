//! Shadow execution: one fused VM pass that runs a compiled program and
//! its high-precision shadow side by side.
//!
//! The primal stream executes exactly like [`crate::vm`] — same
//! arithmetic, same rounding instructions, same traps, bit-identical
//! results — while every float register, float array slot and float tape
//! entry carries a second value of type `S:`[`ShadowNum`] computed with
//! **unrounded semantics**: `FRound`/`F*Round` are identity on the
//! shadow, demoted parameters bind their original unrounded inputs, and
//! arithmetic happens in `S` (plain `f64`, or a double-double for
//! measuring an `f64` program's own rounding error — see `chef-shadow`).
//!
//! Three artifacts fall out of the pass (the Herbgrind recipe):
//!
//! * **Ground-truth output error** for the compiled configuration:
//!   `|shadow return − primal return|` measures what the demotions in a
//!   `PrecisionMap` actually did to the output, in one run instead of the
//!   demoted-vs-baseline pair.
//! * **Per-instruction local error samples**: at each float instruction
//!   the op is additionally applied (in `S`) to the *primal* inputs; the
//!   difference against the primal result is the rounding error
//!   introduced *by this instruction alone*. Samples accumulate per `pc`
//!   into [`PcSample`] (sum / max / count).
//! * **Per-variable attribution**: every register carries a *pending*
//!   error — the local errors absorbed while computing the value it
//!   holds, propagated through temporaries. When a value is committed to
//!   a named variable (its home register, or an array store), the pending
//!   error is charged to that variable and cleared, so each local error
//!   is charged to the first named variable it reaches. This mirrors how
//!   the estimation module charges model terms at assignments, making
//!   measured and estimated per-variable tables directly comparable.
//!
//! Control flow (branches, indices, trip counts) always follows the
//! primal execution; a demotion that flips a branch is measured *along
//! the demoted trace*, the standard shadow-execution convention. The pass
//! does, however, evaluate every float comparison (and every float→int
//! truncation) a second time on the **shadow** operands and records a
//! [`DivergencePoint`] whenever the decision differs — the Herbgrind
//! "where would the shadow have branched differently" signal. Divergence
//! is reported, never followed: a run with `divergence_count > 0` is a
//! run whose measurement callers should distrust (see `chef-tuner`'s
//! untrusted-config policy). Integer comparisons on values that never
//! passed through a float are precision-independent and are not checked;
//! the `F2I` check covers the float→int boundary.
//!
//! The pass reuses [`Machine`]'s buffers for the primal state and keeps
//! the shadow files alongside in [`ShadowMachine`], which is reusable
//! call-to-call exactly like `Machine`. Batches fan out over scoped
//! threads through [`crate::par::parallel_map_init`] (one shadow machine
//! per worker), mirroring [`crate::vm::run_batch_parallel`].

use crate::bytecode::*;
use crate::intrinsics::{eval1, eval2, ApproxConfig};
use crate::precision::round_to;
use crate::value::{ArgValue, Value};
use crate::vm::{
    fcmp, icmp, validate_function, ArraySlot, ExecOptions, ExecStats, Machine, Trap, TrapKind,
};
use chef_ir::ast::Intrinsic;
use chef_ir::span::Span;

/// The number type of the shadow stream.
///
/// Implemented by `f64` (unrounded double shadow — the oracle for
/// mixed-precision configurations) and by `chef-shadow`'s double-double
/// `DD` (quasi-exact shadow — the oracle for `f64` programs themselves).
pub trait ShadowNum: Copy + Send + Sync + 'static {
    /// Injects an exact `f64`.
    fn from_f64(x: f64) -> Self;
    /// Rounds back to `f64`.
    fn to_f64(self) -> f64;
    /// `a + b` in shadow precision.
    fn add(a: Self, b: Self) -> Self;
    /// `a - b` in shadow precision.
    fn sub(a: Self, b: Self) -> Self;
    /// `a * b` in shadow precision.
    fn mul(a: Self, b: Self) -> Self;
    /// `a / b` in shadow precision.
    fn div(a: Self, b: Self) -> Self;
    /// `-a`.
    fn neg(a: Self) -> Self;
    /// Unary intrinsic. The default evaluates through `f64` (correct for
    /// the `f64` shadow; a wider type may override per intrinsic).
    fn intr1(i: Intrinsic, a: Self, approx: &ApproxConfig) -> Self {
        Self::from_f64(eval1(i, a.to_f64(), approx))
    }
    /// Binary intrinsic (see [`ShadowNum::intr1`]).
    fn intr2(i: Intrinsic, a: Self, b: Self, approx: &ApproxConfig) -> Self {
        Self::from_f64(eval2(i, a.to_f64(), b.to_f64(), approx))
    }
    /// Comparison in shadow precision — what divergence detection asks to
    /// decide how the shadow *would have* branched. The default rounds
    /// both sides to `f64` and applies the primal's IEEE semantics (NaN
    /// compares false except `!=`); a wider type should override with an
    /// exact comparison so sub-ulp gaps at a branch knot are seen.
    fn cmp(op: CmpOp, a: Self, b: Self) -> bool {
        fcmp(op, a.to_f64(), b.to_f64())
    }
    /// Truncation toward zero in shadow precision — the `F2I` side of
    /// divergence detection. The default truncates the `f64` rounding
    /// (exact for the `f64` shadow); a wider type must override so a
    /// value sitting sub-ulp below an integer boundary truncates to the
    /// lower integer instead of the rounded one.
    fn trunc_i64(a: Self) -> i64 {
        a.to_f64() as i64
    }
}

impl ShadowNum for f64 {
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn add(a: Self, b: Self) -> Self {
        a + b
    }
    #[inline(always)]
    fn sub(a: Self, b: Self) -> Self {
        a - b
    }
    #[inline(always)]
    fn mul(a: Self, b: Self) -> Self {
        a * b
    }
    #[inline(always)]
    fn div(a: Self, b: Self) -> Self {
        a / b
    }
    #[inline(always)]
    fn neg(a: Self) -> Self {
        -a
    }
}

/// Accumulated local-error samples of one instruction (`pc`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PcSample {
    /// Sum of `|local error|` over all executions.
    pub sum: f64,
    /// Largest single sample.
    pub max: f64,
    /// Number of non-zero samples.
    pub count: u64,
}

/// Cap on the *detailed* [`DivergencePoint`]s retained per run. A
/// demotion that flips a hot loop's compare diverges on every iteration;
/// the total stays in [`ShadowOutcome::divergence_count`] while only the
/// first `MAX_DIVERGENCE_POINTS` splits keep their operands.
pub const MAX_DIVERGENCE_POINTS: usize = 64;

/// What decided differently between the primal and the shadow stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DivergenceKind {
    /// A float comparison (standalone `FCmp` or a fused
    /// compare-and-branch) evaluated to a different boolean on the shadow
    /// operands.
    FCmp {
        /// The comparison operator.
        op: CmpOp,
        /// Primal operands `(lhs, rhs)` — the decision that was followed.
        primal: (f64, f64),
        /// Shadow operands rounded to `f64`.
        shadow: (f64, f64),
        /// The primal decision (the trace the fused pass keeps following).
        taken: bool,
        /// The decision the shadow operands would have produced.
        would_take: bool,
    },
    /// A float→int truncation (`F2I`) produced a different integer, so
    /// any trip count, index or predicate derived from it differs.
    F2I {
        /// Primal float input.
        primal: f64,
        /// Shadow float input rounded to `f64`.
        shadow: f64,
        /// The integer the primal produced (and execution used).
        primal_int: i64,
        /// The integer the shadow would have produced.
        shadow_int: i64,
    },
}

/// One observed primal-vs-shadow control-flow split: the shadow values
/// would have decided a comparison (or float→int truncation) differently
/// than the primal values did. The primal trace still wins — divergence
/// is *reported*, never followed — but from this point on the shadow is
/// measuring along a trace the high-precision program would not have
/// taken, so the run's error measurement is untrustworthy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DivergencePoint {
    /// Instruction index of the diverging comparison/conversion.
    pub pc: usize,
    /// How many instructions the primal had executed when the split was
    /// observed (1-based) — orders splits within a run and identifies the
    /// iteration of a loop-carried compare.
    pub at_instr: u64,
    /// The disagreeing decision.
    pub kind: DivergenceKind,
}

/// The result of one fused shadow call.
#[derive(Clone, Debug)]
pub struct ShadowOutcome {
    /// Primal return value (bit-identical to a plain [`crate::vm::run`]).
    pub ret: Option<Value>,
    /// Shadow return value rounded to `f64`, when the function returns a
    /// float.
    pub shadow_ret: Option<f64>,
    /// `|shadow − primal|` of the return value, differenced in shadow
    /// precision (exact even when the gap is below one `f64` ulp of the
    /// result — the DD self-error case).
    pub ret_error: Option<f64>,
    /// The argument vector, exactly as [`crate::vm::CallOutcome::args`].
    pub args: Vec<ArgValue>,
    /// Primal execution statistics.
    pub stats: ExecStats,
    /// Per-instruction local-error samples, parallel to the instruction
    /// stream (index = `pc`).
    pub samples: Vec<PcSample>,
    /// Per-variable charged error, in the function's variable order
    /// (floats and float arrays; see the module docs for the commit
    /// semantics). Entry rounding of demoted parameters is charged here
    /// too.
    pub var_error: Vec<(String, f64)>,
    /// Sum of all `|local error|` samples, including parameter entry
    /// rounding and the return-value rounding. Zero iff the primal
    /// executed no narrowing rounding (relative to the shadow precision).
    pub acc_error: f64,
    /// Local-error samples that were NaN/∞ and therefore not accumulated
    /// (a non-finite primal or shadow value was involved).
    pub nonfinite_samples: u64,
    /// Total number of primal-vs-shadow control-flow splits observed
    /// (float comparisons and `F2I` truncations that decided differently
    /// on shadow values). Zero means every branch decision of the run was
    /// precision-stable and the one-pass measurement is trustworthy.
    pub divergence_count: u64,
    /// The first [`MAX_DIVERGENCE_POINTS`] splits in execution order,
    /// with operands and taken-vs-would-take decisions.
    pub divergence: Vec<DivergencePoint>,
    /// Per-variable divergence attribution, in the same variable order as
    /// [`ShadowOutcome::var_error`]: how many splits read this named
    /// variable as a comparison/truncation operand (splits on unnamed
    /// temporaries count toward the total only).
    pub var_divergence: Vec<(String, u64)>,
    /// Per-pc execution profile, present iff
    /// [`ExecOptions::profile`](crate::vm::ExecOptions::profile) was set.
    /// Indexed like [`ShadowOutcome::samples`], so `pc_counts[pc]` and
    /// `samples[pc]` together give execution frequency × local error per
    /// instruction.
    pub profile: Option<crate::vm::ExecProfile>,
}

impl ShadowOutcome {
    /// Primal float return; panics if the function did not return one.
    pub fn ret_f(&self) -> f64 {
        self.ret.expect("function returned no value").as_f()
    }

    /// Shadow float return; panics if the function did not return one.
    pub fn shadow_f(&self) -> f64 {
        self.shadow_ret.expect("function returned no float")
    }

    /// The measured ground-truth output error `|shadow − primal|`,
    /// differenced in shadow precision; panics if the function did not
    /// return a float.
    pub fn output_error(&self) -> f64 {
        self.ret_error.expect("function returned no float")
    }

    /// `true` when at least one control-flow split was observed — the
    /// measurement ran along a trace the shadow program would not have
    /// taken and should be treated as untrusted.
    pub fn diverged(&self) -> bool {
        self.divergence_count > 0
    }
}

/// A reusable fused primal+shadow activation: wraps a [`Machine`] (whose
/// register files, array slots and tape serve the primal stream
/// unchanged) and keeps the shadow register file, shadow arrays, shadow
/// tape and the attribution state alongside. Reusable across calls like
/// `Machine` — buffers keep their capacity.
pub struct ShadowMachine<S: ShadowNum> {
    m: Machine,
    /// Shadow float registers, parallel to `m.f`.
    sf: Vec<S>,
    /// Pending (not yet committed) absolute local error per float register.
    pend: Vec<f64>,
    /// Shadow float arrays, parallel to `m.a` (empty for int arrays).
    sa: Vec<Vec<S>>,
    /// Shadow mirror of the float entries of the tape.
    stape: Vec<S>,
    /// Float-register → 1 + index into `var_names` (0 = temporary).
    fvar_of: Vec<u32>,
    /// Array-register → 1 + index into `var_names` (0 = unnamed).
    avar_of: Vec<u32>,
    var_names: Vec<String>,
    var_err: Vec<f64>,
    samples: Vec<PcSample>,
    /// Per-variable divergence counters, parallel to `var_err`.
    var_div: Vec<u64>,
    /// Detailed splits (capped at [`MAX_DIVERGENCE_POINTS`]).
    divs: Vec<DivergencePoint>,
    /// Total splits observed (uncapped).
    div_count: u64,
}

impl<S: ShadowNum> Default for ShadowMachine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: ShadowNum> ShadowMachine<S> {
    /// An empty shadow machine; buffers grow on first use and persist.
    pub fn new() -> Self {
        ShadowMachine {
            m: Machine::new(),
            sf: Vec::new(),
            pend: Vec::new(),
            sa: Vec::new(),
            stape: Vec::new(),
            fvar_of: Vec::new(),
            avar_of: Vec::new(),
            var_names: Vec::new(),
            var_err: Vec::new(),
            samples: Vec::new(),
            var_div: Vec::new(),
            divs: Vec::new(),
            div_count: 0,
        }
    }

    fn reset(&mut self, func: &CompiledFunction, opts: &ExecOptions) {
        self.m.reset(func, opts);
        let nf = func.n_fregs as usize;
        self.sf.clear();
        self.sf.resize(nf, S::from_f64(0.0));
        self.pend.clear();
        self.pend.resize(nf, 0.0);
        self.sa.truncate(func.n_aregs as usize);
        for arr in &mut self.sa {
            arr.clear();
        }
        while self.sa.len() < func.n_aregs as usize {
            self.sa.push(Vec::new());
        }
        self.stape.clear();
        self.samples.clear();
        self.samples.resize(func.instrs.len(), PcSample::default());
        // Attribution tables.
        self.var_names.clear();
        self.fvar_of.clear();
        self.fvar_of.resize(nf, 0);
        self.avar_of.clear();
        self.avar_of.resize(func.n_aregs as usize, 0);
        for &(reg, ref name) in &func.fvar_names {
            self.var_names.push(name.clone());
            if let Some(slot) = self.fvar_of.get_mut(reg as usize) {
                *slot = self.var_names.len() as u32;
            }
        }
        for &(reg, ref name) in &func.avar_names {
            self.var_names.push(name.clone());
            if let Some(slot) = self.avar_of.get_mut(reg as usize) {
                *slot = self.var_names.len() as u32;
            }
        }
        self.var_err.clear();
        self.var_err.resize(self.var_names.len(), 0.0);
        self.var_div.clear();
        self.var_div.resize(self.var_names.len(), 0);
        self.divs.clear();
        self.div_count = 0;
    }

    /// Runs `func` on `args` under `opts`, producing the fused outcome.
    /// Validates the bytecode per call, exactly like
    /// [`Machine::run_reused`].
    pub fn run_reused(
        &mut self,
        func: &CompiledFunction,
        args: Vec<ArgValue>,
        opts: &ExecOptions,
    ) -> Result<ShadowOutcome, Trap> {
        if let Err(msg) = validate_function(func) {
            return Err(Trap {
                kind: TrapKind::InvalidBytecode(msg),
                pc: 0,
                span: Span::DUMMY,
            });
        }
        self.run_prevalidated(func, args, opts)
    }

    fn run_prevalidated(
        &mut self,
        func: &CompiledFunction,
        args: Vec<ArgValue>,
        opts: &ExecOptions,
    ) -> Result<ShadowOutcome, Trap> {
        // Fault injection draws exactly like the plain VM's
        // `run_prevalidated`, so a plan schedules faults uniformly across
        // plain and shadow trials.
        let (fault_opts, inject_nan) = crate::vm::drawn_fault(func, opts);
        let opts = fault_opts.as_ref().unwrap_or(opts);
        self.reset(func, opts);
        // Snapshot the unrounded originals of demoted float parameters:
        // `Machine::bind_args` rounds them in place, and the shadow binds
        // the value *before* that representation rounding.
        let mut scalar_orig: Vec<Option<f64>> = Vec::with_capacity(func.params.len());
        let mut array_orig: Vec<Option<Vec<f64>>> = Vec::with_capacity(func.params.len());
        for (spec, arg) in func.params.iter().zip(&args) {
            let (mut s, mut a) = (None, None);
            match (spec.kind, arg) {
                (ParamKind::F(_), ArgValue::F(v)) => s = Some(*v),
                (ParamKind::F(_), ArgValue::I(v)) => s = Some(*v as f64),
                (ParamKind::FArr(prec), ArgValue::FArr(v))
                    if prec != chef_ir::types::FloatTy::F64 =>
                {
                    a = Some(v.clone())
                }
                _ => {}
            }
            scalar_orig.push(s);
            array_orig.push(a);
        }
        self.m.bind_args(func, args)?;
        if inject_nan {
            // Primal side only: the shadow keeps the caller's finite
            // value, so the measurement itself goes non-finite — the
            // silent-NaN hazard the fault layer exists to surface.
            crate::vm::inject_nan_param(func, &mut self.m.f);
        }
        if opts.trap_on_nonfinite {
            crate::vm::check_params_finite(func, &self.m.f, &self.m.a)?;
        }

        // Bind the shadow parameters and charge entry rounding.
        let mut acc = 0.0f64;
        let mut nonfinite = 0u64;
        for (k, spec) in func.params.iter().enumerate() {
            match spec.kind {
                ParamKind::F(_) => {
                    let orig = scalar_orig[k].unwrap_or(0.0);
                    let prim = self.m.f[spec.reg as usize];
                    self.sf[spec.reg as usize] = S::from_f64(orig);
                    charge_entry(
                        (orig - prim).abs(),
                        self.fvar_of[spec.reg as usize],
                        &mut self.var_err,
                        &mut acc,
                        &mut nonfinite,
                    );
                }
                ParamKind::FArr(_) => {
                    let slot = &self.m.a[spec.reg as usize];
                    let prim: &[f64] = match slot {
                        ArraySlot::F(v) => v,
                        _ => &[],
                    };
                    let shadow = &mut self.sa[spec.reg as usize];
                    shadow.clear();
                    match &array_orig[k] {
                        Some(orig) => {
                            let var = self.avar_of[spec.reg as usize];
                            for (o, p) in orig.iter().zip(prim) {
                                shadow.push(S::from_f64(*o));
                                charge_entry(
                                    (o - p).abs(),
                                    var,
                                    &mut self.var_err,
                                    &mut acc,
                                    &mut nonfinite,
                                );
                            }
                        }
                        None => shadow.extend(prim.iter().map(|&p| S::from_f64(p))),
                    }
                }
                _ => {}
            }
        }

        // Packed dispatch when the packer produced words (the default);
        // enum dispatch otherwise — identical semantics either way, like
        // the plain VM. Profiling picks a separately monomorphized loop,
        // mirroring `Machine::run_prevalidated`.
        let ret = match (&func.packed, opts.profile) {
            (Some(p), false) => {
                self.exec_loop_packed::<false>(func, p, opts, &mut acc, &mut nonfinite)?
            }
            (Some(p), true) => {
                self.exec_loop_packed::<true>(func, p, opts, &mut acc, &mut nonfinite)?
            }
            (None, false) => self.exec_loop::<false>(func, opts, &mut acc, &mut nonfinite)?,
            (None, true) => self.exec_loop::<true>(func, opts, &mut acc, &mut nonfinite)?,
        };
        self.m.stats.tape_peak_bytes = self.m.tape.peak_bytes();
        self.m.stats.tape_total_pushes = self.m.tape.total_pushes();
        let args = self.m.unbind_args(func);
        let var_error = self
            .var_names
            .iter()
            .cloned()
            .zip(self.var_err.iter().copied())
            .collect();
        let var_divergence = self
            .var_names
            .iter()
            .cloned()
            .zip(self.var_div.iter().copied())
            .collect();
        if self.div_count > 0 {
            chef_telemetry::counter!("exec.shadow.divergences").add(self.div_count);
        }
        let profile = opts.profile.then(|| crate::vm::ExecProfile {
            pc_counts: std::mem::take(&mut self.m.prof),
        });
        Ok(ShadowOutcome {
            ret: ret.0,
            shadow_ret: ret.1,
            ret_error: ret.2,
            args,
            stats: self.m.stats,
            samples: std::mem::take(&mut self.samples),
            var_error,
            acc_error: acc,
            nonfinite_samples: nonfinite,
            divergence_count: self.div_count,
            divergence: std::mem::take(&mut self.divs),
            var_divergence,
            profile,
        })
    }

    /// The fused dispatch loop. Mirrors `vm::exec_loop` instruction by
    /// instruction on the primal side (same results, traps and budget
    /// checkpoints) and threads the shadow values, local-error samples
    /// and pending attribution alongside.
    #[allow(clippy::type_complexity)]
    fn exec_loop<const PROFILE: bool>(
        &mut self,
        func: &CompiledFunction,
        opts: &ExecOptions,
        acc: &mut f64,
        nonfinite: &mut u64,
    ) -> Result<(Option<Value>, Option<f64>, Option<f64>), Trap> {
        let ShadowMachine {
            m,
            sf,
            pend,
            sa,
            stape,
            fvar_of,
            avar_of,
            var_err,
            samples,
            var_div,
            divs,
            div_count,
            ..
        } = self;
        let Machine {
            f,
            i,
            a,
            tape,
            stats,
            prof,
        } = m;
        let f = &mut f[..];
        let i = &mut i[..];
        let instrs = &func.instrs[..];
        let approx = &opts.approx;
        let budget = opts.max_instrs.unwrap_or(u64::MAX);
        let check_div = opts.detect_divergence;
        let trap_nf = opts.trap_on_nonfinite;
        let deadline = opts.deadline;
        let mut deadline_at: u64 = if deadline.is_some() {
            crate::vm::DEADLINE_STRIDE
        } else {
            u64::MAX
        };
        let mut executed: u64 = 0;
        let mut pc: usize = 0;

        let trap = |kind: TrapKind, pc: usize| Trap {
            kind,
            pc,
            span: func.spans.get(pc).copied().unwrap_or(Span::DUMMY),
        };

        // Primal register access: validated once (`validate_function`),
        // like the plain VM. Shadow files share the same bounds, accessed
        // with the same indices.
        macro_rules! fr {
            ($r:expr) => {
                f[$r.0 as usize]
            };
        }
        macro_rules! ir {
            ($r:expr) => {
                i[$r.0 as usize]
            };
        }
        macro_rules! sr {
            ($r:expr) => {
                sf[$r.0 as usize]
            };
        }
        // Records one local-error sample at the current pc.
        macro_rules! sample {
            ($local:expr) => {{
                let l: f64 = $local;
                if l > 0.0 {
                    if l.is_finite() {
                        let s = &mut samples[pc];
                        s.sum += l;
                        if l > s.max {
                            s.max = l;
                        }
                        s.count += 1;
                        *acc += l;
                    } else {
                        *nonfinite += 1;
                    }
                } else if l.is_nan() {
                    *nonfinite += 1;
                }
            }};
        }
        // Writes primal+shadow to `dst` and commits the pending error:
        // charged to the destination's variable if it is named, carried
        // forward otherwise. The non-finite check watches the *primal*
        // value: a finite shadow next to a non-finite primal is exactly
        // the demotion-overflow signal `trap_on_nonfinite` exists for.
        macro_rules! put {
            ($dst:expr, $prim:expr, $shadow:expr, $pend:expr) => {{
                let d = $dst.0 as usize;
                let prim = $prim;
                if trap_nf && !prim.is_finite() {
                    return Err(crate::vm::nonfinite_trap(func, d, prim, pc));
                }
                f[d] = prim;
                sf[d] = $shadow;
                let mut p: f64 = $pend;
                let v = fvar_of[d];
                if v != 0 {
                    var_err[(v - 1) as usize] += p;
                    p = 0.0;
                }
                pend[d] = p;
            }};
        }
        // Divergence checks: re-evaluates a float comparison (or a
        // float→int truncation) on the shadow operands and records a
        // split when the decision differs from the primal one. The primal
        // trace is still the one followed.
        macro_rules! diverge_fcmp {
            ($op:expr, $x:expr, $y:expr, $taken:expr) => {{
                if check_div {
                    let (xi, yi) = ($x, $y);
                    let would = S::cmp($op, sf[xi], sf[yi]);
                    if would != $taken {
                        *div_count += 1;
                        let vx = fvar_of[xi];
                        if vx != 0 {
                            var_div[(vx - 1) as usize] += 1;
                        }
                        let vy = fvar_of[yi];
                        if vy != 0 && vy != vx {
                            var_div[(vy - 1) as usize] += 1;
                        }
                        if divs.len() < MAX_DIVERGENCE_POINTS {
                            divs.push(DivergencePoint {
                                pc,
                                at_instr: executed,
                                kind: DivergenceKind::FCmp {
                                    op: $op,
                                    primal: (f[xi], f[yi]),
                                    shadow: (sf[xi].to_f64(), sf[yi].to_f64()),
                                    taken: $taken,
                                    would_take: would,
                                },
                            });
                        }
                    }
                }
            }};
        }
        macro_rules! diverge_f2i {
            ($x:expr, $primal_int:expr) => {{
                if check_div {
                    let xi = $x;
                    let si = S::trunc_i64(sf[xi]);
                    if si != $primal_int {
                        *div_count += 1;
                        let vx = fvar_of[xi];
                        if vx != 0 {
                            var_div[(vx - 1) as usize] += 1;
                        }
                        if divs.len() < MAX_DIVERGENCE_POINTS {
                            divs.push(DivergencePoint {
                                pc,
                                at_instr: executed,
                                kind: DivergenceKind::F2I {
                                    primal: f[xi],
                                    shadow: sf[xi].to_f64(),
                                    primal_int: $primal_int,
                                    shadow_int: si,
                                },
                            });
                        }
                    }
                }
            }};
        }
        macro_rules! jump {
            ($target:expr) => {{
                let t = $target as usize;
                if t <= pc {
                    if executed > budget {
                        return Err(trap(TrapKind::InstrBudgetExhausted { executed }, pc));
                    }
                    if executed >= deadline_at
                        && crate::vm::deadline_probe(deadline, executed, &mut deadline_at)
                    {
                        return Err(trap(TrapKind::DeadlineExceeded { executed }, pc));
                    }
                }
                pc = t;
                continue;
            }};
        }

        let ret: (Option<Value>, Option<f64>, Option<f64>) = loop {
            let Some(ins) = instrs.get(pc) else {
                break (None, None, None);
            };
            executed += 1;
            if PROFILE {
                prof[pc] += 1;
            }
            match ins {
                Instr::FConst { dst, v } => put!(dst, *v, S::from_f64(*v), 0.0),
                Instr::FMov { dst, src } => {
                    put!(dst, fr!(src), sr!(src), pend[src.0 as usize])
                }
                Instr::FAdd { dst, a: x, b: y } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = pa + pb;
                    let local = S::sub(S::add(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::add(sr!(x), sr!(y)), p);
                }
                Instr::FSub { dst, a: x, b: y } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = pa - pb;
                    let local = S::sub(S::sub(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::sub(sr!(x), sr!(y)), p);
                }
                Instr::FMul { dst, a: x, b: y } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = pa * pb;
                    let local = S::sub(S::mul(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::mul(sr!(x), sr!(y)), p);
                }
                Instr::FDiv { dst, a: x, b: y } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = pa / pb;
                    let local = S::sub(S::div(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::div(sr!(x), sr!(y)), p);
                }
                Instr::FNeg { dst, src } => {
                    put!(dst, -fr!(src), S::neg(sr!(src)), pend[src.0 as usize])
                }
                Instr::FRound { dst, src, ty } => {
                    let v = fr!(src);
                    let prim = round_to(v, *ty);
                    let local = (v - prim).abs();
                    sample!(local);
                    put!(dst, prim, sr!(src), pend[src.0 as usize] + local);
                }
                Instr::FIntr1 { dst, intr, a: x } => {
                    let pa = fr!(x);
                    let prim = eval1(*intr, pa, approx);
                    let local = S::sub(S::intr1(*intr, S::from_f64(pa), approx), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        dst,
                        prim,
                        S::intr1(*intr, sr!(x), approx),
                        pend[x.0 as usize] + local
                    );
                }
                Instr::FIntr2 {
                    dst,
                    intr,
                    a: x,
                    b: y,
                } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = eval2(*intr, pa, pb, approx);
                    let local = S::sub(
                        S::intr2(*intr, S::from_f64(pa), S::from_f64(pb), approx),
                        S::from_f64(prim),
                    )
                    .to_f64()
                    .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::intr2(*intr, sr!(x), sr!(y), approx), p);
                }
                Instr::FCmp {
                    dst,
                    op,
                    a: x,
                    b: y,
                } => {
                    let taken = fcmp(*op, fr!(x), fr!(y));
                    i[dst.0 as usize] = taken as i64;
                    diverge_fcmp!(*op, x.0 as usize, y.0 as usize, taken);
                }
                Instr::FLoad { dst, arr, idx } => {
                    let index = ir!(idx);
                    let prim = match &a[arr.0 as usize] {
                        ArraySlot::F(v) => match v.get(index as usize) {
                            Some(&x) if index >= 0 => x,
                            _ => {
                                let len = v.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    };
                    let sh = sa[arr.0 as usize]
                        .get(index as usize)
                        .copied()
                        .unwrap_or(S::from_f64(prim));
                    put!(dst, prim, sh, 0.0);
                }
                Instr::FStore { arr, idx, src } => {
                    let index = ir!(idx);
                    let v = fr!(src);
                    match &mut a[arr.0 as usize] {
                        ArraySlot::F(vec) => match vec.get_mut(index as usize) {
                            Some(slot) if index >= 0 => *slot = v,
                            _ => {
                                let len = vec.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    }
                    if let Some(slot) = sa[arr.0 as usize].get_mut(index as usize) {
                        *slot = sr!(src);
                    }
                    let var = avar_of[arr.0 as usize];
                    if var != 0 {
                        var_err[(var - 1) as usize] += pend[src.0 as usize];
                    }
                    pend[src.0 as usize] = 0.0;
                }
                Instr::F2I { dst, src } => {
                    let trunc = fr!(src) as i64;
                    i[dst.0 as usize] = trunc;
                    diverge_f2i!(src.0 as usize, trunc);
                }
                Instr::I2F { dst, src } => {
                    let v = ir!(src) as f64;
                    put!(dst, v, S::from_f64(v), 0.0);
                }

                Instr::IConst { dst, v } => i[dst.0 as usize] = *v,
                Instr::IMov { dst, src } => i[dst.0 as usize] = ir!(src),
                Instr::IAdd { dst, a: x, b: y } => i[dst.0 as usize] = ir!(x).wrapping_add(ir!(y)),
                Instr::ISub { dst, a: x, b: y } => i[dst.0 as usize] = ir!(x).wrapping_sub(ir!(y)),
                Instr::IMul { dst, a: x, b: y } => i[dst.0 as usize] = ir!(x).wrapping_mul(ir!(y)),
                Instr::IDiv { dst, a: x, b: y } => {
                    let d = ir!(y);
                    if d == 0 {
                        return Err(trap(TrapKind::DivByZero, pc));
                    }
                    i[dst.0 as usize] = ir!(x).wrapping_div(d);
                }
                Instr::IRem { dst, a: x, b: y } => {
                    let d = ir!(y);
                    if d == 0 {
                        return Err(trap(TrapKind::DivByZero, pc));
                    }
                    i[dst.0 as usize] = ir!(x).wrapping_rem(d);
                }
                Instr::INeg { dst, src } => i[dst.0 as usize] = ir!(src).wrapping_neg(),
                Instr::ICmp {
                    dst,
                    op,
                    a: x,
                    b: y,
                } => i[dst.0 as usize] = icmp(*op, ir!(x), ir!(y)) as i64,
                Instr::ILoad { dst, arr, idx } => {
                    let index = ir!(idx);
                    match &a[arr.0 as usize] {
                        ArraySlot::I(v) => match v.get(index as usize) {
                            Some(&x) if index >= 0 => i[dst.0 as usize] = x,
                            _ => {
                                let len = v.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    }
                }
                Instr::IStore { arr, idx, src } => {
                    let index = ir!(idx);
                    let v = ir!(src);
                    match &mut a[arr.0 as usize] {
                        ArraySlot::I(vec) => match vec.get_mut(index as usize) {
                            Some(slot) if index >= 0 => *slot = v,
                            _ => {
                                let len = vec.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    }
                }
                Instr::BNot { dst, src } => i[dst.0 as usize] = (ir!(src) == 0) as i64,

                Instr::Jmp { target } => jump!(*target),
                Instr::JmpIfFalse { cond, target } => {
                    if ir!(cond) == 0 {
                        jump!(*target);
                    }
                }
                Instr::JmpIfTrue { cond, target } => {
                    if ir!(cond) != 0 {
                        jump!(*target);
                    }
                }

                Instr::TPushF { src } => {
                    if let Err(e) = tape.push_f(fr!(src)) {
                        return Err(trap(TrapKind::Tape(e), pc));
                    }
                    stape.push(sr!(src));
                }
                Instr::TPopF { dst } => match tape.pop_f() {
                    Ok(v) => {
                        let sh = stape.pop().unwrap_or(S::from_f64(v));
                        put!(dst, v, sh, 0.0);
                    }
                    Err(e) => return Err(trap(TrapKind::Tape(e), pc)),
                },
                Instr::TPushI { src } => {
                    if let Err(e) = tape.push_i(ir!(src)) {
                        return Err(trap(TrapKind::Tape(e), pc));
                    }
                }
                Instr::TPopI { dst } => match tape.pop_i() {
                    Ok(v) => i[dst.0 as usize] = v,
                    Err(e) => return Err(trap(TrapKind::Tape(e), pc)),
                },

                Instr::AllocF { arr, len } => {
                    let n = ir!(len);
                    if n < 0 {
                        return Err(trap(TrapKind::NegativeArrayLen(n), pc));
                    }
                    stats.local_array_bytes += n as usize * 8;
                    let slot = &mut a[arr.0 as usize];
                    match slot {
                        ArraySlot::F(v) | ArraySlot::StaleF(v) => {
                            v.clear();
                            v.resize(n as usize, 0.0);
                            let buf = std::mem::take(v);
                            *slot = ArraySlot::F(buf);
                        }
                        other => *other = ArraySlot::F(vec![0.0; n as usize]),
                    }
                    let shadow = &mut sa[arr.0 as usize];
                    shadow.clear();
                    shadow.resize(n as usize, S::from_f64(0.0));
                }
                Instr::AllocI { arr, len } => {
                    let n = ir!(len);
                    if n < 0 {
                        return Err(trap(TrapKind::NegativeArrayLen(n), pc));
                    }
                    stats.local_array_bytes += n as usize * 8;
                    let slot = &mut a[arr.0 as usize];
                    match slot {
                        ArraySlot::I(v) | ArraySlot::StaleI(v) => {
                            v.clear();
                            v.resize(n as usize, 0);
                            let buf = std::mem::take(v);
                            *slot = ArraySlot::I(buf);
                        }
                        other => *other = ArraySlot::I(vec![0; n as usize]),
                    }
                    sa[arr.0 as usize].clear();
                }

                // ---- fused superinstructions ----
                Instr::FMulAdd { dst, a: x, b: y, c } => {
                    let (pa, pb, pcv) = (fr!(x), fr!(y), fr!(c));
                    let prim = pa * pb + pcv;
                    let local = S::sub(
                        S::add(S::mul(S::from_f64(pa), S::from_f64(pb)), S::from_f64(pcv)),
                        S::from_f64(prim),
                    )
                    .to_f64()
                    .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + pend[c.0 as usize] + local;
                    put!(dst, prim, S::add(S::mul(sr!(x), sr!(y)), sr!(c)), p);
                }
                Instr::FAddRound {
                    dst,
                    a: x,
                    b: y,
                    ty,
                } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = round_to(pa + pb, *ty);
                    let local = S::sub(S::add(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::add(sr!(x), sr!(y)), p);
                }
                Instr::FSubRound {
                    dst,
                    a: x,
                    b: y,
                    ty,
                } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = round_to(pa - pb, *ty);
                    let local = S::sub(S::sub(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::sub(sr!(x), sr!(y)), p);
                }
                Instr::FMulRound {
                    dst,
                    a: x,
                    b: y,
                    ty,
                } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = round_to(pa * pb, *ty);
                    let local = S::sub(S::mul(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::mul(sr!(x), sr!(y)), p);
                }
                Instr::FDivRound {
                    dst,
                    a: x,
                    b: y,
                    ty,
                } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = round_to(pa / pb, *ty);
                    let local = S::sub(S::div(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::div(sr!(x), sr!(y)), p);
                }
                Instr::FIntr1Round {
                    dst,
                    intr,
                    a: x,
                    ty,
                } => {
                    let pa = fr!(x);
                    let prim = round_to(eval1(*intr, pa, approx), *ty);
                    let local = S::sub(S::intr1(*intr, S::from_f64(pa), approx), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        dst,
                        prim,
                        S::intr1(*intr, sr!(x), approx),
                        pend[x.0 as usize] + local
                    );
                }
                Instr::FIntr2Round {
                    dst,
                    intr,
                    a: x,
                    b: y,
                    ty,
                } => {
                    let (pa, pb) = (fr!(x), fr!(y));
                    let prim = round_to(eval2(*intr, pa, pb, approx), *ty);
                    let local = S::sub(
                        S::intr2(*intr, S::from_f64(pa), S::from_f64(pb), approx),
                        S::from_f64(prim),
                    )
                    .to_f64()
                    .abs();
                    sample!(local);
                    let p = pend[x.0 as usize] + pend[y.0 as usize] + local;
                    put!(dst, prim, S::intr2(*intr, sr!(x), sr!(y), approx), p);
                }
                Instr::FAddC { dst, a: x, k } => {
                    let pa = fr!(x);
                    let prim = pa + *k;
                    let local = S::sub(S::add(S::from_f64(pa), S::from_f64(*k)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        dst,
                        prim,
                        S::add(sr!(x), S::from_f64(*k)),
                        pend[x.0 as usize] + local
                    );
                }
                Instr::FSubC { dst, a: x, k } => {
                    let pa = fr!(x);
                    let prim = pa - *k;
                    let local = S::sub(S::sub(S::from_f64(pa), S::from_f64(*k)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        dst,
                        prim,
                        S::sub(sr!(x), S::from_f64(*k)),
                        pend[x.0 as usize] + local
                    );
                }
                Instr::FSubCR { dst, k, a: x } => {
                    let pa = fr!(x);
                    let prim = *k - pa;
                    let local = S::sub(S::sub(S::from_f64(*k), S::from_f64(pa)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        dst,
                        prim,
                        S::sub(S::from_f64(*k), sr!(x)),
                        pend[x.0 as usize] + local
                    );
                }
                Instr::FMulC { dst, a: x, k } => {
                    let pa = fr!(x);
                    let prim = pa * *k;
                    let local = S::sub(S::mul(S::from_f64(pa), S::from_f64(*k)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        dst,
                        prim,
                        S::mul(sr!(x), S::from_f64(*k)),
                        pend[x.0 as usize] + local
                    );
                }
                Instr::FDivC { dst, a: x, k } => {
                    let pa = fr!(x);
                    let prim = pa / *k;
                    let local = S::sub(S::div(S::from_f64(pa), S::from_f64(*k)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        dst,
                        prim,
                        S::div(sr!(x), S::from_f64(*k)),
                        pend[x.0 as usize] + local
                    );
                }
                Instr::FDivCR { dst, k, a: x } => {
                    let pa = fr!(x);
                    let prim = *k / pa;
                    let local = S::sub(S::div(S::from_f64(*k), S::from_f64(pa)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        dst,
                        prim,
                        S::div(S::from_f64(*k), sr!(x)),
                        pend[x.0 as usize] + local
                    );
                }
                Instr::ICmpImmJmpFalse {
                    op,
                    a: x,
                    imm,
                    target,
                } => {
                    if !icmp(*op, ir!(x), *imm) {
                        jump!(*target);
                    }
                }
                Instr::ICmpImmJmpTrue {
                    op,
                    a: x,
                    imm,
                    target,
                } => {
                    if icmp(*op, ir!(x), *imm) {
                        jump!(*target);
                    }
                }
                Instr::FLoadOff {
                    dst,
                    arr,
                    base,
                    off,
                } => {
                    let index = ir!(base).wrapping_add(*off as i64);
                    let prim = match &a[arr.0 as usize] {
                        ArraySlot::F(v) => match v.get(index as usize) {
                            Some(&x) if index >= 0 => x,
                            _ => {
                                let len = v.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    };
                    let sh = sa[arr.0 as usize]
                        .get(index as usize)
                        .copied()
                        .unwrap_or(S::from_f64(prim));
                    put!(dst, prim, sh, 0.0);
                }
                Instr::FStoreOff {
                    arr,
                    base,
                    off,
                    src,
                } => {
                    let index = ir!(base).wrapping_add(*off as i64);
                    let v = fr!(src);
                    match &mut a[arr.0 as usize] {
                        ArraySlot::F(vec) => match vec.get_mut(index as usize) {
                            Some(slot) if index >= 0 => *slot = v,
                            _ => {
                                let len = vec.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    }
                    if let Some(slot) = sa[arr.0 as usize].get_mut(index as usize) {
                        *slot = sr!(src);
                    }
                    let var = avar_of[arr.0 as usize];
                    if var != 0 {
                        var_err[(var - 1) as usize] += pend[src.0 as usize];
                    }
                    pend[src.0 as usize] = 0.0;
                }
                Instr::IAddImm { dst, a: x, imm } => i[dst.0 as usize] = ir!(x).wrapping_add(*imm),
                Instr::FCmpJmpFalse {
                    op,
                    a: x,
                    b: y,
                    target,
                } => {
                    let taken = fcmp(*op, fr!(x), fr!(y));
                    diverge_fcmp!(*op, x.0 as usize, y.0 as usize, taken);
                    if !taken {
                        jump!(*target);
                    }
                }
                Instr::FCmpJmpTrue {
                    op,
                    a: x,
                    b: y,
                    target,
                } => {
                    let taken = fcmp(*op, fr!(x), fr!(y));
                    diverge_fcmp!(*op, x.0 as usize, y.0 as usize, taken);
                    if taken {
                        jump!(*target);
                    }
                }
                Instr::ICmpJmpFalse {
                    op,
                    a: x,
                    b: y,
                    target,
                } => {
                    if !icmp(*op, ir!(x), ir!(y)) {
                        jump!(*target);
                    }
                }
                Instr::ICmpJmpTrue {
                    op,
                    a: x,
                    b: y,
                    target,
                } => {
                    if icmp(*op, ir!(x), ir!(y)) {
                        jump!(*target);
                    }
                }

                Instr::RetF { src } => {
                    let v = fr!(src);
                    let rounded = match func.ret {
                        RetKind::F(ft) => round_to(v, ft),
                        _ => v,
                    };
                    if trap_nf && !rounded.is_finite() {
                        return Err(crate::vm::nonfinite_trap(func, src.0 as usize, rounded, pc));
                    }
                    sample!((v - rounded).abs());
                    // The ground-truth output error is differenced in
                    // shadow precision *before* rounding the shadow back
                    // to f64, so DD mode reports sub-ulp self-error
                    // instead of quantizing it away.
                    let oerr = S::sub(sr!(src), S::from_f64(rounded)).to_f64().abs();
                    break (Some(Value::F(rounded)), Some(sr!(src).to_f64()), Some(oerr));
                }
                Instr::RetI { src } => break (Some(Value::I(ir!(src))), None, None),
                Instr::RetB { src } => break (Some(Value::B(ir!(src) != 0)), None, None),
                Instr::RetVoid => break (None, None, None),
                Instr::TrapMissingReturn => return Err(trap(TrapKind::MissingReturn, pc)),
            }
            pc += 1;
        };
        stats.instrs_executed = executed;
        if executed > budget {
            return Err(trap(
                TrapKind::InstrBudgetExhausted { executed },
                pc.min(instrs.len().saturating_sub(1)),
            ));
        }
        Ok(ret)
    }

    /// The packed-word fused dispatch loop: mirrors
    /// [`ShadowMachine::exec_loop`] opcode by opcode — identical primal
    /// results, traps, samples, attribution and budget checkpoints — but
    /// fetches 8-byte words and reads hoisted constants from the pools,
    /// exactly like [`crate::vm`]'s packed loop. Register accesses stay
    /// bounds-checked by slice indexing (the shadow arithmetic dominates
    /// this loop's cost).
    #[allow(clippy::type_complexity)]
    #[allow(unused_unsafe)] // `fld!` is an unsafe load and composes with other unsafe spots
    fn exec_loop_packed<const PROFILE: bool>(
        &mut self,
        func: &CompiledFunction,
        packed: &crate::pack::PackedCode,
        opts: &ExecOptions,
        acc: &mut f64,
        nonfinite: &mut u64,
    ) -> Result<(Option<Value>, Option<f64>, Option<f64>), Trap> {
        use crate::pack::{
            cmp_from, op, ty_from, w_a, w_b, w_b_i16, w_c, w_c_i16, w_d, w_d_i8, w_op, INTRINSICS,
        };
        let ShadowMachine {
            m,
            sf,
            pend,
            sa,
            stape,
            fvar_of,
            avar_of,
            var_err,
            samples,
            var_div,
            divs,
            div_count,
            ..
        } = self;
        let Machine {
            f,
            i,
            a,
            tape,
            stats,
            prof,
        } = m;
        let f = &mut f[..];
        let i = &mut i[..];
        let words = &packed.words[..];
        let pool = &packed.pool[..];
        let len = words.len();
        let approx = &opts.approx;
        let budget = opts.max_instrs.unwrap_or(u64::MAX);
        let check_div = opts.detect_divergence;
        let trap_nf = opts.trap_on_nonfinite;
        let deadline = opts.deadline;
        let mut deadline_at: u64 = if deadline.is_some() {
            crate::vm::DEADLINE_STRIDE
        } else {
            u64::MAX
        };
        let mut executed: u64 = 0;
        let mut pc: usize = 0;

        let trap = |kind: TrapKind, pc: usize| Trap {
            kind,
            pc,
            span: func.spans.get(pc).copied().unwrap_or(Span::DUMMY),
        };

        macro_rules! sample {
            ($local:expr) => {{
                let l: f64 = $local;
                if l > 0.0 {
                    if l.is_finite() {
                        let s = &mut samples[pc];
                        s.sum += l;
                        if l > s.max {
                            s.max = l;
                        }
                        s.count += 1;
                        *acc += l;
                    } else {
                        *nonfinite += 1;
                    }
                } else if l.is_nan() {
                    *nonfinite += 1;
                }
            }};
        }
        // Writes primal+shadow to register index `$dst` and commits the
        // pending error, exactly like the enum loop's `put!`.
        macro_rules! put {
            ($dst:expr, $prim:expr, $shadow:expr, $pend:expr) => {{
                let d: usize = $dst;
                let prim = $prim;
                if trap_nf && !prim.is_finite() {
                    return Err(crate::vm::nonfinite_trap(func, d, prim, pc));
                }
                f[d] = prim;
                sf[d] = $shadow;
                let mut p: f64 = $pend;
                let v = fvar_of[d];
                if v != 0 {
                    var_err[(v - 1) as usize] += p;
                    p = 0.0;
                }
                pend[d] = p;
            }};
        }
        macro_rules! jump {
            ($target:expr) => {{
                let t = $target;
                if t <= pc {
                    if executed > budget {
                        return Err(trap(TrapKind::InstrBudgetExhausted { executed }, pc));
                    }
                    if executed >= deadline_at
                        && crate::vm::deadline_probe(deadline, executed, &mut deadline_at)
                    {
                        return Err(trap(TrapKind::DeadlineExceeded { executed }, pc));
                    }
                }
                pc = t;
                continue;
            }};
        }
        // Divergence checks — identical semantics to the enum loop's
        // `diverge_fcmp!`/`diverge_f2i!` (register operands are already
        // usize indices here).
        macro_rules! diverge_fcmp {
            ($op:expr, $x:expr, $y:expr, $taken:expr) => {{
                if check_div {
                    let (xi, yi) = ($x, $y);
                    let would = S::cmp($op, sf[xi], sf[yi]);
                    if would != $taken {
                        *div_count += 1;
                        let vx = fvar_of[xi];
                        if vx != 0 {
                            var_div[(vx - 1) as usize] += 1;
                        }
                        let vy = fvar_of[yi];
                        if vy != 0 && vy != vx {
                            var_div[(vy - 1) as usize] += 1;
                        }
                        if divs.len() < MAX_DIVERGENCE_POINTS {
                            divs.push(DivergencePoint {
                                pc,
                                at_instr: executed,
                                kind: DivergenceKind::FCmp {
                                    op: $op,
                                    primal: (f[xi], f[yi]),
                                    shadow: (sf[xi].to_f64(), sf[yi].to_f64()),
                                    taken: $taken,
                                    would_take: would,
                                },
                            });
                        }
                    }
                }
            }};
        }
        macro_rules! diverge_f2i {
            ($x:expr, $primal_int:expr) => {{
                if check_div {
                    let xi = $x;
                    let si = S::trunc_i64(sf[xi]);
                    if si != $primal_int {
                        *div_count += 1;
                        let vx = fvar_of[xi];
                        if vx != 0 {
                            var_div[(vx - 1) as usize] += 1;
                        }
                        if divs.len() < MAX_DIVERGENCE_POINTS {
                            divs.push(DivergencePoint {
                                pc,
                                at_instr: executed,
                                kind: DivergenceKind::F2I {
                                    primal: f[xi],
                                    shadow: sf[xi].to_f64(),
                                    primal_int: $primal_int,
                                    shadow_int: si,
                                },
                            });
                        }
                    }
                }
            }};
        }
        // Operand-field macros: direct narrow loads from the word stream,
        // addressed by `pc` alone. SAFETY: the loop head checks `pc < len`.
        macro_rules! fld {
            ($f:ident) => {
                unsafe { $f(words, pc) }
            };
        }

        let ret: (Option<Value>, Option<f64>, Option<f64>) = loop {
            if pc >= len {
                break (None, None, None);
            }
            executed += 1;
            if PROFILE {
                prof[pc] += 1;
            }
            match fld!(w_op) {
                op::FCONST => {
                    let v = f64::from_bits(pool[fld!(w_b)]);
                    put!(fld!(w_a), v, S::from_f64(v), 0.0);
                }
                op::FMOV => {
                    let s = fld!(w_b);
                    put!(fld!(w_a), f[s], sf[s], pend[s]);
                }
                op::FADD => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let (pa, pb) = (f[x], f[y]);
                    let prim = pa + pb;
                    let local = S::sub(S::add(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::add(sf[x], sf[y]), p);
                }
                op::FSUB => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let (pa, pb) = (f[x], f[y]);
                    let prim = pa - pb;
                    let local = S::sub(S::sub(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::sub(sf[x], sf[y]), p);
                }
                op::FMUL => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let (pa, pb) = (f[x], f[y]);
                    let prim = pa * pb;
                    let local = S::sub(S::mul(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::mul(sf[x], sf[y]), p);
                }
                op::FDIV => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let (pa, pb) = (f[x], f[y]);
                    let prim = pa / pb;
                    let local = S::sub(S::div(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::div(sf[x], sf[y]), p);
                }
                op::FNEG => {
                    let s = fld!(w_b);
                    put!(fld!(w_a), -f[s], S::neg(sf[s]), pend[s]);
                }
                op::FROUND => {
                    let s = fld!(w_b);
                    let v = f[s];
                    let prim = round_to(v, ty_from(fld!(w_d) as u8));
                    let local = (v - prim).abs();
                    sample!(local);
                    put!(fld!(w_a), prim, sf[s], pend[s] + local);
                }
                op::FINTR1 => {
                    let x = fld!(w_b);
                    let intr = INTRINSICS[fld!(w_d)];
                    let pa = f[x];
                    let prim = eval1(intr, pa, approx);
                    let local = S::sub(S::intr1(intr, S::from_f64(pa), approx), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        fld!(w_a),
                        prim,
                        S::intr1(intr, sf[x], approx),
                        pend[x] + local
                    );
                }
                op::FINTR2 => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let intr = INTRINSICS[fld!(w_d)];
                    let (pa, pb) = (f[x], f[y]);
                    let prim = eval2(intr, pa, pb, approx);
                    let local = S::sub(
                        S::intr2(intr, S::from_f64(pa), S::from_f64(pb), approx),
                        S::from_f64(prim),
                    )
                    .to_f64()
                    .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::intr2(intr, sf[x], sf[y], approx), p);
                }
                op::FCMP => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let cmp = cmp_from(fld!(w_d) as u8);
                    let taken = fcmp(cmp, f[x], f[y]);
                    i[fld!(w_a)] = taken as i64;
                    diverge_fcmp!(cmp, x, y, taken);
                }
                op::FLOAD => {
                    let arr = fld!(w_b);
                    let index = i[fld!(w_c)];
                    let prim = match &a[arr] {
                        ArraySlot::F(v) => match v.get(index as usize) {
                            Some(&x) if index >= 0 => x,
                            _ => {
                                let len = v.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    };
                    let sh = sa[arr]
                        .get(index as usize)
                        .copied()
                        .unwrap_or(S::from_f64(prim));
                    put!(fld!(w_a), prim, sh, 0.0);
                }
                op::FSTORE => {
                    let arr = fld!(w_a);
                    let index = i[fld!(w_b)];
                    let src = fld!(w_c);
                    let v = f[src];
                    match &mut a[arr] {
                        ArraySlot::F(vec) => match vec.get_mut(index as usize) {
                            Some(slot) if index >= 0 => *slot = v,
                            _ => {
                                let len = vec.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    }
                    if let Some(slot) = sa[arr].get_mut(index as usize) {
                        *slot = sf[src];
                    }
                    let var = avar_of[arr];
                    if var != 0 {
                        var_err[(var - 1) as usize] += pend[src];
                    }
                    pend[src] = 0.0;
                }
                op::F2I => {
                    let x = fld!(w_b);
                    let trunc = f[x] as i64;
                    i[fld!(w_a)] = trunc;
                    diverge_f2i!(x, trunc);
                }
                op::I2F => {
                    let v = i[fld!(w_b)] as f64;
                    put!(fld!(w_a), v, S::from_f64(v), 0.0);
                }

                op::ICONST => i[fld!(w_a)] = fld!(w_b_i16),
                op::ICONSTP => i[fld!(w_a)] = pool[fld!(w_b)] as i64,
                op::IMOV => i[fld!(w_a)] = i[fld!(w_b)],
                op::IADD => i[fld!(w_a)] = i[fld!(w_b)].wrapping_add(i[fld!(w_c)]),
                op::ISUB => i[fld!(w_a)] = i[fld!(w_b)].wrapping_sub(i[fld!(w_c)]),
                op::IMUL => i[fld!(w_a)] = i[fld!(w_b)].wrapping_mul(i[fld!(w_c)]),
                op::IDIV => {
                    let d = i[fld!(w_c)];
                    if d == 0 {
                        return Err(trap(TrapKind::DivByZero, pc));
                    }
                    i[fld!(w_a)] = i[fld!(w_b)].wrapping_div(d);
                }
                op::IREM => {
                    let d = i[fld!(w_c)];
                    if d == 0 {
                        return Err(trap(TrapKind::DivByZero, pc));
                    }
                    i[fld!(w_a)] = i[fld!(w_b)].wrapping_rem(d);
                }
                op::INEG => i[fld!(w_a)] = i[fld!(w_b)].wrapping_neg(),
                op::ICMP => {
                    i[fld!(w_a)] =
                        icmp(cmp_from(fld!(w_d) as u8), i[fld!(w_b)], i[fld!(w_c)]) as i64;
                }
                op::ILOAD => {
                    let index = i[fld!(w_c)];
                    match &a[fld!(w_b)] {
                        ArraySlot::I(v) => match v.get(index as usize) {
                            Some(&x) if index >= 0 => i[fld!(w_a)] = x,
                            _ => {
                                let len = v.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    }
                }
                op::ISTORE => {
                    let index = i[fld!(w_b)];
                    let v = i[fld!(w_c)];
                    match &mut a[fld!(w_a)] {
                        ArraySlot::I(vec) => match vec.get_mut(index as usize) {
                            Some(slot) if index >= 0 => *slot = v,
                            _ => {
                                let len = vec.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    }
                }
                op::BNOT => i[fld!(w_a)] = (i[fld!(w_b)] == 0) as i64,

                op::JMP => jump!(fld!(w_c)),
                op::JMPF => {
                    if i[fld!(w_a)] == 0 {
                        jump!(fld!(w_c));
                    }
                }
                op::JMPT => {
                    if i[fld!(w_a)] != 0 {
                        jump!(fld!(w_c));
                    }
                }

                op::TPUSHF => {
                    let s = fld!(w_a);
                    if let Err(e) = tape.push_f(f[s]) {
                        return Err(trap(TrapKind::Tape(e), pc));
                    }
                    stape.push(sf[s]);
                }
                op::TPOPF => match tape.pop_f() {
                    Ok(v) => {
                        let sh = stape.pop().unwrap_or(S::from_f64(v));
                        put!(fld!(w_a), v, sh, 0.0);
                    }
                    Err(e) => return Err(trap(TrapKind::Tape(e), pc)),
                },
                op::TPUSHI => {
                    if let Err(e) = tape.push_i(i[fld!(w_a)]) {
                        return Err(trap(TrapKind::Tape(e), pc));
                    }
                }
                op::TPOPI => match tape.pop_i() {
                    Ok(v) => i[fld!(w_a)] = v,
                    Err(e) => return Err(trap(TrapKind::Tape(e), pc)),
                },

                op::ALLOCF => {
                    let arr = fld!(w_a);
                    let n = i[fld!(w_b)];
                    if n < 0 {
                        return Err(trap(TrapKind::NegativeArrayLen(n), pc));
                    }
                    stats.local_array_bytes += n as usize * 8;
                    let slot = &mut a[arr];
                    match slot {
                        ArraySlot::F(v) | ArraySlot::StaleF(v) => {
                            v.clear();
                            v.resize(n as usize, 0.0);
                            let buf = std::mem::take(v);
                            *slot = ArraySlot::F(buf);
                        }
                        other => *other = ArraySlot::F(vec![0.0; n as usize]),
                    }
                    let shadow = &mut sa[arr];
                    shadow.clear();
                    shadow.resize(n as usize, S::from_f64(0.0));
                }
                op::ALLOCI => {
                    let arr = fld!(w_a);
                    let n = i[fld!(w_b)];
                    if n < 0 {
                        return Err(trap(TrapKind::NegativeArrayLen(n), pc));
                    }
                    stats.local_array_bytes += n as usize * 8;
                    let slot = &mut a[arr];
                    match slot {
                        ArraySlot::I(v) | ArraySlot::StaleI(v) => {
                            v.clear();
                            v.resize(n as usize, 0);
                            let buf = std::mem::take(v);
                            *slot = ArraySlot::I(buf);
                        }
                        other => *other = ArraySlot::I(vec![0; n as usize]),
                    }
                    sa[arr].clear();
                }

                op::FMULADD => {
                    let (x, y, c) = (fld!(w_b), fld!(w_c), fld!(w_d));
                    let (pa, pb, pcv) = (f[x], f[y], f[c]);
                    let prim = pa * pb + pcv;
                    let local = S::sub(
                        S::add(S::mul(S::from_f64(pa), S::from_f64(pb)), S::from_f64(pcv)),
                        S::from_f64(prim),
                    )
                    .to_f64()
                    .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + pend[c] + local;
                    put!(fld!(w_a), prim, S::add(S::mul(sf[x], sf[y]), sf[c]), p);
                }
                op::FADDROUND => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let (pa, pb) = (f[x], f[y]);
                    let prim = round_to(pa + pb, ty_from(fld!(w_d) as u8));
                    let local = S::sub(S::add(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::add(sf[x], sf[y]), p);
                }
                op::FSUBROUND => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let (pa, pb) = (f[x], f[y]);
                    let prim = round_to(pa - pb, ty_from(fld!(w_d) as u8));
                    let local = S::sub(S::sub(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::sub(sf[x], sf[y]), p);
                }
                op::FMULROUND => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let (pa, pb) = (f[x], f[y]);
                    let prim = round_to(pa * pb, ty_from(fld!(w_d) as u8));
                    let local = S::sub(S::mul(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::mul(sf[x], sf[y]), p);
                }
                op::FDIVROUND => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let (pa, pb) = (f[x], f[y]);
                    let prim = round_to(pa / pb, ty_from(fld!(w_d) as u8));
                    let local = S::sub(S::div(S::from_f64(pa), S::from_f64(pb)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::div(sf[x], sf[y]), p);
                }
                op::FINTR1ROUND => {
                    let x = fld!(w_b);
                    let d = fld!(w_d);
                    let intr = INTRINSICS[d & 63];
                    let pa = f[x];
                    let prim = round_to(eval1(intr, pa, approx), ty_from((d >> 6) as u8));
                    let local = S::sub(S::intr1(intr, S::from_f64(pa), approx), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        fld!(w_a),
                        prim,
                        S::intr1(intr, sf[x], approx),
                        pend[x] + local
                    );
                }
                op::FINTR2ROUND => {
                    let (x, y) = (fld!(w_b), fld!(w_c));
                    let d = fld!(w_d);
                    let intr = INTRINSICS[d & 63];
                    let (pa, pb) = (f[x], f[y]);
                    let prim = round_to(eval2(intr, pa, pb, approx), ty_from((d >> 6) as u8));
                    let local = S::sub(
                        S::intr2(intr, S::from_f64(pa), S::from_f64(pb), approx),
                        S::from_f64(prim),
                    )
                    .to_f64()
                    .abs();
                    sample!(local);
                    let p = pend[x] + pend[y] + local;
                    put!(fld!(w_a), prim, S::intr2(intr, sf[x], sf[y], approx), p);
                }
                op::FLOADOFF => {
                    let arr = fld!(w_b);
                    let index = i[fld!(w_c)].wrapping_add(fld!(w_d_i8));
                    let prim = match &a[arr] {
                        ArraySlot::F(v) => match v.get(index as usize) {
                            Some(&x) if index >= 0 => x,
                            _ => {
                                let len = v.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    };
                    let sh = sa[arr]
                        .get(index as usize)
                        .copied()
                        .unwrap_or(S::from_f64(prim));
                    put!(fld!(w_a), prim, sh, 0.0);
                }
                op::FSTOREOFF => {
                    let arr = fld!(w_a);
                    let index = i[fld!(w_b)].wrapping_add(fld!(w_d_i8));
                    let src = fld!(w_c);
                    let v = f[src];
                    match &mut a[arr] {
                        ArraySlot::F(vec) => match vec.get_mut(index as usize) {
                            Some(slot) if index >= 0 => *slot = v,
                            _ => {
                                let len = vec.len();
                                return Err(trap(TrapKind::OobIndex { idx: index, len }, pc));
                            }
                        },
                        _ => return Err(trap(TrapKind::OobIndex { idx: index, len: 0 }, pc)),
                    }
                    if let Some(slot) = sa[arr].get_mut(index as usize) {
                        *slot = sf[src];
                    }
                    let var = avar_of[arr];
                    if var != 0 {
                        var_err[(var - 1) as usize] += pend[src];
                    }
                    pend[src] = 0.0;
                }
                op::IADDIMM => i[fld!(w_a)] = i[fld!(w_b)].wrapping_add(fld!(w_c_i16)),
                op::IADDIMMP => i[fld!(w_a)] = i[fld!(w_b)].wrapping_add(pool[fld!(w_c)] as i64),
                op::FCJF => {
                    let (x, y) = (fld!(w_a), fld!(w_b));
                    let cmp = cmp_from(fld!(w_d) as u8);
                    let taken = fcmp(cmp, f[x], f[y]);
                    diverge_fcmp!(cmp, x, y, taken);
                    if !taken {
                        jump!(fld!(w_c));
                    }
                }
                op::FCJT => {
                    let (x, y) = (fld!(w_a), fld!(w_b));
                    let cmp = cmp_from(fld!(w_d) as u8);
                    let taken = fcmp(cmp, f[x], f[y]);
                    diverge_fcmp!(cmp, x, y, taken);
                    if taken {
                        jump!(fld!(w_c));
                    }
                }
                op::ICJF => {
                    if !icmp(cmp_from(fld!(w_d) as u8), i[fld!(w_a)], i[fld!(w_b)]) {
                        jump!(fld!(w_c));
                    }
                }
                op::ICJT => {
                    if icmp(cmp_from(fld!(w_d) as u8), i[fld!(w_a)], i[fld!(w_b)]) {
                        jump!(fld!(w_c));
                    }
                }

                op::FADDC => {
                    let x = fld!(w_b);
                    let k = f64::from_bits(pool[fld!(w_c)]);
                    let pa = f[x];
                    let prim = pa + k;
                    let local = S::sub(S::add(S::from_f64(pa), S::from_f64(k)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        fld!(w_a),
                        prim,
                        S::add(sf[x], S::from_f64(k)),
                        pend[x] + local
                    );
                }
                op::FSUBC => {
                    let x = fld!(w_b);
                    let k = f64::from_bits(pool[fld!(w_c)]);
                    let pa = f[x];
                    let prim = pa - k;
                    let local = S::sub(S::sub(S::from_f64(pa), S::from_f64(k)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        fld!(w_a),
                        prim,
                        S::sub(sf[x], S::from_f64(k)),
                        pend[x] + local
                    );
                }
                op::FSUBCR => {
                    let x = fld!(w_b);
                    let k = f64::from_bits(pool[fld!(w_c)]);
                    let pa = f[x];
                    let prim = k - pa;
                    let local = S::sub(S::sub(S::from_f64(k), S::from_f64(pa)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        fld!(w_a),
                        prim,
                        S::sub(S::from_f64(k), sf[x]),
                        pend[x] + local
                    );
                }
                op::FMULC => {
                    let x = fld!(w_b);
                    let k = f64::from_bits(pool[fld!(w_c)]);
                    let pa = f[x];
                    let prim = pa * k;
                    let local = S::sub(S::mul(S::from_f64(pa), S::from_f64(k)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        fld!(w_a),
                        prim,
                        S::mul(sf[x], S::from_f64(k)),
                        pend[x] + local
                    );
                }
                op::FDIVC => {
                    let x = fld!(w_b);
                    let k = f64::from_bits(pool[fld!(w_c)]);
                    let pa = f[x];
                    let prim = pa / k;
                    let local = S::sub(S::div(S::from_f64(pa), S::from_f64(k)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        fld!(w_a),
                        prim,
                        S::div(sf[x], S::from_f64(k)),
                        pend[x] + local
                    );
                }
                op::FDIVCR => {
                    let x = fld!(w_b);
                    let k = f64::from_bits(pool[fld!(w_c)]);
                    let pa = f[x];
                    let prim = k / pa;
                    let local = S::sub(S::div(S::from_f64(k), S::from_f64(pa)), S::from_f64(prim))
                        .to_f64()
                        .abs();
                    sample!(local);
                    put!(
                        fld!(w_a),
                        prim,
                        S::div(S::from_f64(k), sf[x]),
                        pend[x] + local
                    );
                }
                op::ICJFI => {
                    if !icmp(cmp_from(fld!(w_d) as u8), i[fld!(w_a)], fld!(w_b_i16)) {
                        jump!(fld!(w_c));
                    }
                }
                op::ICJTI => {
                    if icmp(cmp_from(fld!(w_d) as u8), i[fld!(w_a)], fld!(w_b_i16)) {
                        jump!(fld!(w_c));
                    }
                }
                op::RETF => {
                    let src = fld!(w_a);
                    let v = f[src];
                    let rounded = match func.ret {
                        RetKind::F(ft) => round_to(v, ft),
                        _ => v,
                    };
                    if trap_nf && !rounded.is_finite() {
                        return Err(crate::vm::nonfinite_trap(func, src, rounded, pc));
                    }
                    sample!((v - rounded).abs());
                    let oerr = S::sub(sf[src], S::from_f64(rounded)).to_f64().abs();
                    break (Some(Value::F(rounded)), Some(sf[src].to_f64()), Some(oerr));
                }
                op::RETI => break (Some(Value::I(i[fld!(w_a)])), None, None),
                op::RETB => break (Some(Value::B(i[fld!(w_a)] != 0)), None, None),
                op::RETVOID => break (None, None, None),
                op::TRAPMISSING => return Err(trap(TrapKind::MissingReturn, pc)),
                _ => {
                    return Err(trap(
                        TrapKind::InvalidBytecode(format!("unknown packed opcode {}", fld!(w_op))),
                        pc,
                    ))
                }
            }
            pc += 1;
        };
        stats.instrs_executed = executed;
        if executed > budget {
            return Err(trap(
                TrapKind::InstrBudgetExhausted { executed },
                pc.min(len.saturating_sub(1)),
            ));
        }
        Ok(ret)
    }
}

fn charge_entry(err: f64, var: u32, var_err: &mut [f64], acc: &mut f64, nonfinite: &mut u64) {
    if err > 0.0 {
        if err.is_finite() {
            *acc += err;
            if var != 0 {
                var_err[(var - 1) as usize] += err;
            }
        } else {
            *nonfinite += 1;
        }
    } else if err.is_nan() {
        *nonfinite += 1;
    }
}

/// Runs one fused shadow call through a fresh machine (convenience entry
/// point; batch and reuse callers hold a [`ShadowMachine`]).
pub fn run_shadow<S: ShadowNum>(
    func: &CompiledFunction,
    args: Vec<ArgValue>,
    opts: &ExecOptions,
) -> Result<ShadowOutcome, Trap> {
    ShadowMachine::<S>::new().run_reused(func, args, opts)
}

/// Runs `func` in fused shadow mode over every argument set, fanned out
/// over scoped threads via [`crate::par::parallel_map_init`] — one
/// reusable [`ShadowMachine`] per worker, results in input order, the
/// bytecode validated once for the whole batch (the shadow counterpart
/// of [`crate::vm::run_batch_parallel`]).
pub fn run_shadow_batch_parallel<S: ShadowNum>(
    func: &CompiledFunction,
    arg_sets: Vec<Vec<ArgValue>>,
    opts: &ExecOptions,
    max_threads: Option<usize>,
) -> Vec<Result<ShadowOutcome, Trap>> {
    if let Err(msg) = validate_function(func) {
        let trap = Trap {
            kind: TrapKind::InvalidBytecode(msg),
            pc: 0,
            span: Span::DUMMY,
        };
        return arg_sets.into_iter().map(|_| Err(trap.clone())).collect();
    }
    crate::par::parallel_map_init(arg_sets, max_threads, ShadowMachine::<S>::new, |m, args| {
        m.run_prevalidated(func, args, opts)
    })
}

/// [`run_shadow_batch_parallel`] drawing per-worker machines from a
/// shared [`ShadowMachineArena`](crate::arena::ShadowMachineArena):
/// consecutive oracle batches — even of different compiled variants —
/// reuse the same primal+shadow buffer allocations.
pub fn run_shadow_batch_parallel_in<S: ShadowNum>(
    func: &CompiledFunction,
    arg_sets: Vec<Vec<ArgValue>>,
    opts: &ExecOptions,
    max_threads: Option<usize>,
    arena: &crate::arena::ShadowMachineArena<S>,
) -> Vec<Result<ShadowOutcome, Trap>> {
    if let Err(msg) = validate_function(func) {
        let trap = Trap {
            kind: TrapKind::InvalidBytecode(msg),
            pc: 0,
            span: Span::DUMMY,
        };
        return arg_sets.into_iter().map(|_| Err(trap.clone())).collect();
    }
    // Same worker/run span pairing as `vm::run_batch_parallel_in`.
    crate::par::parallel_map_init(
        arg_sets,
        max_threads,
        || (arena.checkout(), chef_telemetry::span("exec.worker")),
        |worker, args| {
            let _run = chef_telemetry::span("exec.run");
            worker.0.run_prevalidated(func, args, opts)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, compile_default, CompileOptions, PrecisionMap};
    use crate::vm::run;
    use chef_ir::ast::VarId;
    use chef_ir::parser::parse_program;
    use chef_ir::typeck::check_program;
    use chef_ir::types::FloatTy;

    fn compiled(src: &str, pm: PrecisionMap) -> CompiledFunction {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        compile(
            &p.functions[0],
            &CompileOptions {
                precisions: pm,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn shadow_primal_is_bit_identical_to_plain_run() {
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(x + i * 0.01) * 0.5; }
            return s;
        }";
        let pm = PrecisionMap::empty().with(VarId(2), FloatTy::F32); // s
        let func = compiled(src, pm);
        let args = vec![ArgValue::F(0.37), ArgValue::I(200)];
        let plain = run(&func, args.clone()).unwrap();
        let shadow = run_shadow::<f64>(&func, args, &ExecOptions::default()).unwrap();
        assert_eq!(plain.ret_f().to_bits(), shadow.ret_f().to_bits());
        assert_eq!(plain.stats, shadow.stats);
    }

    #[test]
    fn f64_shadow_matches_undemoted_run() {
        // The f64 shadow of a demoted compilation reproduces the
        // undemoted program's result bit-for-bit: rounds are identity on
        // the shadow and the operation order is shared.
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(x + i * 0.01) * 0.5; }
            return s;
        }";
        let args = vec![ArgValue::F(0.91), ArgValue::I(300)];
        let baseline = run(&compiled(src, PrecisionMap::empty()), args.clone())
            .unwrap()
            .ret_f();
        let pm = PrecisionMap::empty()
            .with(VarId(0), FloatTy::F32) // x
            .with(VarId(2), FloatTy::F32); // s
        let shadow = run_shadow::<f64>(&compiled(src, pm), args, &ExecOptions::default()).unwrap();
        assert_eq!(shadow.shadow_f().to_bits(), baseline.to_bits());
        assert!(shadow.output_error() > 0.0);
    }

    #[test]
    fn no_demotion_means_zero_error_everywhere() {
        let src = "double f(double x) {
            double u = x * 1.5 + 0.25;
            double w = sqrt(u) / 3.0;
            return w;
        }";
        let func = compiled(src, PrecisionMap::empty());
        let out =
            run_shadow::<f64>(&func, vec![ArgValue::F(1.7)], &ExecOptions::default()).unwrap();
        assert_eq!(out.output_error(), 0.0);
        assert_eq!(out.acc_error, 0.0);
        assert!(out.samples.iter().all(|s| s.sum == 0.0 && s.count == 0));
        assert!(out.var_error.iter().all(|(_, e)| *e == 0.0));
    }

    #[test]
    fn attribution_charges_the_demoted_variable() {
        let src = "double f(double x) {
            double noise = x * 0.3333333333333;
            double core = x * 2.0;
            return noise + core;
        }";
        let pm_src = compiled(src, PrecisionMap::empty());
        // Find `noise`'s var id by name through the table.
        assert!(pm_src.fvar_names.iter().any(|(_, n)| n == "noise"));
        let pm = PrecisionMap::empty().with(VarId(1), FloatTy::F32); // noise
        let func = compiled(src, pm);
        let out =
            run_shadow::<f64>(&func, vec![ArgValue::F(1.1)], &ExecOptions::default()).unwrap();
        let err_of = |name: &str| {
            out.var_error
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| *e)
                .unwrap_or(0.0)
        };
        assert!(err_of("noise") > 0.0, "{:?}", out.var_error);
        assert_eq!(err_of("core"), 0.0, "{:?}", out.var_error);
        // The output error equals the single rounding that happened.
        assert!(out.output_error() > 0.0);
        assert!((out.acc_error - err_of("noise")).abs() <= f64::EPSILON * out.acc_error);
    }

    #[test]
    fn entry_rounding_of_demoted_params_is_charged() {
        let src = "double f(double x, double a[]) { return x + a[0]; }";
        let pm = PrecisionMap::empty()
            .with(VarId(0), FloatTy::F32)
            .with(VarId(1), FloatTy::F32);
        let func = compiled(src, pm);
        let x = 1.0 / 3.0;
        let a0 = 2.0 / 7.0;
        let out = run_shadow::<f64>(
            &func,
            vec![ArgValue::F(x), ArgValue::FArr(vec![a0])],
            &ExecOptions::default(),
        )
        .unwrap();
        let exact = x + a0;
        let demoted = (x as f32 as f64) + (a0 as f32 as f64);
        assert_eq!(out.ret_f(), demoted);
        assert_eq!(out.shadow_f(), exact);
        let err_of = |name: &str| {
            out.var_error
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| *e)
                .unwrap()
        };
        assert!((err_of("x") - (x - x as f32 as f64).abs()).abs() < 1e-18);
        assert!((err_of("a") - (a0 - a0 as f32 as f64).abs()).abs() < 1e-18);
    }

    #[test]
    fn per_instruction_samples_land_on_rounding_sites() {
        let src = "float f(float x, float y) { float z; z = x + y; return z; }";
        let func = compile_default(
            &{
                let mut p = parse_program(src).unwrap();
                check_program(&mut p).unwrap();
                p
            }
            .functions[0],
        )
        .unwrap();
        let out = run_shadow::<f64>(
            &func,
            vec![ArgValue::F(1.95e-5), ArgValue::F(1.37e-7)],
            &ExecOptions::default(),
        )
        .unwrap();
        // Exactly the add-round site carries a sample (inputs are
        // f32-exact here, the return value is already rounded).
        let hot: Vec<usize> = out
            .samples
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count > 0)
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert!(matches!(
            func.instrs[hot[0]],
            Instr::FAddRound { .. } | Instr::FRound { .. } | Instr::FAdd { .. }
        ));
        // The sample measures the rounding of the add performed on the
        // (already entry-rounded) primal inputs.
        let (xs, ys) = (1.95e-5f32 as f64, 1.37e-7f32 as f64);
        let unrounded = xs + ys;
        let f32_result = (1.95e-5f32 + 1.37e-7f32) as f64;
        assert!((out.samples[hot[0]].sum - (unrounded - f32_result).abs()).abs() < 1e-20);
    }

    #[test]
    fn shadow_batch_parallel_matches_serial() {
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += x * 1.0000001; }
            return s;
        }";
        let pm = PrecisionMap::empty().with(VarId(2), FloatTy::F32);
        let func = compiled(src, pm);
        let sets: Vec<Vec<ArgValue>> = (0..16)
            .map(|k| vec![ArgValue::F(0.1 + k as f64 * 0.01), ArgValue::I(50)])
            .collect();
        let opts = ExecOptions::default();
        let par = run_shadow_batch_parallel::<f64>(&func, sets.clone(), &opts, Some(4));
        let mut m = ShadowMachine::<f64>::new();
        for (set, p) in sets.into_iter().zip(&par) {
            let s = m.run_reused(&func, set, &opts).unwrap();
            let p = p.as_ref().unwrap();
            assert_eq!(s.ret_f().to_bits(), p.ret_f().to_bits());
            assert_eq!(s.shadow_f().to_bits(), p.shadow_f().to_bits());
            assert_eq!(s.acc_error.to_bits(), p.acc_error.to_bits());
        }
    }

    #[test]
    fn branch_flip_is_reported_not_followed() {
        // Demoting the accumulator makes the f32 sum of 100 × 0.01 land
        // below 1.0 while the f64 shadow lands above: the threshold
        // branch flips. The primal trace is still followed (bit-identical
        // to a plain run of the demoted compilation) and the split is
        // reported with the compare's operands.
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s = s + x; }
            double r = 0.0;
            if (s < 1.0) { r = s * 2.0; } else { r = s * 0.5; }
            return r;
        }";
        let pm = PrecisionMap::empty().with(VarId(2), FloatTy::F32); // s
        let func = compiled(src, pm);
        let args = vec![ArgValue::F(0.01), ArgValue::I(100)];
        let out = run_shadow::<f64>(&func, args.clone(), &ExecOptions::default()).unwrap();
        assert!(out.diverged());
        assert_eq!(out.divergence_count, 1, "{:?}", out.divergence);
        let p = &out.divergence[0];
        match p.kind {
            DivergenceKind::FCmp {
                op,
                primal,
                shadow,
                taken,
                would_take,
            } => {
                assert_eq!(op, CmpOp::Lt);
                assert!(primal.0 < 1.0 && primal.1 == 1.0, "{:?}", p);
                assert!(shadow.0 >= 1.0, "{:?}", p);
                assert!(taken && !would_take, "{:?}", p);
            }
            other => panic!("expected FCmp divergence, got {other:?}"),
        }
        // The split is attributed to the compared variable.
        let div_of = |name: &str| {
            out.var_divergence
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(div_of("s"), 1, "{:?}", out.var_divergence);
        // The primal still followed its own trace.
        let plain = run(&func, args).unwrap();
        assert_eq!(plain.ret_f().to_bits(), out.ret_f().to_bits());
    }

    #[test]
    fn f2i_truncation_divergence_is_reported() {
        let src = "double f(double h) {
            double t = 1.0 / h;
            int n = (int) t;
            double s = 0.0;
            for (int i = 0; i < n; i++) { s = s + h; }
            return s;
        }";
        let pm = PrecisionMap::empty().with(VarId(1), FloatTy::F32); // t
        let func = compiled(src, pm);
        let h = 1.0 / (100.0 - 1e-6);
        let out = run_shadow::<f64>(&func, vec![ArgValue::F(h)], &ExecOptions::default()).unwrap();
        assert!(out.diverged());
        let p = out
            .divergence
            .iter()
            .find(|p| matches!(p.kind, DivergenceKind::F2I { .. }))
            .expect("F2I divergence point");
        match p.kind {
            DivergenceKind::F2I {
                primal_int,
                shadow_int,
                ..
            } => {
                assert_eq!(primal_int, 100, "{p:?}");
                assert_eq!(shadow_int, 99, "{p:?}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn stable_branches_report_no_divergence() {
        // Same kernel, but the sum stays far from the knot: demotion
        // still rounds (acc_error > 0) yet every decision is stable.
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s = s + x; }
            double r = 0.0;
            if (s < 1.0) { r = s * 2.0; } else { r = s * 0.5; }
            return r;
        }";
        let pm = PrecisionMap::empty().with(VarId(2), FloatTy::F32); // s
        let func = compiled(src, pm);
        let out = run_shadow::<f64>(
            &func,
            vec![ArgValue::F(0.01), ArgValue::I(42)],
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(!out.diverged());
        assert!(out.divergence.is_empty());
        assert!(out.var_divergence.iter().all(|(_, c)| *c == 0));
        assert!(out.acc_error > 0.0, "demotion still rounds");
    }

    #[test]
    fn divergence_is_identical_between_enum_and_packed_dispatch() {
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s = s + x; }
            double r = 0.0;
            if (s < 1.0) { r = s * 2.0; } else { r = s * 0.5; }
            return r;
        }";
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let pm = PrecisionMap::empty().with(VarId(2), FloatTy::F32);
        let packed = compile(
            &p.functions[0],
            &CompileOptions {
                precisions: pm.clone(),
                pack: true,
                ..Default::default()
            },
        )
        .unwrap();
        let enum_only = compile(
            &p.functions[0],
            &CompileOptions {
                precisions: pm,
                pack: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(packed.packed.is_some() && enum_only.packed.is_none());
        let args = vec![ArgValue::F(0.01), ArgValue::I(100)];
        let opts = ExecOptions::default();
        let a = run_shadow::<f64>(&packed, args.clone(), &opts).unwrap();
        let b = run_shadow::<f64>(&enum_only, args, &opts).unwrap();
        assert_eq!(a.divergence_count, b.divergence_count);
        assert_eq!(a.divergence, b.divergence);
        assert_eq!(a.var_divergence, b.var_divergence);
        assert!(a.divergence_count > 0);
    }

    #[test]
    fn divergence_detection_can_be_disabled() {
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s = s + x; }
            double r = 0.0;
            if (s < 1.0) { r = s * 2.0; } else { r = s * 0.5; }
            return r;
        }";
        let pm = PrecisionMap::empty().with(VarId(2), FloatTy::F32);
        let func = compiled(src, pm);
        let args = vec![ArgValue::F(0.01), ArgValue::I(100)];
        let opts = ExecOptions {
            detect_divergence: false,
            ..Default::default()
        };
        let off = run_shadow::<f64>(&func, args.clone(), &opts).unwrap();
        assert_eq!(off.divergence_count, 0);
        assert!(off.divergence.is_empty());
        // Everything else is unchanged by the toggle.
        let on = run_shadow::<f64>(&func, args, &ExecOptions::default()).unwrap();
        assert_eq!(on.ret_f().to_bits(), off.ret_f().to_bits());
        assert_eq!(on.acc_error.to_bits(), off.acc_error.to_bits());
    }

    #[test]
    fn traps_mirror_the_plain_vm() {
        let mut p = parse_program("double f(double a[]) { return a[5]; }").unwrap();
        check_program(&mut p).unwrap();
        let func = compile_default(&p.functions[0]).unwrap();
        let err = run_shadow::<f64>(
            &func,
            vec![ArgValue::FArr(vec![1.0, 2.0])],
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind, TrapKind::OobIndex { idx: 5, len: 2 });

        let mut p = parse_program("void f() { while (true) { } }").unwrap();
        check_program(&mut p).unwrap();
        let func = compile_default(&p.functions[0]).unwrap();
        let opts = ExecOptions {
            max_instrs: Some(1000),
            ..Default::default()
        };
        let err = run_shadow::<f64>(&func, vec![], &opts).unwrap_err();
        assert!(
            matches!(err.kind, TrapKind::InstrBudgetExhausted { executed } if executed > 1000),
            "{:?}",
            err.kind
        );
    }

    #[test]
    fn deadline_traps_in_both_shadow_loops() {
        let mut p = parse_program("void f() { while (true) { } }").unwrap();
        check_program(&mut p).unwrap();
        for pack in [false, true] {
            let func = compile(
                &p.functions[0],
                &CompileOptions {
                    pack,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(func.packed.is_some(), pack);
            let opts = ExecOptions::default().deadline_in(std::time::Duration::from_millis(5));
            let err = run_shadow::<f64>(&func, vec![], &opts).unwrap_err();
            let TrapKind::DeadlineExceeded { executed } = err.kind else {
                panic!("expected deadline trap, got {:?} (pack: {pack})", err.kind);
            };
            assert!(executed >= crate::vm::DEADLINE_STRIDE, "{executed}");
            assert!(err.pc < func.instrs.len(), "pc {} out of range", err.pc);
        }
    }
}
