//! Software simulation of narrow floating-point formats.
//!
//! The VM stores every floating value as `f64` and simulates `half`,
//! `bfloat` and `float` variables by *rounding on assignment* (and after
//! each arithmetic operation whose result precision is narrow). This is
//! the standard mixed-precision simulation technique: the value set of
//! each narrow format is a subset of `f64`'s, so "store into an `f32`
//! variable" is exactly "round to the nearest `f32` and keep the result as
//! `f64`".
//!
//! `f32` rounding uses the hardware conversion. `binary16` and `bfloat16`
//! are implemented in software with IEEE 754 round-to-nearest-even,
//! including overflow-to-infinity and subnormal handling.

use chef_ir::types::FloatTy;

/// Rounds `x` to the value set of `ty`, returning the result as `f64`.
///
/// This is the `fl_p(x)` operation of rounding-error analysis: the nearest
/// representable number in precision `p` (ties to even), with overflow
/// going to ±∞ like the hardware conversion would.
#[inline]
pub fn round_to(x: f64, ty: FloatTy) -> f64 {
    match ty {
        FloatTy::F64 => x,
        FloatTy::F32 => x as f32 as f64,
        FloatTy::F16 => f16_to_f64(f32_to_f16(x as f32)),
        FloatTy::BF16 => bf16_to_f64(f32_to_bf16(x as f32)),
    }
}

/// The representation (demotion) error `x − fl_p(x)`.
///
/// This is the per-variable quantity the ADAPT error model weighs with the
/// adjoint: `x̄ · (x − (float)x)` (paper eq. 2, generalized to any target
/// precision).
#[inline]
pub fn demotion_error(x: f64, ty: FloatTy) -> f64 {
    x - round_to(x, ty)
}

/// Converts an `f32` to IEEE 754 binary16 bits (round-to-nearest-even).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        let man16 = if man != 0 { 0x0200 } else { 0 };
        return sign | 0x7C00 | man16;
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        // Overflow -> infinity.
        return sign | 0x7C00;
    }
    if e >= -14 {
        // Normal range for f16.
        let mut man16 = (man >> 13) as u16;
        let rest = man & 0x1FFF;
        // Round to nearest, ties to even.
        if rest > 0x1000 || (rest == 0x1000 && (man16 & 1) == 1) {
            man16 += 1;
        }
        let mut exp16 = (e + 15) as u16;
        if man16 == 0x0400 {
            // Mantissa overflowed into the exponent.
            man16 = 0;
            exp16 += 1;
            if exp16 >= 0x1F {
                return sign | 0x7C00;
            }
        }
        return sign | (exp16 << 10) | man16;
    }
    if e >= -25 {
        // Subnormal f16 (including the half-way band just below the
        // smallest subnormal, which can round up to it): shift the
        // (implicit-1-extended) mantissa right.
        let full = man | 0x0080_0000; // implicit leading 1
        let shift = (-14 - e) as u32 + 13;
        let man16 = (full >> shift) as u16;
        let rest = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut man16 = man16;
        if rest > half || (rest == half && (man16 & 1) == 1) {
            man16 += 1;
        }
        // A subnormal rounding up to 0x0400 becomes the smallest normal —
        // the bit pattern works out because exp field 1 | mantissa 0.
        return sign | man16;
    }
    // Underflow to zero (with sign).
    sign
}

/// Converts IEEE 754 binary16 bits to `f64` (exact).
pub fn f16_to_f64(h: u16) -> f64 {
    let sign = if h & 0x8000 != 0 { -1.0 } else { 1.0 };
    let exp = ((h >> 10) & 0x1F) as i32;
    let man = (h & 0x03FF) as f64;
    match exp {
        0 => sign * man * 2f64.powi(-24), // subnormal (or zero)
        0x1F => {
            if man == 0.0 {
                sign * f64::INFINITY
            } else {
                f64::NAN
            }
        }
        _ => sign * (1.0 + man / 1024.0) * 2f64.powi(exp - 15),
    }
}

/// Converts an `f32` to bfloat16 bits (round-to-nearest-even).
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Preserve NaN, force a quiet bit so truncation can't produce Inf.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let rest = bits & 0xFFFF;
    let mut hi = (bits >> 16) as u16;
    if rest > 0x8000 || (rest == 0x8000 && (hi & 1) == 1) {
        hi = hi.wrapping_add(1); // may carry into exponent: correct (-> Inf)
    }
    hi
}

/// Converts bfloat16 bits to `f64` (exact: widen to f32 then f64).
pub fn bf16_to_f64(b: u16) -> f64 {
    f32::from_bits((b as u32) << 16) as f64
}

/// Unit-in-the-last-place of `x` in precision `ty` — the spacing of
/// representable numbers around `x`. Used by error models that bound the
/// rounding error of an operation by `ulp/2`.
pub fn ulp(x: f64, ty: FloatTy) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return 0.0;
    }
    let e = x.abs().log2().floor() as i32;
    2f64.powi(e - ty.mantissa_bits() as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_rounding_is_identity() {
        for &x in &[0.0, 1.0, -3.7, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(round_to(x, FloatTy::F64), x);
        }
    }

    #[test]
    fn f32_rounding_matches_hardware() {
        for &x in &[0.1, 1.0 / 3.0, 1e-40, 1e40, -2.5] {
            assert_eq!(round_to(x, FloatTy::F32), x as f32 as f64);
        }
    }

    #[test]
    fn f16_exact_values_round_trip() {
        // All f16-representable values must round to themselves.
        for h in 0u16..=0xFFFF {
            let x = f16_to_f64(h);
            if x.is_nan() {
                continue;
            }
            let back = f16_to_f64(f32_to_f16(x as f32));
            assert_eq!(back, x, "h={h:#06x} x={x}");
        }
    }

    #[test]
    fn f16_rounding_known_values() {
        assert_eq!(round_to(1.0, FloatTy::F16), 1.0);
        assert_eq!(round_to(0.5, FloatTy::F16), 0.5);
        // 1/3 rounds to 0.333251953125 in binary16 (0x3555).
        assert_eq!(round_to(1.0 / 3.0, FloatTy::F16), f16_to_f64(0x3555));
        // Largest finite f16 = 65504.
        assert_eq!(round_to(65504.0, FloatTy::F16), 65504.0);
        // 65520 rounds up to infinity.
        assert_eq!(round_to(65520.0, FloatTy::F16), f64::INFINITY);
        // Just below halfway stays finite.
        assert_eq!(round_to(65519.9, FloatTy::F16), 65504.0);
    }

    #[test]
    fn f16_subnormals() {
        let min_sub = 2f64.powi(-24);
        assert_eq!(round_to(min_sub, FloatTy::F16), min_sub);
        assert_eq!(round_to(min_sub * 0.49, FloatTy::F16), 0.0);
        assert_eq!(round_to(min_sub * 0.51, FloatTy::F16), min_sub);
        let min_normal = 2f64.powi(-14);
        assert_eq!(round_to(min_normal, FloatTy::F16), min_normal);
    }

    #[test]
    fn f16_signs_preserved() {
        assert_eq!(round_to(-1.5, FloatTy::F16), -1.5);
        assert!(round_to(-0.0, FloatTy::F16).is_sign_negative());
        assert_eq!(round_to(-70000.0, FloatTy::F16), f64::NEG_INFINITY);
    }

    #[test]
    fn bf16_exact_values_round_trip() {
        for hi in 0u16..=0xFFFF {
            let x = bf16_to_f64(hi);
            if x.is_nan() {
                continue;
            }
            let back = bf16_to_f64(f32_to_bf16(x as f32));
            assert_eq!(back, x, "hi={hi:#06x}");
        }
    }

    #[test]
    fn bf16_keeps_f32_range() {
        // bf16 has f32's exponent range: 1e38 stays finite.
        assert!(round_to(1e38, FloatTy::BF16).is_finite());
        assert_eq!(round_to(1e39, FloatTy::BF16), f64::INFINITY);
    }

    #[test]
    fn bf16_coarser_than_f16_in_mantissa() {
        let x = 1.0 + 1.0 / 512.0; // needs 9 mantissa bits
        assert_eq!(round_to(x, FloatTy::F16), x); // f16 has 10, exact
        assert_ne!(round_to(x, FloatTy::BF16), x); // bf16 has 7, rounds
    }

    #[test]
    fn demotion_error_magnitudes() {
        let x = 1.0 / 3.0;
        let e32 = demotion_error(x, FloatTy::F32).abs();
        let e16 = demotion_error(x, FloatTy::F16).abs();
        assert!(e32 > 0.0 && e16 > e32);
        assert!(e32 < FloatTy::F32.epsilon() * x * 1.01);
        assert!(e16 < FloatTy::F16.epsilon() * x * 1.01);
        assert_eq!(demotion_error(0.5, FloatTy::F16), 0.0);
    }

    #[test]
    fn rounding_is_monotone_f16() {
        let mut prev = f64::NEG_INFINITY;
        for i in -1000..=1000 {
            let x = i as f64 * 0.037;
            let r = round_to(x, FloatTy::F16);
            assert!(r >= prev, "x={x}");
            prev = r;
        }
    }

    #[test]
    fn rounding_is_idempotent() {
        for ty in FloatTy::ALL {
            for i in -100..=100 {
                let x = i as f64 * 0.317;
                let once = round_to(x, ty);
                assert_eq!(round_to(once, ty), once, "ty={ty} x={x}");
            }
        }
    }

    #[test]
    fn ulp_values() {
        assert_eq!(ulp(1.0, FloatTy::F64), f64::EPSILON);
        assert_eq!(ulp(1.0, FloatTy::F32), (f32::EPSILON) as f64);
        assert_eq!(ulp(1.5, FloatTy::F32), (f32::EPSILON) as f64);
        assert_eq!(ulp(2.0, FloatTy::F32), 2.0 * f32::EPSILON as f64);
        assert_eq!(ulp(0.0, FloatTy::F16), 0.0);
    }
}
