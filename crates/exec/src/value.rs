//! Runtime values passed into and out of compiled KernelC functions.

use std::fmt;

/// A scalar runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// A floating-point value (all precisions are stored as `f64`; narrow
    /// precisions are simulated by rounding — see
    /// [`crate::precision::round_to`]).
    F(f64),
    /// A 64-bit integer.
    I(i64),
    /// A boolean.
    B(bool),
}

impl Value {
    /// The float payload; panics on non-floats.
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            other => panic!("expected float value, got {other:?}"),
        }
    }

    /// The integer payload; panics on non-integers.
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            other => panic!("expected int value, got {other:?}"),
        }
    }

    /// The boolean payload; panics on non-booleans.
    pub fn as_b(self) -> bool {
        match self {
            Value::B(v) => v,
            other => panic!("expected bool value, got {other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F(v) => write!(f, "{v}"),
            Value::I(v) => write!(f, "{v}"),
            Value::B(v) => write!(f, "{v}"),
        }
    }
}

/// An argument to a compiled function call.
///
/// Scalars are passed by value (by-ref scalars are copied in and the
/// updated value is copied back out in [`crate::vm::CallOutcome`]); arrays
/// are moved in and moved back out to avoid cloning megabyte buffers.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Scalar float.
    F(f64),
    /// Scalar int.
    I(i64),
    /// Scalar bool.
    B(bool),
    /// Float array (any declared element precision; stored as `f64`).
    FArr(Vec<f64>),
    /// Int array.
    IArr(Vec<i64>),
}

impl ArgValue {
    /// The float payload; panics otherwise.
    pub fn as_f(&self) -> f64 {
        match self {
            ArgValue::F(v) => *v,
            other => panic!("expected float argument, got {other:?}"),
        }
    }

    /// The int payload; panics otherwise.
    pub fn as_i(&self) -> i64 {
        match self {
            ArgValue::I(v) => *v,
            other => panic!("expected int argument, got {other:?}"),
        }
    }

    /// Borrows the float-array payload; panics otherwise.
    pub fn as_farr(&self) -> &[f64] {
        match self {
            ArgValue::FArr(v) => v,
            other => panic!("expected float-array argument, got {other:?}"),
        }
    }

    /// Borrows the int-array payload; panics otherwise.
    pub fn as_iarr(&self) -> &[i64] {
        match self {
            ArgValue::IArr(v) => v,
            other => panic!("expected int-array argument, got {other:?}"),
        }
    }

    /// Takes the float-array payload; panics otherwise.
    pub fn into_farr(self) -> Vec<f64> {
        match self {
            ArgValue::FArr(v) => v,
            other => panic!("expected float-array argument, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::F(2.5).as_f(), 2.5);
        assert_eq!(Value::I(-3).as_i(), -3);
        assert!(Value::B(true).as_b());
        assert_eq!(ArgValue::FArr(vec![1.0, 2.0]).as_farr(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "expected float value")]
    fn wrong_accessor_panics() {
        Value::I(1).as_f();
    }
}
