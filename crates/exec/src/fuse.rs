//! Peephole bytecode fusion: collapses the hot multi-instruction idioms
//! the compiler emits into single superinstructions.
//!
//! The pass runs after codegen (wired into [`crate::compile`] behind
//! [`crate::compile::CompileOptions::fuse`], on by default) and rewrites
//! windows of adjacent instructions:
//!
//! | window | fused |
//! |---|---|
//! | `FMul t,a,b` ; `FAdd d,t,c` | [`Instr::FMulAdd`] |
//! | `FMul t,a,b` ; `FConst k` ; `FAdd d,t,k` | `FConst` + [`Instr::FMulAdd`] |
//! | `FAdd/FSub/FMul/FDiv t,a,b` ; `FRound d,t,ty` | [`Instr::FAddRound`] … |
//! | `IConst t,c` ; `IAdd d,a,t` | [`Instr::IAddImm`] |
//! | `IConst t,c` ; `IAdd u,i,t` ; `FLoad d,arr,u` | [`Instr::FLoadOff`] |
//! | `IConst t,c` ; `IAdd u,i,t` ; `FStore arr,u,s` | [`Instr::FStoreOff`] |
//! | `FCmp/ICmp t,…` ; `JmpIfFalse/True t,L` | [`Instr::FCmpJmpFalse`] … |
//!
//! Every fused instruction computes the exact composition of the originals
//! (separate rounding steps, same trap conditions), so fused and unfused
//! programs are **bit-identical** in results, traps and tape counters —
//! only `ExecStats::instrs_executed` shrinks. The `fusion_differential`
//! integration test pins this across every `chef-apps` kernel.
//!
//! ## Safety conditions
//!
//! A window is only fused when eliminating its intermediate register
//! cannot change observable behaviour:
//!
//! * inner window instructions must not be jump targets — no path may
//!   enter the middle of a fused sequence;
//! * the eliminated temporary is either overwritten by the window's own
//!   final instruction, or **dead after the window**: a reachability
//!   query over the bytecode CFG ([`Analysis::dead_after`]) proves every
//!   path re-writes the register before reading it (parameter registers
//!   are additionally considered read at every function exit, because
//!   call teardown copies them back to the caller).

use crate::bytecode::*;

/// What [`fuse_function`] did, by pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// `FMul`+`FAdd` → [`Instr::FMulAdd`].
    pub mul_add: u32,
    /// Arithmetic + `FRound` → `F*Round`.
    pub op_round: u32,
    /// Constant-offset array loads.
    pub load_off: u32,
    /// Constant-offset array stores.
    pub store_off: u32,
    /// `IConst`+`IAdd` → [`Instr::IAddImm`].
    pub add_imm: u32,
    /// Compare + conditional jump.
    pub cmp_branch: u32,
}

impl FuseStats {
    /// Total number of fusions performed.
    pub fn total(&self) -> u32 {
        self.mul_add
            + self.op_round
            + self.load_off
            + self.store_off
            + self.add_imm
            + self.cmp_branch
    }
}

/// A register in one of the two scalar files.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Reg {
    F(u32),
    I(u32),
}

/// Calls `visit` for every scalar register the instruction reads.
fn for_each_read(ins: &Instr, mut visit: impl FnMut(Reg)) {
    macro_rules! fr {
        ($r:expr) => {
            visit(Reg::F($r.0))
        };
    }
    macro_rules! ir {
        ($r:expr) => {
            visit(Reg::I($r.0))
        };
    }
    match ins {
        Instr::FConst { .. }
        | Instr::IConst { .. }
        | Instr::Jmp { .. }
        | Instr::TPopF { .. }
        | Instr::TPopI { .. }
        | Instr::RetVoid
        | Instr::TrapMissingReturn => {}
        Instr::FMov { src, .. }
        | Instr::FNeg { src, .. }
        | Instr::FRound { src, .. }
        | Instr::F2I { src, .. }
        | Instr::TPushF { src } => fr!(*src),
        Instr::FIntr1 { a, .. } => fr!(*a),
        Instr::FAdd { a, b, .. }
        | Instr::FSub { a, b, .. }
        | Instr::FMul { a, b, .. }
        | Instr::FDiv { a, b, .. }
        | Instr::FIntr2 { a, b, .. }
        | Instr::FCmp { a, b, .. }
        | Instr::FAddRound { a, b, .. }
        | Instr::FSubRound { a, b, .. }
        | Instr::FMulRound { a, b, .. }
        | Instr::FDivRound { a, b, .. }
        | Instr::FCmpJmpFalse { a, b, .. }
        | Instr::FCmpJmpTrue { a, b, .. } => {
            fr!(*a);
            fr!(*b);
        }
        Instr::FMulAdd { a, b, c, .. } => {
            fr!(*a);
            fr!(*b);
            fr!(*c);
        }
        Instr::FLoad { idx, .. } => ir!(idx),
        Instr::FStore { idx, src, .. } => {
            ir!(idx);
            fr!(*src);
        }
        Instr::FLoadOff { base, .. } => ir!(base),
        Instr::FStoreOff { base, src, .. } => {
            ir!(base);
            fr!(*src);
        }
        Instr::I2F { src, .. }
        | Instr::IMov { src, .. }
        | Instr::INeg { src, .. }
        | Instr::BNot { src, .. }
        | Instr::TPushI { src } => ir!(src),
        Instr::IAdd { a, b, .. }
        | Instr::ISub { a, b, .. }
        | Instr::IMul { a, b, .. }
        | Instr::IDiv { a, b, .. }
        | Instr::IRem { a, b, .. }
        | Instr::ICmp { a, b, .. }
        | Instr::ICmpJmpFalse { a, b, .. }
        | Instr::ICmpJmpTrue { a, b, .. } => {
            ir!(a);
            ir!(b);
        }
        Instr::IAddImm { a, .. } => ir!(a),
        Instr::ILoad { idx, .. } => ir!(idx),
        Instr::IStore { idx, src, .. } => {
            ir!(idx);
            ir!(src);
        }
        Instr::JmpIfFalse { cond, .. } | Instr::JmpIfTrue { cond, .. } => ir!(cond),
        Instr::AllocF { len, .. } | Instr::AllocI { len, .. } => ir!(len),
        Instr::RetF { src } => fr!(*src),
        Instr::RetI { src } | Instr::RetB { src } => ir!(src),
    }
}

/// The scalar register the instruction writes, if any.
fn write_of(ins: &Instr) -> Option<Reg> {
    match ins {
        Instr::FConst { dst, .. }
        | Instr::FMov { dst, .. }
        | Instr::FAdd { dst, .. }
        | Instr::FSub { dst, .. }
        | Instr::FMul { dst, .. }
        | Instr::FDiv { dst, .. }
        | Instr::FNeg { dst, .. }
        | Instr::FRound { dst, .. }
        | Instr::FIntr1 { dst, .. }
        | Instr::FIntr2 { dst, .. }
        | Instr::FLoad { dst, .. }
        | Instr::I2F { dst, .. }
        | Instr::TPopF { dst }
        | Instr::FMulAdd { dst, .. }
        | Instr::FAddRound { dst, .. }
        | Instr::FSubRound { dst, .. }
        | Instr::FMulRound { dst, .. }
        | Instr::FDivRound { dst, .. }
        | Instr::FLoadOff { dst, .. } => Some(Reg::F(dst.0)),
        Instr::FCmp { dst, .. }
        | Instr::F2I { dst, .. }
        | Instr::IConst { dst, .. }
        | Instr::IMov { dst, .. }
        | Instr::IAdd { dst, .. }
        | Instr::ISub { dst, .. }
        | Instr::IMul { dst, .. }
        | Instr::IDiv { dst, .. }
        | Instr::IRem { dst, .. }
        | Instr::INeg { dst, .. }
        | Instr::ICmp { dst, .. }
        | Instr::ILoad { dst, .. }
        | Instr::BNot { dst, .. }
        | Instr::TPopI { dst }
        | Instr::IAddImm { dst, .. } => Some(Reg::I(dst.0)),
        Instr::FStore { .. }
        | Instr::FStoreOff { .. }
        | Instr::IStore { .. }
        | Instr::Jmp { .. }
        | Instr::JmpIfFalse { .. }
        | Instr::JmpIfTrue { .. }
        | Instr::FCmpJmpFalse { .. }
        | Instr::FCmpJmpTrue { .. }
        | Instr::ICmpJmpFalse { .. }
        | Instr::ICmpJmpTrue { .. }
        | Instr::TPushF { .. }
        | Instr::TPushI { .. }
        | Instr::AllocF { .. }
        | Instr::AllocI { .. }
        | Instr::RetF { .. }
        | Instr::RetI { .. }
        | Instr::RetB { .. }
        | Instr::RetVoid
        | Instr::TrapMissingReturn => None,
    }
}

/// Successor program points of the instruction at `pc`; `None` marks a
/// function exit (return or fall-off-the-end).
fn successors(ins: &Instr, pc: usize, out: &mut [Option<usize>; 2]) -> bool {
    // Returns `false` when the instruction exits the function.
    *out = [None, None];
    match ins {
        Instr::Jmp { target } => {
            out[0] = Some(*target as usize);
            true
        }
        Instr::JmpIfFalse { target, .. }
        | Instr::JmpIfTrue { target, .. }
        | Instr::FCmpJmpFalse { target, .. }
        | Instr::FCmpJmpTrue { target, .. }
        | Instr::ICmpJmpFalse { target, .. }
        | Instr::ICmpJmpTrue { target, .. } => {
            out[0] = Some(*target as usize);
            out[1] = Some(pc + 1);
            true
        }
        Instr::RetF { .. }
        | Instr::RetI { .. }
        | Instr::RetB { .. }
        | Instr::RetVoid
        | Instr::TrapMissingReturn => false,
        _ => {
            out[0] = Some(pc + 1);
            true
        }
    }
}

struct Analysis {
    f_param: Vec<bool>,
    i_param: Vec<bool>,
    is_target: Vec<bool>,
    /// Scratch for [`Analysis::dead_after`] (reused across queries).
    visited: std::cell::RefCell<Vec<bool>>,
}

impl Analysis {
    fn of(func: &CompiledFunction) -> Self {
        let mut a = Analysis {
            f_param: vec![false; func.n_fregs as usize],
            i_param: vec![false; func.n_iregs as usize],
            is_target: vec![false; func.instrs.len() + 1],
            visited: std::cell::RefCell::new(vec![false; func.instrs.len()]),
        };
        for ins in &func.instrs {
            match ins {
                Instr::Jmp { target }
                | Instr::JmpIfFalse { target, .. }
                | Instr::JmpIfTrue { target, .. }
                | Instr::FCmpJmpFalse { target, .. }
                | Instr::FCmpJmpTrue { target, .. }
                | Instr::ICmpJmpFalse { target, .. }
                | Instr::ICmpJmpTrue { target, .. } => {
                    if let Some(t) = a.is_target.get_mut(*target as usize) {
                        *t = true;
                    }
                }
                _ => {}
            }
        }
        for p in &func.params {
            match p.kind {
                ParamKind::F(_) => a.f_param[p.reg as usize] = true,
                ParamKind::I | ParamKind::B => a.i_param[p.reg as usize] = true,
                ParamKind::FArr(_) | ParamKind::IArr => {}
            }
        }
        a
    }

    fn is_param(&self, reg: Reg) -> bool {
        match reg {
            Reg::F(r) => self.f_param.get(r as usize).copied().unwrap_or(false),
            Reg::I(r) => self.i_param.get(r as usize).copied().unwrap_or(false),
        }
    }

    /// `true` when `reg` is dead at every program point in `starts`: no
    /// path reads it before writing it. Function exits count as reads of
    /// parameter registers (call teardown copies them back).
    ///
    /// The compiler reuses temporary registers across statements, so this
    /// reachability query (rather than a global read count) is what makes
    /// the fusion patterns actually fire: a temp's next use is always
    /// preceded by a fresh write, which terminates the search.
    fn dead_after(&self, func: &CompiledFunction, starts: &[usize], reg: Reg) -> bool {
        let instrs = &func.instrs;
        let mut visited = self.visited.borrow_mut();
        visited.iter_mut().for_each(|v| *v = false);
        let mut stack: Vec<usize> = Vec::with_capacity(8);
        let exit_reads = self.is_param(reg);
        for &s in starts {
            if s >= instrs.len() {
                if exit_reads {
                    return false;
                }
            } else {
                stack.push(s);
            }
        }
        while let Some(pc) = stack.pop() {
            if visited[pc] {
                continue;
            }
            visited[pc] = true;
            let ins = &instrs[pc];
            let mut read = false;
            for_each_read(ins, |r| read |= r == reg);
            if read {
                return false;
            }
            if write_of(ins) == Some(reg) {
                continue; // overwritten: this path is safe
            }
            let mut succ = [None, None];
            if !successors(ins, pc, &mut succ) && exit_reads {
                return false;
            }
            for s in succ.into_iter().flatten() {
                if s >= instrs.len() {
                    if exit_reads {
                        return false;
                    }
                } else if !visited[s] {
                    stack.push(s);
                }
            }
        }
        true
    }
}

/// One fusion decision: the replacement instructions and the number of
/// original instructions they consume.
struct Rewrite {
    out: [Option<Instr>; 2],
    width: usize,
}

impl Rewrite {
    fn one(ins: Instr, width: usize) -> Option<Rewrite> {
        Some(Rewrite {
            out: [Some(ins), None],
            width,
        })
    }

    fn two(first: Instr, second: Instr, width: usize) -> Option<Rewrite> {
        Some(Rewrite {
            out: [Some(first), Some(second)],
            width,
        })
    }
}

/// Fuses `func` in place; returns what happened. Idempotent: running it
/// again finds nothing new.
pub fn fuse_function(func: &mut CompiledFunction) -> FuseStats {
    let analysis = Analysis::of(func);
    let mut stats = FuseStats::default();
    let old_len = func.instrs.len();
    let mut out: Vec<Instr> = Vec::with_capacity(old_len);
    let mut out_spans = Vec::with_capacity(old_len);
    // old instruction index → new index (old_len maps to the new end).
    let mut remap: Vec<u32> = vec![0; old_len + 1];

    let mut pc = 0usize;
    while pc < old_len {
        let rewrite = match_window(func, &analysis, pc, &mut stats);
        let (instrs_out, width) = match rewrite {
            Some(Rewrite { out, width }) => (out, width),
            None => ([Some(func.instrs[pc].clone()), None], 1),
        };
        remap[pc..pc + width].fill(out.len() as u32);
        // The fused window traps/behaves as its final original
        // instruction; keep that span for diagnostics.
        let span = func.spans[pc + width - 1];
        for ins in instrs_out.into_iter().flatten() {
            out.push(ins);
            out_spans.push(span);
        }
        pc += width;
    }
    remap[old_len] = out.len() as u32;

    for ins in &mut out {
        match ins {
            Instr::Jmp { target }
            | Instr::JmpIfFalse { target, .. }
            | Instr::JmpIfTrue { target, .. }
            | Instr::FCmpJmpFalse { target, .. }
            | Instr::FCmpJmpTrue { target, .. }
            | Instr::ICmpJmpFalse { target, .. }
            | Instr::ICmpJmpTrue { target, .. } => *target = remap[*target as usize],
            _ => {}
        }
    }
    func.instrs = out;
    func.spans = out_spans;
    stats
}

/// Tries every fusion pattern anchored at `pc`.
fn match_window(
    func: &CompiledFunction,
    analysis: &Analysis,
    pc: usize,
    stats: &mut FuseStats,
) -> Option<Rewrite> {
    let instrs = &func.instrs;
    let at = |k: usize| instrs.get(pc + k);
    // Inner window instructions must not be jump targets: no path may
    // enter the middle of a fused sequence.
    let free = |k: usize| !analysis.is_target[pc + k];
    // The eliminated temp is dead right after the window (which starts at
    // `pc + width`; the last window instruction here is never a branch).
    let dead_f = |width: usize, r: FReg| analysis.dead_after(func, &[pc + width], Reg::F(r.0));
    let dead_i = |width: usize, r: IReg| analysis.dead_after(func, &[pc + width], Reg::I(r.0));

    match *at(0)? {
        // IConst t ; IAdd … — address arithmetic and loop increments.
        Instr::IConst { dst: t, v } => {
            let &Instr::IAdd { dst: u, a, b } = at(1)? else {
                return None;
            };
            if !free(1) {
                return None;
            }
            let base = other_operand(Reg::I(t.0), Reg::I(a.0), Reg::I(b.0))?;
            let base = IReg(base);
            // 3-instruction form: the sum feeds an array access.
            if free(2) && u != t && i32::try_from(v).is_ok() {
                match at(2) {
                    Some(&Instr::FLoad { dst, arr, idx })
                        if idx == u && dead_i(3, u) && dead_i(3, t) =>
                    {
                        stats.load_off += 1;
                        return Rewrite::one(
                            Instr::FLoadOff {
                                dst,
                                arr,
                                base,
                                off: v as i32,
                            },
                            3,
                        );
                    }
                    Some(&Instr::FStore { arr, idx, src })
                        if idx == u && dead_i(3, u) && dead_i(3, t) =>
                    {
                        stats.store_off += 1;
                        return Rewrite::one(
                            Instr::FStoreOff {
                                arr,
                                base,
                                off: v as i32,
                                src,
                            },
                            3,
                        );
                    }
                    _ => {}
                }
            }
            // 2-instruction form: plain add-immediate.
            if u == t || dead_i(2, t) {
                stats.add_imm += 1;
                return Rewrite::one(
                    Instr::IAddImm {
                        dst: u,
                        a: base,
                        imm: v,
                    },
                    2,
                );
            }
            None
        }
        // FMul t,a,b ; [FConst k ;] FAdd d,t,c  →  FMulAdd.
        Instr::FMul { dst: t, a, b } => {
            match *at(1)? {
                Instr::FAdd { dst, a: x, b: y } if free(1) => {
                    let c = FReg(other_operand(Reg::F(t.0), Reg::F(x.0), Reg::F(y.0))?);
                    if dst == t || dead_f(2, t) {
                        stats.mul_add += 1;
                        return Rewrite::one(Instr::FMulAdd { dst, a, b, c }, 2);
                    }
                    None
                }
                // The addend constant is often materialized between the
                // mul and the add (`x * y + 3.5`); hoist it above the
                // fused op. Safe when the constant register is distinct
                // from the product and the mul operands.
                Instr::FConst { dst: k, v } if free(1) && k != t && k != a && k != b => {
                    let &Instr::FAdd { dst, a: x, b: y } = at(2)? else {
                        return None;
                    };
                    if !free(2) {
                        return None;
                    }
                    let c = FReg(other_operand(Reg::F(t.0), Reg::F(x.0), Reg::F(y.0))?);
                    if dst == t || dead_f(3, t) {
                        stats.mul_add += 1;
                        return Rewrite::two(
                            Instr::FConst { dst: k, v },
                            Instr::FMulAdd { dst, a, b, c },
                            3,
                        );
                    }
                    None
                }
                Instr::FRound { dst, src, ty } if free(1) && src == t => {
                    if dst == t || dead_f(2, t) {
                        stats.op_round += 1;
                        return Rewrite::one(Instr::FMulRound { dst, a, b, ty }, 2);
                    }
                    None
                }
                _ => None,
            }
        }
        // FAdd/FSub/FDiv t,a,b ; FRound d,t  →  fused op+round.
        Instr::FAdd { dst: t, a, b } => fuse_round(at(1), free(1), t, |dst, ty| Instr::FAddRound {
            dst,
            a,
            b,
            ty,
        })
        .and_then(|(ins, dst)| {
            if dst == t || dead_f(2, t) {
                stats.op_round += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }),
        Instr::FSub { dst: t, a, b } => fuse_round(at(1), free(1), t, |dst, ty| Instr::FSubRound {
            dst,
            a,
            b,
            ty,
        })
        .and_then(|(ins, dst)| {
            if dst == t || dead_f(2, t) {
                stats.op_round += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }),
        Instr::FDiv { dst: t, a, b } => fuse_round(at(1), free(1), t, |dst, ty| Instr::FDivRound {
            dst,
            a,
            b,
            ty,
        })
        .and_then(|(ins, dst)| {
            if dst == t || dead_f(2, t) {
                stats.op_round += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }),
        // FCmp/ICmp t ; JmpIfFalse/True t  →  compare-and-branch. The
        // condition register is not written by the fused form, so it must
        // be dead along both branch successors.
        Instr::FCmp { dst: t, op, a, b } => {
            let (ins, target) = match *at(1)? {
                Instr::JmpIfFalse { cond, target } if free(1) && cond == t => {
                    (Instr::FCmpJmpFalse { op, a, b, target }, target)
                }
                Instr::JmpIfTrue { cond, target } if free(1) && cond == t => {
                    (Instr::FCmpJmpTrue { op, a, b, target }, target)
                }
                _ => return None,
            };
            if analysis.dead_after(func, &[target as usize, pc + 2], Reg::I(t.0)) {
                stats.cmp_branch += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }
        Instr::ICmp { dst: t, op, a, b } => {
            if a == t || b == t {
                return None;
            }
            let (ins, target) = match *at(1)? {
                Instr::JmpIfFalse { cond, target } if free(1) && cond == t => {
                    (Instr::ICmpJmpFalse { op, a, b, target }, target)
                }
                Instr::JmpIfTrue { cond, target } if free(1) && cond == t => {
                    (Instr::ICmpJmpTrue { op, a, b, target }, target)
                }
                _ => return None,
            };
            if analysis.dead_after(func, &[target as usize, pc + 2], Reg::I(t.0)) {
                stats.cmp_branch += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Matches `FRound d, t, ty` following an arithmetic op that wrote `t`.
fn fuse_round(
    next: Option<&Instr>,
    free: bool,
    t: FReg,
    make: impl FnOnce(FReg, chef_ir::types::FloatTy) -> Instr,
) -> Option<(Instr, FReg)> {
    match next? {
        &Instr::FRound { dst, src, ty } if free && src == t => Some((make(dst, ty), dst)),
        _ => None,
    }
}

/// When exactly one of `x`/`y` equals `t`, returns the raw index of the
/// other operand.
fn other_operand(t: Reg, x: Reg, y: Reg) -> Option<u32> {
    let raw = |r: Reg| match r {
        Reg::F(v) | Reg::I(v) => v,
    };
    match (x == t, y == t) {
        (true, false) => Some(raw(y)),
        (false, true) => Some(raw(x)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::value::ArgValue;
    use crate::vm::run;
    use chef_ir::parser::parse_program;
    use chef_ir::typeck::check_program;

    fn compile_unfused(src: &str) -> CompiledFunction {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let opts = CompileOptions {
            fuse: false,
            ..Default::default()
        };
        compile(&p.functions[0], &opts).unwrap()
    }

    #[test]
    fn loop_condition_and_increment_fuse() {
        let mut f = compile_unfused(
            "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += 1.0; } return s; }",
        );
        let stats = fuse_function(&mut f);
        assert!(stats.cmp_branch >= 1, "{stats:?}\n{}", f.disassemble());
        assert!(stats.add_imm >= 1, "{stats:?}\n{}", f.disassemble());
        let out = run(&f, vec![ArgValue::I(100)]).unwrap();
        assert_eq!(out.ret_f(), 100.0);
    }

    #[test]
    fn mul_add_fuses_and_matches_unfused() {
        let src = "double f(double x, double y) { return x * y + 3.5; }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.mul_add >= 1, "{stats:?}\n{}", fused.disassemble());
        let a = run(&fused, vec![ArgValue::F(1.1), ArgValue::F(2.2)]).unwrap();
        let b = run(&unfused, vec![ArgValue::F(1.1), ArgValue::F(2.2)]).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
    }

    #[test]
    fn mul_add_is_not_an_fma() {
        // The fused form must round the product before the add, exactly
        // like the two original instructions.
        let src = "double f(double x, double y, double z) { return x * y + z; }";
        let mut fused = compile_unfused(src);
        fuse_function(&mut fused);
        assert!(fused
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::FMulAdd { .. })));
        let (x, y, z) = (1.0 + 2f64.powi(-30), 1.0 + 2f64.powi(-30), -1.0);
        let expect = x * y + z; // two roundings
        let fma = x.mul_add(y, z); // one rounding — must NOT match
        let got = run(&fused, vec![ArgValue::F(x), ArgValue::F(y), ArgValue::F(z)])
            .unwrap()
            .ret_f();
        assert_eq!(got.to_bits(), expect.to_bits());
        assert_ne!(got.to_bits(), fma.to_bits());
    }

    #[test]
    fn demoted_arithmetic_fuses_op_round() {
        let src = "float f(float x, float y) { float z; z = x * y; return z; }";
        let mut fused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.op_round >= 1, "{stats:?}\n{}", fused.disassemble());
        assert!(
            fused
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::FMulRound { .. })),
            "{}",
            fused.disassemble()
        );
        // Same rounding behaviour as the unfused program.
        let unfused = compile_unfused(src);
        let args = vec![ArgValue::F(1.0 / 3.0), ArgValue::F(3.0 / 7.0)];
        let a = run(&fused, args.clone()).unwrap();
        let b = run(&unfused, args).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
    }

    #[test]
    fn constant_offset_array_access_fuses() {
        let src = "double f(double a[], int i) { return a[i + 1] + a[i - 0]; }";
        let mut fused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.load_off >= 1, "{stats:?}\n{}", fused.disassemble());
        let out = run(
            &fused,
            vec![ArgValue::FArr(vec![10.0, 20.0, 30.0]), ArgValue::I(1)],
        )
        .unwrap();
        assert_eq!(out.ret_f(), 30.0 + 20.0);
    }

    #[test]
    fn constant_offset_store_fuses() {
        let src = "void f(double a[], int i, double v) { a[i + 2] = v; }";
        let mut fused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.store_off >= 1, "{stats:?}\n{}", fused.disassemble());
        let out = run(
            &fused,
            vec![
                ArgValue::FArr(vec![0.0; 5]),
                ArgValue::I(1),
                ArgValue::F(9.5),
            ],
        )
        .unwrap();
        assert_eq!(out.args[0].as_farr(), &[0.0, 0.0, 0.0, 9.5, 0.0]);
    }

    #[test]
    fn fused_load_still_bounds_checks() {
        let src = "double f(double a[], int i) { return a[i + 1]; }";
        let mut fused = compile_unfused(src);
        fuse_function(&mut fused);
        let err = run(&fused, vec![ArgValue::FArr(vec![1.0, 2.0]), ArgValue::I(5)]).unwrap_err();
        assert!(
            matches!(err.kind, crate::vm::TrapKind::OobIndex { idx: 6, len: 2 }),
            "{err:?}"
        );
    }

    #[test]
    fn jump_targets_survive_fusion() {
        // Nested control flow with fusable windows before and after the
        // branches: all jumps must land where they used to.
        let src = "double f(int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { s += i * 1.5 + 0.25; } else { s -= 0.5; }
            }
            return s;
        }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.total() > 0);
        for n in [0i64, 1, 2, 7, 100] {
            let a = run(&fused, vec![ArgValue::I(n)]).unwrap();
            let b = run(&unfused, vec![ArgValue::I(n)]).unwrap();
            assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits(), "n={n}");
        }
    }

    #[test]
    fn fusion_is_idempotent() {
        let src = "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += i * 2.0 + 1.0; } return s; }";
        let mut f = compile_unfused(src);
        let first = fuse_function(&mut f);
        assert!(first.total() > 0);
        let snapshot = f.instrs.clone();
        let second = fuse_function(&mut f);
        assert_eq!(second.total(), 0, "{second:?}");
        assert_eq!(f.instrs, snapshot);
    }

    #[test]
    fn by_ref_param_register_is_not_dropped() {
        // `out` is a by-ref scalar: its register is read at call exit, so
        // fusion must never treat it as dead at a return.
        let src = "void f(double x, double &out) { out = x * 2.0 + 1.0; }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        fuse_function(&mut fused);
        let a = run(&fused, vec![ArgValue::F(3.0), ArgValue::F(0.0)]).unwrap();
        let b = run(&unfused, vec![ArgValue::F(3.0), ArgValue::F(0.0)]).unwrap();
        assert_eq!(a.args[1], b.args[1]);
        assert_eq!(a.args[1], ArgValue::F(7.0));
    }

    #[test]
    fn instruction_count_shrinks_on_app_style_loop() {
        let src = "double f(int n) {
            double s = 0.0;
            for (int i = 1; i <= n; i++) {
                double d = i * 0.001;
                s += d * d + 1.0;
            }
            return s;
        }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        fuse_function(&mut fused);
        let a = run(&fused, vec![ArgValue::I(1000)]).unwrap();
        let b = run(&unfused, vec![ArgValue::I(1000)]).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
        assert!(
            a.stats.instrs_executed < b.stats.instrs_executed,
            "fused {} !< unfused {}",
            a.stats.instrs_executed,
            b.stats.instrs_executed
        );
    }
}
