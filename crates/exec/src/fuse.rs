//! Peephole bytecode fusion: collapses the hot multi-instruction idioms
//! the compiler emits into single superinstructions.
//!
//! The pass runs after codegen (wired into [`crate::compile`] behind
//! [`crate::compile::CompileOptions::fuse`], on by default) and rewrites
//! windows of adjacent instructions:
//!
//! | window | fused |
//! |---|---|
//! | `FMul t,a,b` ; `FAdd d,t,c` | [`Instr::FMulAdd`] |
//! | `FMul t,a,b` ; `FConst k` ; `FAdd d,t,k` | `FConst` + [`Instr::FMulAdd`] |
//! | `FAdd/FSub/FMul/FDiv t,a,b` ; `FRound d,t,ty` | [`Instr::FAddRound`] … |
//! | `FIntr1/FIntr2 t,…` ; `FRound d,t,ty` | [`Instr::FIntr1Round`] … |
//! | `FMov t,s` ; `FRound d,t,ty` | [`Instr::FRound`] `d,s,ty` |
//! | `IConst t,c` ; `IAdd d,a,t` | [`Instr::IAddImm`] |
//! | `IConst t,c` ; `IAdd u,i,t` ; `FLoad d,arr,u` | [`Instr::FLoadOff`] |
//! | `IConst t,c` ; `IAdd u,i,t` ; `FStore arr,u,s` | [`Instr::FStoreOff`] |
//! | `FCmp/ICmp t,…` ; `JmpIfFalse/True t,L` | [`Instr::FCmpJmpFalse`] … |
//!
//! Every fused instruction computes the exact composition of the originals
//! (separate rounding steps, same trap conditions), so fused and unfused
//! programs are **bit-identical** in results, traps and tape counters —
//! only `ExecStats::instrs_executed` shrinks. The `fusion_differential`
//! integration test pins this across every `chef-apps` kernel.
//!
//! ## Safety conditions
//!
//! A window is only fused when eliminating its intermediate register
//! cannot change observable behaviour:
//!
//! * inner window instructions must not be jump targets — no path may
//!   enter the middle of a fused sequence;
//! * the eliminated temporary is either overwritten by the window's own
//!   final instruction, or **dead after the window**: a reachability
//!   query over the bytecode CFG ([`Analysis::dead_after`]) proves every
//!   path re-writes the register before reading it (parameter registers
//!   are additionally considered read at every function exit, because
//!   call teardown copies them back to the caller).

use crate::bytecode::*;

/// What [`fuse_function`] did, by pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// `FMul`+`FAdd` → [`Instr::FMulAdd`].
    pub mul_add: u32,
    /// Arithmetic + `FRound` → `F*Round`.
    pub op_round: u32,
    /// Constant-offset array loads.
    pub load_off: u32,
    /// Constant-offset array stores.
    pub store_off: u32,
    /// `IConst`+`IAdd` → [`Instr::IAddImm`].
    pub add_imm: u32,
    /// Compare + conditional jump.
    pub cmp_branch: u32,
    /// Intrinsic + `FRound` → [`Instr::FIntr1Round`]/[`Instr::FIntr2Round`].
    pub intr_round: u32,
    /// `FMov` + `FRound` collapsed into one [`Instr::FRound`].
    pub mov_round: u32,
    /// `FConst` + arithmetic → constant-operand forms ([`Instr::FAddC`] …),
    /// and `IConst` + compare-and-branch → [`Instr::ICmpImmJmpFalse`] ….
    pub const_op: u32,
    /// Writing op + `FMov`/`IMov` retargeted to the copy's destination
    /// (generic copy elimination).
    pub mov_elim: u32,
}

impl FuseStats {
    /// The counters as one array (order matches the field declarations).
    fn counters(&mut self) -> [&mut u32; 10] {
        [
            &mut self.mul_add,
            &mut self.op_round,
            &mut self.load_off,
            &mut self.store_off,
            &mut self.add_imm,
            &mut self.cmp_branch,
            &mut self.intr_round,
            &mut self.mov_round,
            &mut self.const_op,
            &mut self.mov_elim,
        ]
    }

    /// Total number of fusions performed.
    pub fn total(&self) -> u32 {
        let mut s = *self;
        s.counters().into_iter().map(|c| *c).sum()
    }
}

impl std::ops::AddAssign for FuseStats {
    fn add_assign(&mut self, mut rhs: FuseStats) {
        for (acc, add) in self.counters().into_iter().zip(rhs.counters()) {
            *acc += *add;
        }
    }
}

/// A register in one of the two scalar files.
///
/// Shared with [`crate::cfg`], which reuses the fuser's read/write/successor
/// analyses for its block-level dataflow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Reg {
    F(u32),
    I(u32),
}

/// Calls `visit` for every scalar register the instruction reads.
pub(crate) fn for_each_read(ins: &Instr, mut visit: impl FnMut(Reg)) {
    macro_rules! fr {
        ($r:expr) => {
            visit(Reg::F($r.0))
        };
    }
    macro_rules! ir {
        ($r:expr) => {
            visit(Reg::I($r.0))
        };
    }
    match ins {
        Instr::FConst { .. }
        | Instr::IConst { .. }
        | Instr::Jmp { .. }
        | Instr::TPopF { .. }
        | Instr::TPopI { .. }
        | Instr::RetVoid
        | Instr::TrapMissingReturn => {}
        Instr::FMov { src, .. }
        | Instr::FNeg { src, .. }
        | Instr::FRound { src, .. }
        | Instr::F2I { src, .. }
        | Instr::TPushF { src } => fr!(*src),
        Instr::FIntr1 { a, .. }
        | Instr::FIntr1Round { a, .. }
        | Instr::FAddC { a, .. }
        | Instr::FSubC { a, .. }
        | Instr::FSubCR { a, .. }
        | Instr::FMulC { a, .. }
        | Instr::FDivC { a, .. }
        | Instr::FDivCR { a, .. } => fr!(*a),
        Instr::FAdd { a, b, .. }
        | Instr::FSub { a, b, .. }
        | Instr::FMul { a, b, .. }
        | Instr::FDiv { a, b, .. }
        | Instr::FIntr2 { a, b, .. }
        | Instr::FIntr2Round { a, b, .. }
        | Instr::FCmp { a, b, .. }
        | Instr::FAddRound { a, b, .. }
        | Instr::FSubRound { a, b, .. }
        | Instr::FMulRound { a, b, .. }
        | Instr::FDivRound { a, b, .. }
        | Instr::FCmpJmpFalse { a, b, .. }
        | Instr::FCmpJmpTrue { a, b, .. } => {
            fr!(*a);
            fr!(*b);
        }
        Instr::FMulAdd { a, b, c, .. } => {
            fr!(*a);
            fr!(*b);
            fr!(*c);
        }
        Instr::FLoad { idx, .. } => ir!(idx),
        Instr::FStore { idx, src, .. } => {
            ir!(idx);
            fr!(*src);
        }
        Instr::FLoadOff { base, .. } => ir!(base),
        Instr::FStoreOff { base, src, .. } => {
            ir!(base);
            fr!(*src);
        }
        Instr::I2F { src, .. }
        | Instr::IMov { src, .. }
        | Instr::INeg { src, .. }
        | Instr::BNot { src, .. }
        | Instr::TPushI { src } => ir!(src),
        Instr::IAdd { a, b, .. }
        | Instr::ISub { a, b, .. }
        | Instr::IMul { a, b, .. }
        | Instr::IDiv { a, b, .. }
        | Instr::IRem { a, b, .. }
        | Instr::ICmp { a, b, .. }
        | Instr::ICmpJmpFalse { a, b, .. }
        | Instr::ICmpJmpTrue { a, b, .. } => {
            ir!(a);
            ir!(b);
        }
        Instr::IAddImm { a, .. }
        | Instr::ICmpImmJmpFalse { a, .. }
        | Instr::ICmpImmJmpTrue { a, .. } => ir!(a),
        Instr::ILoad { idx, .. } => ir!(idx),
        Instr::IStore { idx, src, .. } => {
            ir!(idx);
            ir!(src);
        }
        Instr::JmpIfFalse { cond, .. } | Instr::JmpIfTrue { cond, .. } => ir!(cond),
        Instr::AllocF { len, .. } | Instr::AllocI { len, .. } => ir!(len),
        Instr::RetF { src } => fr!(*src),
        Instr::RetI { src } | Instr::RetB { src } => ir!(src),
    }
}

/// The scalar register the instruction writes, if any.
pub(crate) fn write_of(ins: &Instr) -> Option<Reg> {
    match ins {
        Instr::FConst { dst, .. }
        | Instr::FMov { dst, .. }
        | Instr::FAdd { dst, .. }
        | Instr::FSub { dst, .. }
        | Instr::FMul { dst, .. }
        | Instr::FDiv { dst, .. }
        | Instr::FNeg { dst, .. }
        | Instr::FRound { dst, .. }
        | Instr::FIntr1 { dst, .. }
        | Instr::FIntr2 { dst, .. }
        | Instr::FIntr1Round { dst, .. }
        | Instr::FIntr2Round { dst, .. }
        | Instr::FLoad { dst, .. }
        | Instr::I2F { dst, .. }
        | Instr::TPopF { dst }
        | Instr::FMulAdd { dst, .. }
        | Instr::FAddRound { dst, .. }
        | Instr::FSubRound { dst, .. }
        | Instr::FMulRound { dst, .. }
        | Instr::FDivRound { dst, .. }
        | Instr::FAddC { dst, .. }
        | Instr::FSubC { dst, .. }
        | Instr::FSubCR { dst, .. }
        | Instr::FMulC { dst, .. }
        | Instr::FDivC { dst, .. }
        | Instr::FDivCR { dst, .. }
        | Instr::FLoadOff { dst, .. } => Some(Reg::F(dst.0)),
        Instr::FCmp { dst, .. }
        | Instr::F2I { dst, .. }
        | Instr::IConst { dst, .. }
        | Instr::IMov { dst, .. }
        | Instr::IAdd { dst, .. }
        | Instr::ISub { dst, .. }
        | Instr::IMul { dst, .. }
        | Instr::IDiv { dst, .. }
        | Instr::IRem { dst, .. }
        | Instr::INeg { dst, .. }
        | Instr::ICmp { dst, .. }
        | Instr::ILoad { dst, .. }
        | Instr::BNot { dst, .. }
        | Instr::TPopI { dst }
        | Instr::IAddImm { dst, .. } => Some(Reg::I(dst.0)),
        Instr::FStore { .. }
        | Instr::FStoreOff { .. }
        | Instr::IStore { .. }
        | Instr::Jmp { .. }
        | Instr::JmpIfFalse { .. }
        | Instr::JmpIfTrue { .. }
        | Instr::FCmpJmpFalse { .. }
        | Instr::FCmpJmpTrue { .. }
        | Instr::ICmpJmpFalse { .. }
        | Instr::ICmpJmpTrue { .. }
        | Instr::ICmpImmJmpFalse { .. }
        | Instr::ICmpImmJmpTrue { .. }
        | Instr::TPushF { .. }
        | Instr::TPushI { .. }
        | Instr::AllocF { .. }
        | Instr::AllocI { .. }
        | Instr::RetF { .. }
        | Instr::RetI { .. }
        | Instr::RetB { .. }
        | Instr::RetVoid
        | Instr::TrapMissingReturn => None,
    }
}

/// Successor program points of the instruction at `pc`; `None` marks a
/// function exit (return or fall-off-the-end).
pub(crate) fn successors(ins: &Instr, pc: usize, out: &mut [Option<usize>; 2]) -> bool {
    // Returns `false` when the instruction exits the function.
    *out = [None, None];
    match ins {
        Instr::Jmp { target } => {
            out[0] = Some(*target as usize);
            true
        }
        Instr::JmpIfFalse { target, .. }
        | Instr::JmpIfTrue { target, .. }
        | Instr::FCmpJmpFalse { target, .. }
        | Instr::FCmpJmpTrue { target, .. }
        | Instr::ICmpJmpFalse { target, .. }
        | Instr::ICmpJmpTrue { target, .. }
        | Instr::ICmpImmJmpFalse { target, .. }
        | Instr::ICmpImmJmpTrue { target, .. } => {
            out[0] = Some(*target as usize);
            out[1] = Some(pc + 1);
            true
        }
        Instr::RetF { .. }
        | Instr::RetI { .. }
        | Instr::RetB { .. }
        | Instr::RetVoid
        | Instr::TrapMissingReturn => false,
        _ => {
            out[0] = Some(pc + 1);
            true
        }
    }
}

struct Analysis {
    f_param: Vec<bool>,
    i_param: Vec<bool>,
    is_target: Vec<bool>,
    /// Scratch for [`Analysis::dead_after`] (reused across queries).
    visited: std::cell::RefCell<Vec<bool>>,
}

impl Analysis {
    fn of(func: &CompiledFunction) -> Self {
        let mut a = Analysis {
            f_param: vec![false; func.n_fregs as usize],
            i_param: vec![false; func.n_iregs as usize],
            is_target: vec![false; func.instrs.len() + 1],
            visited: std::cell::RefCell::new(vec![false; func.instrs.len()]),
        };
        for ins in &func.instrs {
            match ins {
                Instr::Jmp { target }
                | Instr::JmpIfFalse { target, .. }
                | Instr::JmpIfTrue { target, .. }
                | Instr::FCmpJmpFalse { target, .. }
                | Instr::FCmpJmpTrue { target, .. }
                | Instr::ICmpJmpFalse { target, .. }
                | Instr::ICmpJmpTrue { target, .. }
                | Instr::ICmpImmJmpFalse { target, .. }
                | Instr::ICmpImmJmpTrue { target, .. } => {
                    if let Some(t) = a.is_target.get_mut(*target as usize) {
                        *t = true;
                    }
                }
                _ => {}
            }
        }
        for p in &func.params {
            match p.kind {
                ParamKind::F(_) => a.f_param[p.reg as usize] = true,
                ParamKind::I | ParamKind::B => a.i_param[p.reg as usize] = true,
                ParamKind::FArr(_) | ParamKind::IArr => {}
            }
        }
        a
    }

    fn is_param(&self, reg: Reg) -> bool {
        match reg {
            Reg::F(r) => self.f_param.get(r as usize).copied().unwrap_or(false),
            Reg::I(r) => self.i_param.get(r as usize).copied().unwrap_or(false),
        }
    }

    /// `true` when `reg` is dead at every program point in `starts`: no
    /// path reads it before writing it. Function exits count as reads of
    /// parameter registers (call teardown copies them back).
    ///
    /// The compiler reuses temporary registers across statements, so this
    /// reachability query (rather than a global read count) is what makes
    /// the fusion patterns actually fire: a temp's next use is always
    /// preceded by a fresh write, which terminates the search.
    fn dead_after(&self, func: &CompiledFunction, starts: &[usize], reg: Reg) -> bool {
        let instrs = &func.instrs;
        let mut visited = self.visited.borrow_mut();
        visited.iter_mut().for_each(|v| *v = false);
        let mut stack: Vec<usize> = Vec::with_capacity(8);
        let exit_reads = self.is_param(reg);
        for &s in starts {
            if s >= instrs.len() {
                if exit_reads {
                    return false;
                }
            } else {
                stack.push(s);
            }
        }
        while let Some(pc) = stack.pop() {
            if visited[pc] {
                continue;
            }
            visited[pc] = true;
            let ins = &instrs[pc];
            let mut read = false;
            for_each_read(ins, |r| read |= r == reg);
            if read {
                return false;
            }
            if write_of(ins) == Some(reg) {
                continue; // overwritten: this path is safe
            }
            let mut succ = [None, None];
            if !successors(ins, pc, &mut succ) && exit_reads {
                return false;
            }
            for s in succ.into_iter().flatten() {
                if s >= instrs.len() {
                    if exit_reads {
                        return false;
                    }
                } else if !visited[s] {
                    stack.push(s);
                }
            }
        }
        true
    }
}

/// One fusion decision: the replacement instructions and the number of
/// original instructions they consume.
struct Rewrite {
    out: [Option<Instr>; 2],
    width: usize,
}

impl Rewrite {
    fn one(ins: Instr, width: usize) -> Option<Rewrite> {
        Some(Rewrite {
            out: [Some(ins), None],
            width,
        })
    }

    fn two(first: Instr, second: Instr, width: usize) -> Option<Rewrite> {
        Some(Rewrite {
            out: [Some(first), Some(second)],
            width,
        })
    }
}

/// Runs [`fuse_function`] to fixpoint: one pass's rewrites expose new
/// windows to the next (a constant-operand op followed by the `Mov` that
/// stored its temp, a compare freshly adjacent to its branch, …). Every
/// rewrite strictly shrinks the stream, so this terminates; the returned
/// stats are the accumulated totals. This is what [`crate::compile`]
/// invokes.
pub fn fuse_to_fixpoint(func: &mut CompiledFunction) -> FuseStats {
    let mut acc = FuseStats::default();
    loop {
        let pass = fuse_function(func);
        if pass.total() == 0 {
            return acc;
        }
        acc += pass;
    }
}

/// Fuses `func` in place (one pass); returns what happened. Callers
/// wanting the full effect run [`fuse_to_fixpoint`] — a single pass can
/// expose further windows.
pub fn fuse_function(func: &mut CompiledFunction) -> FuseStats {
    // The pass rewrites the instruction stream, so any packed form is
    // stale; [`crate::compile`] re-packs after fusing.
    func.packed = None;
    let analysis = Analysis::of(func);
    let mut stats = FuseStats::default();
    let old_len = func.instrs.len();
    let mut out: Vec<Instr> = Vec::with_capacity(old_len);
    let mut out_spans = Vec::with_capacity(old_len);
    // old instruction index → new index (old_len maps to the new end).
    let mut remap: Vec<u32> = vec![0; old_len + 1];

    let mut pc = 0usize;
    while pc < old_len {
        let rewrite = match_window(func, &analysis, pc, &mut stats);
        let (instrs_out, width) = match rewrite {
            Some(Rewrite { out, width }) => (out, width),
            None => ([Some(func.instrs[pc].clone()), None], 1),
        };
        remap[pc..pc + width].fill(out.len() as u32);
        // The fused window traps/behaves as its final original
        // instruction; keep that span for diagnostics.
        let span = func.spans[pc + width - 1];
        for ins in instrs_out.into_iter().flatten() {
            out.push(ins);
            out_spans.push(span);
        }
        pc += width;
    }
    remap[old_len] = out.len() as u32;

    for ins in &mut out {
        match ins {
            Instr::Jmp { target }
            | Instr::JmpIfFalse { target, .. }
            | Instr::JmpIfTrue { target, .. }
            | Instr::FCmpJmpFalse { target, .. }
            | Instr::FCmpJmpTrue { target, .. }
            | Instr::ICmpJmpFalse { target, .. }
            | Instr::ICmpJmpTrue { target, .. }
            | Instr::ICmpImmJmpFalse { target, .. }
            | Instr::ICmpImmJmpTrue { target, .. } => *target = remap[*target as usize],
            _ => {}
        }
    }
    func.instrs = out;
    func.spans = out_spans;
    stats
}

/// Tries every fusion pattern anchored at `pc`: the shape-specific
/// patterns first, then generic copy elimination.
fn match_window(
    func: &CompiledFunction,
    analysis: &Analysis,
    pc: usize,
    stats: &mut FuseStats,
) -> Option<Rewrite> {
    match_specific(func, analysis, pc, stats).or_else(|| mov_elim(func, analysis, pc, stats))
}

/// Generic copy elimination: any instruction that writes a scalar
/// register `t`, immediately followed by a same-file `Mov d ← t` with `t`
/// dead afterwards, is retargeted to write `d` directly. This collapses
/// the compiler's compute-into-temp / move-into-variable idiom (3 of the
/// 13 instructions in a typical inner loop) and composes with the other
/// patterns across fixpoint passes.
fn mov_elim(
    func: &CompiledFunction,
    analysis: &Analysis,
    pc: usize,
    stats: &mut FuseStats,
) -> Option<Rewrite> {
    let ins = func.instrs.get(pc)?;
    let t = write_of(ins)?;
    if analysis.is_target[pc + 1] {
        return None;
    }
    let d = match (t, func.instrs.get(pc + 1)?) {
        (Reg::F(tr), &Instr::FMov { dst, src }) if src.0 == tr => Reg::F(dst.0),
        (Reg::I(tr), &Instr::IMov { dst, src }) if src.0 == tr => Reg::I(dst.0),
        _ => return None,
    };
    if d == t || !analysis.dead_after(func, &[pc + 2], t) {
        return None;
    }
    let retargeted = with_dst(ins, d)?;
    stats.mov_elim += 1;
    Rewrite::one(retargeted, 2)
}

/// The instruction with its scalar destination replaced by `d` (same
/// register file). `None` for instructions this does not apply to.
fn with_dst(ins: &Instr, d: Reg) -> Option<Instr> {
    let mut out = ins.clone();
    let new = match (&mut out, d) {
        (Instr::FConst { dst, .. }, Reg::F(r))
        | (Instr::FMov { dst, .. }, Reg::F(r))
        | (Instr::FAdd { dst, .. }, Reg::F(r))
        | (Instr::FSub { dst, .. }, Reg::F(r))
        | (Instr::FMul { dst, .. }, Reg::F(r))
        | (Instr::FDiv { dst, .. }, Reg::F(r))
        | (Instr::FNeg { dst, .. }, Reg::F(r))
        | (Instr::FRound { dst, .. }, Reg::F(r))
        | (Instr::FIntr1 { dst, .. }, Reg::F(r))
        | (Instr::FIntr2 { dst, .. }, Reg::F(r))
        | (Instr::FIntr1Round { dst, .. }, Reg::F(r))
        | (Instr::FIntr2Round { dst, .. }, Reg::F(r))
        | (Instr::FLoad { dst, .. }, Reg::F(r))
        | (Instr::I2F { dst, .. }, Reg::F(r))
        | (Instr::TPopF { dst }, Reg::F(r))
        | (Instr::FMulAdd { dst, .. }, Reg::F(r))
        | (Instr::FAddRound { dst, .. }, Reg::F(r))
        | (Instr::FSubRound { dst, .. }, Reg::F(r))
        | (Instr::FMulRound { dst, .. }, Reg::F(r))
        | (Instr::FDivRound { dst, .. }, Reg::F(r))
        | (Instr::FAddC { dst, .. }, Reg::F(r))
        | (Instr::FSubC { dst, .. }, Reg::F(r))
        | (Instr::FSubCR { dst, .. }, Reg::F(r))
        | (Instr::FMulC { dst, .. }, Reg::F(r))
        | (Instr::FDivC { dst, .. }, Reg::F(r))
        | (Instr::FDivCR { dst, .. }, Reg::F(r))
        | (Instr::FLoadOff { dst, .. }, Reg::F(r)) => {
            *dst = FReg(r);
            true
        }
        (Instr::FCmp { dst, .. }, Reg::I(r))
        | (Instr::F2I { dst, .. }, Reg::I(r))
        | (Instr::IConst { dst, .. }, Reg::I(r))
        | (Instr::IMov { dst, .. }, Reg::I(r))
        | (Instr::IAdd { dst, .. }, Reg::I(r))
        | (Instr::ISub { dst, .. }, Reg::I(r))
        | (Instr::IMul { dst, .. }, Reg::I(r))
        | (Instr::IDiv { dst, .. }, Reg::I(r))
        | (Instr::IRem { dst, .. }, Reg::I(r))
        | (Instr::INeg { dst, .. }, Reg::I(r))
        | (Instr::ICmp { dst, .. }, Reg::I(r))
        | (Instr::ILoad { dst, .. }, Reg::I(r))
        | (Instr::BNot { dst, .. }, Reg::I(r))
        | (Instr::TPopI { dst }, Reg::I(r))
        | (Instr::IAddImm { dst, .. }, Reg::I(r)) => {
            *dst = IReg(r);
            true
        }
        _ => false,
    };
    new.then_some(out)
}

/// Tries the shape-specific fusion patterns anchored at `pc`.
fn match_specific(
    func: &CompiledFunction,
    analysis: &Analysis,
    pc: usize,
    stats: &mut FuseStats,
) -> Option<Rewrite> {
    let instrs = &func.instrs;
    let at = |k: usize| instrs.get(pc + k);
    // Inner window instructions must not be jump targets: no path may
    // enter the middle of a fused sequence.
    let free = |k: usize| !analysis.is_target[pc + k];
    // The eliminated temp is dead right after the window (which starts at
    // `pc + width`; the last window instruction here is never a branch).
    let dead_f = |width: usize, r: FReg| analysis.dead_after(func, &[pc + width], Reg::F(r.0));
    let dead_i = |width: usize, r: IReg| analysis.dead_after(func, &[pc + width], Reg::I(r.0));

    match *at(0)? {
        // IConst t ; IAdd … — address arithmetic and loop increments —
        // or IConst t ; ICmpJmp… — the constant-bound loop test.
        Instr::IConst { dst: t, v } => {
            if let Some(&Instr::IAdd { dst: u, a, b }) = at(1) {
                if !free(1) {
                    return None;
                }
                let base = other_operand(Reg::I(t.0), Reg::I(a.0), Reg::I(b.0))?;
                let base = IReg(base);
                // 3-instruction form: the sum feeds an array access.
                if free(2) && u != t && i32::try_from(v).is_ok() {
                    match at(2) {
                        Some(&Instr::FLoad { dst, arr, idx })
                            if idx == u && dead_i(3, u) && dead_i(3, t) =>
                        {
                            stats.load_off += 1;
                            return Rewrite::one(
                                Instr::FLoadOff {
                                    dst,
                                    arr,
                                    base,
                                    off: v as i32,
                                },
                                3,
                            );
                        }
                        Some(&Instr::FStore { arr, idx, src })
                            if idx == u && dead_i(3, u) && dead_i(3, t) =>
                        {
                            stats.store_off += 1;
                            return Rewrite::one(
                                Instr::FStoreOff {
                                    arr,
                                    base,
                                    off: v as i32,
                                    src,
                                },
                                3,
                            );
                        }
                        _ => {}
                    }
                }
                // 2-instruction form: plain add-immediate.
                if u == t || dead_i(2, t) {
                    stats.add_imm += 1;
                    return Rewrite::one(
                        Instr::IAddImm {
                            dst: u,
                            a: base,
                            imm: v,
                        },
                        2,
                    );
                }
                return None;
            }
            // IConst t ; ICmpJmpFalse/True involving t → immediate
            // compare-and-branch (the `i <= 5` inner-loop test). Kept to
            // i16 immediates so the packed encoding always fits.
            if i16::try_from(v).is_err() {
                return None;
            }
            let (op, a, b, target, neg) = match *at(1)? {
                Instr::ICmpJmpFalse { op, a, b, target } if free(1) => (op, a, b, target, true),
                Instr::ICmpJmpTrue { op, a, b, target } if free(1) => (op, a, b, target, false),
                _ => return None,
            };
            // Normalize the constant onto the right: mirror the operator
            // when the constant is the left operand.
            let (op, reg) = if b == t && a != t {
                (op, a)
            } else if a == t && b != t {
                (op.mirror(), b)
            } else {
                return None;
            };
            if !analysis.dead_after(func, &[target as usize, pc + 2], Reg::I(t.0)) {
                return None;
            }
            stats.const_op += 1;
            let ins = if neg {
                Instr::ICmpImmJmpFalse {
                    op,
                    a: reg,
                    imm: v,
                    target,
                }
            } else {
                Instr::ICmpImmJmpTrue {
                    op,
                    a: reg,
                    imm: v,
                    target,
                }
            };
            Rewrite::one(ins, 2)
        }
        // FConst t ; arithmetic using t → constant-operand form: the
        // constant stops being re-materialized on every loop iteration.
        Instr::FConst { dst: t, v } => {
            let (ins, dst) = match *at(1)? {
                Instr::FAdd { dst, a: x, b: y } if free(1) => {
                    let o = FReg(other_operand(Reg::F(t.0), Reg::F(x.0), Reg::F(y.0))?);
                    (Instr::FAddC { dst, a: o, k: v }, dst)
                }
                Instr::FMul { dst, a: x, b: y } if free(1) => {
                    let o = FReg(other_operand(Reg::F(t.0), Reg::F(x.0), Reg::F(y.0))?);
                    (Instr::FMulC { dst, a: o, k: v }, dst)
                }
                Instr::FSub { dst, a: x, b: y } if free(1) && y == t && x != t => {
                    (Instr::FSubC { dst, a: x, k: v }, dst)
                }
                Instr::FSub { dst, a: x, b: y } if free(1) && x == t && y != t => {
                    (Instr::FSubCR { dst, k: v, a: y }, dst)
                }
                Instr::FDiv { dst, a: x, b: y } if free(1) && y == t && x != t => {
                    (Instr::FDivC { dst, a: x, k: v }, dst)
                }
                Instr::FDiv { dst, a: x, b: y } if free(1) && x == t && y != t => {
                    (Instr::FDivCR { dst, k: v, a: y }, dst)
                }
                _ => return None,
            };
            if dst == t || dead_f(2, t) {
                stats.const_op += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }
        // FMul t,a,b ; [FConst k ;] FAdd d,t,c  →  FMulAdd.
        Instr::FMul { dst: t, a, b } => {
            match *at(1)? {
                Instr::FAdd { dst, a: x, b: y } if free(1) => {
                    let c = FReg(other_operand(Reg::F(t.0), Reg::F(x.0), Reg::F(y.0))?);
                    if dst == t || dead_f(2, t) {
                        stats.mul_add += 1;
                        return Rewrite::one(Instr::FMulAdd { dst, a, b, c }, 2);
                    }
                    None
                }
                // The addend constant is often materialized between the
                // mul and the add (`x * y + 3.5`); hoist it above the
                // fused op. Safe when the constant register is distinct
                // from the product and the mul operands.
                Instr::FConst { dst: k, v } if free(1) && k != t && k != a && k != b => {
                    let &Instr::FAdd { dst, a: x, b: y } = at(2)? else {
                        return None;
                    };
                    if !free(2) {
                        return None;
                    }
                    let c = FReg(other_operand(Reg::F(t.0), Reg::F(x.0), Reg::F(y.0))?);
                    if dst == t || dead_f(3, t) {
                        stats.mul_add += 1;
                        return Rewrite::two(
                            Instr::FConst { dst: k, v },
                            Instr::FMulAdd { dst, a, b, c },
                            3,
                        );
                    }
                    None
                }
                Instr::FRound { dst, src, ty } if free(1) && src == t => {
                    if dst == t || dead_f(2, t) {
                        stats.op_round += 1;
                        return Rewrite::one(Instr::FMulRound { dst, a, b, ty }, 2);
                    }
                    None
                }
                _ => None,
            }
        }
        // FAdd/FSub/FDiv t,a,b ; FRound d,t  →  fused op+round.
        Instr::FAdd { dst: t, a, b } => fuse_round(at(1), free(1), t, |dst, ty| Instr::FAddRound {
            dst,
            a,
            b,
            ty,
        })
        .and_then(|(ins, dst)| {
            if dst == t || dead_f(2, t) {
                stats.op_round += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }),
        Instr::FSub { dst: t, a, b } => fuse_round(at(1), free(1), t, |dst, ty| Instr::FSubRound {
            dst,
            a,
            b,
            ty,
        })
        .and_then(|(ins, dst)| {
            if dst == t || dead_f(2, t) {
                stats.op_round += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }),
        Instr::FDiv { dst: t, a, b } => fuse_round(at(1), free(1), t, |dst, ty| Instr::FDivRound {
            dst,
            a,
            b,
            ty,
        })
        .and_then(|(ins, dst)| {
            if dst == t || dead_f(2, t) {
                stats.op_round += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }),
        // FIntr1/FIntr2 t,… ; FRound d,t  →  fused intrinsic+round (the
        // `float y = sin(x)` idiom in demoted code).
        Instr::FIntr1 { dst: t, intr, a } => fuse_round(at(1), free(1), t, |dst, ty| {
            Instr::FIntr1Round { dst, intr, a, ty }
        })
        .and_then(|(ins, dst)| {
            if dst == t || dead_f(2, t) {
                stats.intr_round += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }),
        Instr::FIntr2 { dst: t, intr, a, b } => {
            fuse_round(at(1), free(1), t, |dst, ty| Instr::FIntr2Round {
                dst,
                intr,
                a,
                b,
                ty,
            })
            .and_then(|(ins, dst)| {
                if dst == t || dead_f(2, t) {
                    stats.intr_round += 1;
                    Rewrite::one(ins, 2)
                } else {
                    None
                }
            })
        }
        // FMov t,s ; FRound d,t  →  FRound d,s (the demoted-assignment
        // copy; the round reads through the mov).
        Instr::FMov { dst: t, src } => {
            fuse_round(at(1), free(1), t, |dst, ty| Instr::FRound { dst, src, ty }).and_then(
                |(ins, dst)| {
                    if dst == t || dead_f(2, t) {
                        stats.mov_round += 1;
                        Rewrite::one(ins, 2)
                    } else {
                        None
                    }
                },
            )
        }
        // FCmp/ICmp t ; JmpIfFalse/True t  →  compare-and-branch. The
        // condition register is not written by the fused form, so it must
        // be dead along both branch successors.
        Instr::FCmp { dst: t, op, a, b } => {
            let (ins, target) = match *at(1)? {
                Instr::JmpIfFalse { cond, target } if free(1) && cond == t => {
                    (Instr::FCmpJmpFalse { op, a, b, target }, target)
                }
                Instr::JmpIfTrue { cond, target } if free(1) && cond == t => {
                    (Instr::FCmpJmpTrue { op, a, b, target }, target)
                }
                _ => return None,
            };
            if analysis.dead_after(func, &[target as usize, pc + 2], Reg::I(t.0)) {
                stats.cmp_branch += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }
        Instr::ICmp { dst: t, op, a, b } => {
            if a == t || b == t {
                return None;
            }
            let (ins, target) = match *at(1)? {
                Instr::JmpIfFalse { cond, target } if free(1) && cond == t => {
                    (Instr::ICmpJmpFalse { op, a, b, target }, target)
                }
                Instr::JmpIfTrue { cond, target } if free(1) && cond == t => {
                    (Instr::ICmpJmpTrue { op, a, b, target }, target)
                }
                _ => return None,
            };
            if analysis.dead_after(func, &[target as usize, pc + 2], Reg::I(t.0)) {
                stats.cmp_branch += 1;
                Rewrite::one(ins, 2)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Matches `FRound d, t, ty` following an arithmetic op that wrote `t`.
fn fuse_round(
    next: Option<&Instr>,
    free: bool,
    t: FReg,
    make: impl FnOnce(FReg, chef_ir::types::FloatTy) -> Instr,
) -> Option<(Instr, FReg)> {
    match next? {
        &Instr::FRound { dst, src, ty } if free && src == t => Some((make(dst, ty), dst)),
        _ => None,
    }
}

/// When exactly one of `x`/`y` equals `t`, returns the raw index of the
/// other operand.
fn other_operand(t: Reg, x: Reg, y: Reg) -> Option<u32> {
    let raw = |r: Reg| match r {
        Reg::F(v) | Reg::I(v) => v,
    };
    match (x == t, y == t) {
        (true, false) => Some(raw(y)),
        (false, true) => Some(raw(x)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::value::ArgValue;
    use crate::vm::run;
    use chef_ir::parser::parse_program;
    use chef_ir::typeck::check_program;

    fn compile_unfused(src: &str) -> CompiledFunction {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let opts = CompileOptions {
            fuse: false,
            // A pristine stream: these tests drive `fuse_function`
            // by hand and match on exact pre-fusion shapes, which the
            // CFG tier's LICM would rearrange (e.g. hoisting the loop
            // constants `IAddImm` fusion wants to see in the body).
            cfg: false,
            ..Default::default()
        };
        compile(&p.functions[0], &opts).unwrap()
    }

    #[test]
    fn loop_condition_and_increment_fuse() {
        let mut f = compile_unfused(
            "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += 1.0; } return s; }",
        );
        let stats = fuse_function(&mut f);
        assert!(stats.cmp_branch >= 1, "{stats:?}\n{}", f.disassemble());
        assert!(stats.add_imm >= 1, "{stats:?}\n{}", f.disassemble());
        let out = run(&f, vec![ArgValue::I(100)]).unwrap();
        assert_eq!(out.ret_f(), 100.0);
    }

    #[test]
    fn mul_add_fuses_and_matches_unfused() {
        let src = "double f(double x, double y) { return x * y + 3.5; }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.mul_add >= 1, "{stats:?}\n{}", fused.disassemble());
        let a = run(&fused, vec![ArgValue::F(1.1), ArgValue::F(2.2)]).unwrap();
        let b = run(&unfused, vec![ArgValue::F(1.1), ArgValue::F(2.2)]).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
    }

    #[test]
    fn mul_add_is_not_an_fma() {
        // The fused form must round the product before the add, exactly
        // like the two original instructions.
        let src = "double f(double x, double y, double z) { return x * y + z; }";
        let mut fused = compile_unfused(src);
        fuse_function(&mut fused);
        assert!(fused
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::FMulAdd { .. })));
        let (x, y, z) = (1.0 + 2f64.powi(-30), 1.0 + 2f64.powi(-30), -1.0);
        let expect = x * y + z; // two roundings
        let fma = x.mul_add(y, z); // one rounding — must NOT match
        let got = run(&fused, vec![ArgValue::F(x), ArgValue::F(y), ArgValue::F(z)])
            .unwrap()
            .ret_f();
        assert_eq!(got.to_bits(), expect.to_bits());
        assert_ne!(got.to_bits(), fma.to_bits());
    }

    #[test]
    fn demoted_arithmetic_fuses_op_round() {
        let src = "float f(float x, float y) { float z; z = x * y; return z; }";
        let mut fused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.op_round >= 1, "{stats:?}\n{}", fused.disassemble());
        assert!(
            fused
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::FMulRound { .. })),
            "{}",
            fused.disassemble()
        );
        // Same rounding behaviour as the unfused program.
        let unfused = compile_unfused(src);
        let args = vec![ArgValue::F(1.0 / 3.0), ArgValue::F(3.0 / 7.0)];
        let a = run(&fused, args.clone()).unwrap();
        let b = run(&unfused, args).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
    }

    #[test]
    fn constant_offset_array_access_fuses() {
        let src = "double f(double a[], int i) { return a[i + 1] + a[i - 0]; }";
        let mut fused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.load_off >= 1, "{stats:?}\n{}", fused.disassemble());
        let out = run(
            &fused,
            vec![ArgValue::FArr(vec![10.0, 20.0, 30.0]), ArgValue::I(1)],
        )
        .unwrap();
        assert_eq!(out.ret_f(), 30.0 + 20.0);
    }

    #[test]
    fn constant_offset_store_fuses() {
        let src = "void f(double a[], int i, double v) { a[i + 2] = v; }";
        let mut fused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.store_off >= 1, "{stats:?}\n{}", fused.disassemble());
        let out = run(
            &fused,
            vec![
                ArgValue::FArr(vec![0.0; 5]),
                ArgValue::I(1),
                ArgValue::F(9.5),
            ],
        )
        .unwrap();
        assert_eq!(out.args[0].as_farr(), &[0.0, 0.0, 0.0, 9.5, 0.0]);
    }

    #[test]
    fn fused_load_still_bounds_checks() {
        let src = "double f(double a[], int i) { return a[i + 1]; }";
        let mut fused = compile_unfused(src);
        fuse_function(&mut fused);
        let err = run(&fused, vec![ArgValue::FArr(vec![1.0, 2.0]), ArgValue::I(5)]).unwrap_err();
        assert!(
            matches!(err.kind, crate::vm::TrapKind::OobIndex { idx: 6, len: 2 }),
            "{err:?}"
        );
    }

    #[test]
    fn jump_targets_survive_fusion() {
        // Nested control flow with fusable windows before and after the
        // branches: all jumps must land where they used to.
        let src = "double f(int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { s += i * 1.5 + 0.25; } else { s -= 0.5; }
            }
            return s;
        }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        let stats = fuse_function(&mut fused);
        assert!(stats.total() > 0);
        for n in [0i64, 1, 2, 7, 100] {
            let a = run(&fused, vec![ArgValue::I(n)]).unwrap();
            let b = run(&unfused, vec![ArgValue::I(n)]).unwrap();
            assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits(), "n={n}");
        }
    }

    #[test]
    fn fixpoint_is_stable() {
        let src = "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += i * 2.0 + 1.0; } return s; }";
        let mut f = compile_unfused(src);
        let first = fuse_to_fixpoint(&mut f);
        assert!(first.total() > 0);
        let snapshot = f.instrs.clone();
        let again = fuse_function(&mut f);
        assert_eq!(again.total(), 0, "{again:?}");
        assert_eq!(f.instrs, snapshot);
    }

    #[test]
    fn intrinsic_round_fuses_and_matches_unfused() {
        let src =
            "float f(float x) { float y; y = sin(x) + 0.0; float z; z = pow(y, 2.0); return z; }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        let stats = fuse_to_fixpoint(&mut fused);
        assert!(stats.intr_round >= 1, "{stats:?}\n{}", fused.disassemble());
        let args = vec![ArgValue::F(0.7)];
        let a = run(&fused, args.clone()).unwrap();
        let b = run(&unfused, args).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
        assert!(a.stats.instrs_executed < b.stats.instrs_executed);
    }

    #[test]
    fn mov_round_collapses_to_single_round() {
        use chef_ir::span::Span;
        use chef_ir::types::FloatTy;
        // The compiler mostly emits FRound directly, so pin the window on
        // hand-built bytecode: FMov t←x ; FRound d←t must become
        // FRound d←x when t is dead.
        let mut f = CompiledFunction {
            name: "mr".into(),
            instrs: vec![
                Instr::FMov {
                    dst: FReg(1),
                    src: FReg(0),
                },
                Instr::FRound {
                    dst: FReg(2),
                    src: FReg(1),
                    ty: FloatTy::F32,
                },
                Instr::RetF { src: FReg(2) },
            ],
            spans: vec![Span::DUMMY; 3],
            n_fregs: 3,
            n_iregs: 0,
            n_aregs: 0,
            params: vec![ParamSpec {
                name: "x".into(),
                kind: ParamKind::F(FloatTy::F64),
                by_ref: false,
                reg: 0,
            }],
            ret: RetKind::F(FloatTy::F64),
            fvar_names: vec![],
            avar_names: vec![],
            packed: None,
        };
        let stats = fuse_to_fixpoint(&mut f);
        assert!(stats.mov_round >= 1, "{stats:?}\n{}", f.disassemble());
        assert!(matches!(
            f.instrs[0],
            Instr::FRound {
                dst: FReg(2),
                src: FReg(0),
                ty: FloatTy::F32
            }
        ));
        let x = 1.0 / 3.0;
        let out = run(&f, vec![ArgValue::F(x)]).unwrap();
        assert_eq!(out.ret_f(), x as f32 as f64);
    }

    #[test]
    fn loop_constants_fuse_into_operands() {
        // `k * 2.0` and `i <= 5` re-materialize constants every iteration
        // without the const+op patterns.
        let src = "double f(double x) {
            double k = 1.0;
            for (int j = 1; j <= 5; j++) { k = k * 2.0 + x / 4.0; }
            return k;
        }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        let stats = fuse_to_fixpoint(&mut fused);
        assert!(stats.const_op >= 2, "{stats:?}\n{}", fused.disassemble());
        assert!(
            fused
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::FMulC { .. })),
            "{}",
            fused.disassemble()
        );
        assert!(
            fused.instrs.iter().any(|i| matches!(
                i,
                Instr::ICmpImmJmpFalse { .. } | Instr::ICmpImmJmpTrue { .. }
            )),
            "{}",
            fused.disassemble()
        );
        let a = run(&fused, vec![ArgValue::F(0.123)]).unwrap();
        let b = run(&unfused, vec![ArgValue::F(0.123)]).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
    }

    #[test]
    fn copy_elimination_retargets_ops() {
        // `s = s + d` compiles to FAdd-into-temp + FMov-into-s; copy
        // elimination folds the mov away.
        let src = "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s = s + 1.5; } return s; }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        let stats = fuse_to_fixpoint(&mut fused);
        assert!(stats.mov_elim >= 1, "{stats:?}\n{}", fused.disassemble());
        assert!(
            !fused.instrs.iter().any(|i| matches!(i, Instr::FMov { .. })),
            "copies survived:\n{}",
            fused.disassemble()
        );
        let a = run(&fused, vec![ArgValue::I(1000)]).unwrap();
        let b = run(&unfused, vec![ArgValue::I(1000)]).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
        assert_eq!(a.ret_f(), 1500.0);
    }

    #[test]
    fn by_ref_param_register_is_not_dropped() {
        // `out` is a by-ref scalar: its register is read at call exit, so
        // fusion must never treat it as dead at a return.
        let src = "void f(double x, double &out) { out = x * 2.0 + 1.0; }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        fuse_function(&mut fused);
        let a = run(&fused, vec![ArgValue::F(3.0), ArgValue::F(0.0)]).unwrap();
        let b = run(&unfused, vec![ArgValue::F(3.0), ArgValue::F(0.0)]).unwrap();
        assert_eq!(a.args[1], b.args[1]);
        assert_eq!(a.args[1], ArgValue::F(7.0));
    }

    #[test]
    fn instruction_count_shrinks_on_app_style_loop() {
        let src = "double f(int n) {
            double s = 0.0;
            for (int i = 1; i <= n; i++) {
                double d = i * 0.001;
                s += d * d + 1.0;
            }
            return s;
        }";
        let mut fused = compile_unfused(src);
        let unfused = compile_unfused(src);
        fuse_function(&mut fused);
        let a = run(&fused, vec![ArgValue::I(1000)]).unwrap();
        let b = run(&unfused, vec![ArgValue::I(1000)]).unwrap();
        assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
        assert!(
            a.stats.instrs_executed < b.stats.instrs_executed,
            "fused {} !< unfused {}",
            a.stats.instrs_executed,
            b.stats.instrs_executed
        );
    }
}
