//! Deterministic fault injection for robustness tests and CI.
//!
//! A [`FaultPlan`] turns some calls of the VM (or the fused shadow
//! interpreter) into injected failures, so every recovery path of the
//! analysis pipeline — trap quarantine, panic isolation, non-finite
//! retry — can be exercised deterministically, without hand-crafting a
//! kernel that happens to fail. The plan is a pure arithmetic schedule
//! over a shared call counter:
//!
//! * every call through [`crate::vm::ExecOptions::fault`] **draws** one
//!   ordinal `n` from the plan's counter;
//! * the draw *fires* when `n % period == phase`;
//! * a fired draw injects one of three faults, either the plan's pinned
//!   [`FaultKind`] or (for a mixed plan) cycling trap → panic → NaN:
//!   - **Trap** clamps the run's instruction budget to the plan's
//!     `instr`, so the VM raises a genuine
//!     [`crate::vm::TrapKind::InstrBudgetExhausted`] at (about) the Nth
//!     instruction — the same trap, pc and span machinery as a real
//!     runaway loop;
//!   - **Panic** unwinds with `"chef-fault: injected panic"` before the
//!     dispatch loop starts, exercising `catch_unwind` isolation and
//!     mutex-poison recovery;
//!   - **NaN** poisons the first float parameter after binding and arms
//!     [`crate::vm::ExecOptions::trap_on_nonfinite`] for that run, so
//!     the poison is guaranteed to surface as an attributed
//!     [`crate::vm::TrapKind::NonFinite`] trap — a NaN left to flow can
//!     launder into a finite-but-*wrong* result (NaN comparisons are
//!     all false) and evade detection.
//!
//! Because `period ≥ 2` for any seeded plan, two consecutive draws never
//! both fire: a caller that retries a failed call exactly once always
//! sees the retry succeed, which is what lets the whole test suite stay
//! green under an injection seed — only the fault *counters* change.
//!
//! The counter is shared by all clones of a plan (`ExecOptions` is
//! cloned per worker thread), so the total number of fires over N draws
//! is exactly `|{ k < N : k % period == phase }|` regardless of thread
//! interleaving; only *which* call observes a given ordinal is
//! scheduling-dependent.
//!
//! In the style of `CHEF_EXEC_FUSE`/`CHEF_EXEC_PACK`, the environment
//! can install a process-wide plan: [`env_plan`] reads
//! `CHEF_FAULT_SEED` (u64; unset → no plan) and `CHEF_FAULT_KIND`
//! (`trap`|`panic`|`nan`|`mix`, default `mix`) once per process.
//! `chef-tuner` consults it whenever no explicit plan is configured,
//! which is how CI's fault-injection matrix drives the recovery paths
//! through the ordinary test suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The kind of an injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Clamp the instruction budget: the run traps with
    /// [`crate::vm::TrapKind::InstrBudgetExhausted`].
    Trap,
    /// Panic before the dispatch loop starts.
    Panic,
    /// Poison the first float parameter with NaN after binding.
    Nan,
}

/// A deterministic schedule of injected faults. See the module docs.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Pinned fault kind; `None` cycles trap → panic → NaN per fire.
    kind: Option<FaultKind>,
    /// A draw fires when `ordinal % period == phase`; `0` never fires.
    period: u64,
    phase: u64,
    /// Instruction budget installed by an injected trap.
    instr: u64,
    /// Draw counter, shared across clones of this plan.
    ticks: Arc<AtomicU64>,
}

impl FaultPlan {
    /// A plan firing `kind` (or the trap→panic→NaN cycle when `None`)
    /// on every draw whose ordinal is `phase` modulo `period`, with a
    /// fresh counter. `period == 0` builds an inert plan that never
    /// fires; `period == 1` fires on *every* draw, which defeats
    /// retry-once recovery — seeded plans always use `period ≥ 2`.
    pub fn new(kind: Option<FaultKind>, period: u64, phase: u64, instr: u64) -> Self {
        FaultPlan {
            kind,
            period,
            phase: phase % period.max(1),
            instr: instr.max(1),
            ticks: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Derives a plan from a seed (splitmix64): `period ∈ 3..8`,
    /// `phase < period`, `instr ∈ 8..64`.
    pub fn from_seed(seed: u64, kind: Option<FaultKind>) -> Self {
        let z = splitmix64(seed);
        let period = 3 + z % 5;
        FaultPlan::new(kind, period, (z >> 8) % period, 8 + (z >> 16) % 56)
    }

    /// Consumes one ordinal from the shared counter and reports the
    /// fault to inject, if this draw fires.
    pub fn draw(&self) -> Option<FaultKind> {
        if self.period == 0 {
            return None;
        }
        let n = self.ticks.fetch_add(1, Ordering::Relaxed);
        if n % self.period != self.phase {
            return None;
        }
        Some(self.kind.unwrap_or(match (n / self.period) % 3 {
            0 => FaultKind::Trap,
            1 => FaultKind::Panic,
            _ => FaultKind::Nan,
        }))
    }

    /// The instruction budget an injected trap installs.
    pub fn instr(&self) -> u64 {
        self.instr
    }

    /// Draws consumed so far (all clones share the counter).
    pub fn draws(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static ENV_PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();

/// The process-wide plan configured by `CHEF_FAULT_SEED` /
/// `CHEF_FAULT_KIND`, or `None` when the seed is unset or unparsable.
/// Read once per process; every returned clone shares one counter, so
/// the schedule is global across all consumers.
pub fn env_plan() -> Option<FaultPlan> {
    ENV_PLAN
        .get_or_init(|| {
            let seed: u64 = std::env::var("CHEF_FAULT_SEED").ok()?.trim().parse().ok()?;
            let kind = match std::env::var("CHEF_FAULT_KIND")
                .map(|v| v.trim().to_ascii_lowercase())
                .as_deref()
            {
                Ok("trap") => Some(FaultKind::Trap),
                Ok("panic") => Some(FaultKind::Panic),
                Ok("nan") => Some(FaultKind::Nan),
                _ => None, // "mix" (or unset): cycle all three
            };
            Some(FaultPlan::from_seed(seed, kind))
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_kind_pinned() {
        let a = FaultPlan::new(Some(FaultKind::Panic), 3, 1, 16);
        let b = FaultPlan::new(Some(FaultKind::Panic), 3, 1, 16);
        let seq_a: Vec<_> = (0..20).map(|_| a.draw()).collect();
        let seq_b: Vec<_> = (0..20).map(|_| b.draw()).collect();
        assert_eq!(seq_a, seq_b);
        for (k, d) in seq_a.iter().enumerate() {
            match d {
                Some(kind) => {
                    assert_eq!(k as u64 % 3, 1);
                    assert_eq!(*kind, FaultKind::Panic);
                }
                None => assert_ne!(k as u64 % 3, 1),
            }
        }
    }

    #[test]
    fn mixed_plan_cycles_all_three_kinds() {
        let p = FaultPlan::new(None, 2, 0, 16);
        let fired: Vec<_> = (0..12).filter_map(|_| p.draw()).collect();
        assert_eq!(
            fired,
            vec![
                FaultKind::Trap,
                FaultKind::Panic,
                FaultKind::Nan,
                FaultKind::Trap,
                FaultKind::Panic,
                FaultKind::Nan,
            ]
        );
    }

    #[test]
    fn clones_share_the_counter() {
        let p = FaultPlan::new(Some(FaultKind::Trap), 4, 0, 16);
        let q = p.clone();
        assert!(p.draw().is_some()); // ordinal 0 fires
        assert!(q.draw().is_none()); // the clone continues at ordinal 1
        assert_eq!(p.draws(), 2);
    }

    #[test]
    fn seeded_plans_are_retry_safe_and_vary_with_the_seed() {
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..32u64 {
            let p = FaultPlan::from_seed(seed, None);
            assert!(p.period >= 2, "retry-once must always succeed");
            assert!(p.phase < p.period);
            assert!(p.instr >= 1);
            distinct.insert((p.period, p.phase, p.instr));
        }
        assert!(distinct.len() > 8, "seeds should spread the schedule");
    }

    #[test]
    fn inert_plan_never_fires() {
        let p = FaultPlan::new(None, 0, 0, 16);
        assert!((0..100).all(|_| p.draw().is_none()));
    }
}
