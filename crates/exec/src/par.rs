//! A minimal scoped-thread parallel map, shared by the batch execution
//! APIs here and the candidate-validation loops in `chef-tuner`.
//!
//! The workspace builds offline (no rayon), so this wraps the one
//! fan-out shape the analysis loops need: consume a `Vec` of independent
//! inputs, apply `f`, and return the outputs **in input order**. Work is
//! split into contiguous chunks, one scoped thread per chunk, so there
//! is no work stealing — fine for the homogeneous workloads the engine
//! runs (same compiled function, different arguments).

/// Applies `f` to every item on a pool of scoped threads, preserving
/// input order. `max_threads = None` uses the machine's available
/// parallelism; tiny inputs (or `max_threads = Some(1)`) run inline
/// with no thread spawned.
pub fn parallel_map<T, R, F>(items: Vec<T>, max_threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_init(items, max_threads, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread (and once for the inline fallback), and `f` receives a
/// mutable borrow of that worker's state for every item it processes.
///
/// This is the shape the execution engine's batch APIs need — one
/// reusable [`crate::vm::Machine`] (or shadow machine) per worker,
/// amortized over the worker's whole chunk — without forcing the state
/// type into a `thread_local!` (which cannot be generic).
pub fn parallel_map_init<T, R, S, I, F>(
    items: Vec<T>,
    max_threads: Option<usize>,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads = max_threads.unwrap_or(hw).min(n).max(1);
    if threads <= 1 || n < 2 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let (f, init) = (&f, &init);
    std::thread::scope(|s| {
        for (res_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks_mut(chunk)) {
            s.spawn(move || {
                let mut state = init();
                for (slot, item) in res_chunk.iter_mut().zip(item_chunk.iter_mut()) {
                    let item = item.take().expect("each input is consumed once");
                    *slot = Some(f(&mut state, item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot is filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), Some(7), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallbacks_match() {
        let items: Vec<i32> = (0..10).collect();
        let a = parallel_map(items.clone(), Some(1), |x| x + 1);
        let b = parallel_map(items, Some(4), |x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn init_runs_once_per_worker_and_state_is_reused() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out = parallel_map_init(
            (0..40).collect::<Vec<i32>>(),
            Some(4),
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0i32 // per-worker running count
            },
            |seen, x| {
                *seen += 1;
                (x, *seen)
            },
        );
        // Order preserved, every item processed exactly once.
        assert_eq!(
            out.iter().map(|(x, _)| *x).collect::<Vec<_>>(),
            (0..40).collect::<Vec<_>>()
        );
        // At most one init per worker thread (4), each reused across its chunk.
        let inits = inits.load(Ordering::SeqCst);
        assert!((1..=4).contains(&inits), "{inits} inits");
        assert!(out.iter().any(|&(_, seen)| seen > 1), "state not reused");
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(
            parallel_map(Vec::<i32>::new(), None, |x| x),
            Vec::<i32>::new()
        );
        assert_eq!(parallel_map(vec![5], None, |x: i32| x * x), vec![25]);
    }
}
