//! A minimal scoped-thread parallel map, shared by the batch execution
//! APIs here and the candidate-validation loops in `chef-tuner`.
//!
//! The workspace builds offline (no rayon), so this wraps the one
//! fan-out shape the analysis loops need: consume a `Vec` of independent
//! inputs, apply `f`, and return the outputs **in input order**. Work is
//! split into contiguous chunks, one scoped thread per chunk, so there
//! is no work stealing — fine for the homogeneous workloads the engine
//! runs (same compiled function, different arguments).
//!
//! Items are **panic-isolated**: each application of `f` runs under
//! `catch_unwind`, a panicking item re-initializes its worker's state
//! (which may have been left mid-mutation) and every sibling item still
//! runs to completion; the first panic payload is re-raised once the
//! whole batch has finished. Callers that want panics as *values*
//! (chef-tuner's per-trial fault layer) wrap their own `catch_unwind`
//! inside `f`; the isolation here is the backstop that keeps one bad
//! trial from discarding a batch.

/// Applies `f` to every item on a pool of scoped threads, preserving
/// input order. `max_threads = None` uses the machine's available
/// parallelism; tiny inputs (or `max_threads = Some(1)`) run inline
/// with no thread spawned.
pub fn parallel_map<T, R, F>(items: Vec<T>, max_threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_init(items, max_threads, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread (and once for the inline fallback), and `f` receives a
/// mutable borrow of that worker's state for every item it processes.
///
/// This is the shape the execution engine's batch APIs need — one
/// reusable [`crate::vm::Machine`] (or shadow machine) per worker,
/// amortized over the worker's whole chunk — without forcing the state
/// type into a `thread_local!` (which cannot be generic).
pub fn parallel_map_init<T, R, S, I, F>(
    items: Vec<T>,
    max_threads: Option<usize>,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    let n = items.len();
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let threads = max_threads.unwrap_or(hw).min(n).max(1);
    let (f, init) = (&f, &init);
    // One worker's whole chunk, panic-isolated per item: a panic is
    // caught into the item's slot and rebuilds the state (the old one
    // may be mid-mutation), and the remaining items still run.
    let run_chunk = |item_chunk: &mut [Option<T>],
                     res_chunk: &mut [Option<std::thread::Result<R>>]| {
        let mut state = init();
        for (slot, item) in res_chunk.iter_mut().zip(item_chunk.iter_mut()) {
            let item = item.take().expect("each input is consumed once");
            let r = catch_unwind(AssertUnwindSafe(|| f(&mut state, item)));
            if r.is_err() {
                state = init();
            }
            *slot = Some(r);
        }
    };
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
    if threads <= 1 || n < 2 {
        run_chunk(&mut items, &mut results);
    } else {
        let chunk = n.div_ceil(threads);
        let run_chunk = &run_chunk;
        std::thread::scope(|s| {
            for (res_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks_mut(chunk)) {
                s.spawn(move || run_chunk(item_chunk, res_chunk));
            }
        });
    }
    // The first panic is still the caller's to observe — but only after
    // every sibling finished, so a recovering caller loses one item, not
    // the batch.
    let mut out = Vec::with_capacity(n);
    let mut first_panic = None;
    for r in results {
        match r.expect("every slot is filled by its worker") {
            Ok(v) => out.push(v),
            Err(p) => first_panic = first_panic.or(Some(p)),
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), Some(7), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallbacks_match() {
        let items: Vec<i32> = (0..10).collect();
        let a = parallel_map(items.clone(), Some(1), |x| x + 1);
        let b = parallel_map(items, Some(4), |x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn init_runs_once_per_worker_and_state_is_reused() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out = parallel_map_init(
            (0..40).collect::<Vec<i32>>(),
            Some(4),
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0i32 // per-worker running count
            },
            |seen, x| {
                *seen += 1;
                (x, *seen)
            },
        );
        // Order preserved, every item processed exactly once.
        assert_eq!(
            out.iter().map(|(x, _)| *x).collect::<Vec<_>>(),
            (0..40).collect::<Vec<_>>()
        );
        // At most one init per worker thread (4), each reused across its chunk.
        let inits = inits.load(Ordering::SeqCst);
        assert!((1..=4).contains(&inits), "{inits} inits");
        assert!(out.iter().any(|&(_, seen)| seen > 1), "state not reused");
    }

    #[test]
    fn a_panicking_item_does_not_take_its_siblings_down() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};
        let done = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..16).collect::<Vec<i32>>(), Some(4), |x| {
                if x == 5 {
                    panic!("injected");
                }
                done.fetch_add(1, Ordering::SeqCst);
                x
            })
        }));
        assert!(r.is_err(), "the panic must still reach the caller");
        assert_eq!(done.load(Ordering::SeqCst), 15, "all siblings completed");
    }

    #[test]
    fn worker_state_is_reinitialized_after_a_panicking_item() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_init(
                (0..6).collect::<Vec<i32>>(),
                Some(1),
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                },
                |(), x| {
                    if x == 2 {
                        panic!("injected");
                    }
                    x
                },
            )
        }));
        assert!(r.is_err());
        assert_eq!(
            inits.load(Ordering::SeqCst),
            2,
            "state is rebuilt after the panicking item"
        );
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(
            parallel_map(Vec::<i32>::new(), None, |x| x),
            Vec::<i32>::new()
        );
        assert_eq!(parallel_map(vec![5], None, |x: i32| x * x), vec![25]);
    }
}
