//! The runtime tape: the LIFO state-restoration stack of the adjoint.
//!
//! The forward sweep of a generated gradient pushes every to-be-overwritten
//! value (`Push(out(Li))` in the paper's Fig. 2); the backward sweep pops
//! them to restore the program state each adjoint statement needs. The tape
//! is also where the **memory story** of the paper lives:
//!
//! * CHEF-FP pushes only TBR-selected values → small tape;
//! * the ADAPT baseline records every elementary operation → large tape;
//! * the figures' "ADAPT runs out of memory" points are reproduced with
//!   [`Tape::with_limit`], which makes pushes fail past a byte budget.

/// Why a tape operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TapeError {
    /// The configured memory budget would be exceeded (the "OOM" of the
    /// paper's Figs. 4 and 7).
    OutOfMemory {
        /// The configured limit in bytes.
        limit_bytes: usize,
    },
    /// Pop on an empty tape — an unbalanced transformation (a bug in
    /// generated code; surfaced loudly rather than silently).
    Underflow,
}

impl std::fmt::Display for TapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapeError::OutOfMemory { limit_bytes } => {
                write!(f, "tape exceeded memory limit of {limit_bytes} bytes")
            }
            TapeError::Underflow => write!(f, "tape pop on empty tape"),
        }
    }
}

impl std::error::Error for TapeError {}

/// A LIFO tape of `f64`/`i64` entries with peak-usage accounting.
#[derive(Debug, Default)]
pub struct Tape {
    f: Vec<f64>,
    i: Vec<i64>,
    peak_entries: usize,
    total_pushes: u64,
    limit_bytes: Option<usize>,
}

impl Tape {
    /// An unlimited tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// A tape that fails pushes beyond `limit_bytes` of live entries.
    pub fn with_limit(limit_bytes: usize) -> Self {
        Tape { limit_bytes: Some(limit_bytes), ..Tape::default() }
    }

    #[inline]
    fn note_usage(&mut self) -> Result<(), TapeError> {
        let entries = self.f.len() + self.i.len();
        if entries > self.peak_entries {
            self.peak_entries = entries;
        }
        if let Some(limit) = self.limit_bytes {
            if entries * 8 > limit {
                return Err(TapeError::OutOfMemory { limit_bytes: limit });
            }
        }
        Ok(())
    }

    /// Pushes a float entry.
    #[inline]
    pub fn push_f(&mut self, v: f64) -> Result<(), TapeError> {
        self.f.push(v);
        self.total_pushes += 1;
        self.note_usage()
    }

    /// Pops a float entry.
    #[inline]
    pub fn pop_f(&mut self) -> Result<f64, TapeError> {
        self.f.pop().ok_or(TapeError::Underflow)
    }

    /// Pushes an int entry (loop trip counts, branch flags).
    #[inline]
    pub fn push_i(&mut self, v: i64) -> Result<(), TapeError> {
        self.i.push(v);
        self.total_pushes += 1;
        self.note_usage()
    }

    /// Pops an int entry.
    #[inline]
    pub fn pop_i(&mut self) -> Result<i64, TapeError> {
        self.i.pop().ok_or(TapeError::Underflow)
    }

    /// Number of live entries (floats + ints).
    pub fn len(&self) -> usize {
        self.f.len() + self.i.len()
    }

    /// `true` when the tape holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of live entries over the tape's lifetime.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// High-water mark in bytes (8 bytes per entry).
    pub fn peak_bytes(&self) -> usize {
        self.peak_entries * 8
    }

    /// Total pushes ever performed (the *traffic*, distinct from the peak).
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Clears live entries but keeps the peak statistics.
    pub fn clear(&mut self) {
        self.f.clear();
        self.i.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut t = Tape::new();
        t.push_f(1.0).unwrap();
        t.push_f(2.0).unwrap();
        assert_eq!(t.pop_f().unwrap(), 2.0);
        assert_eq!(t.pop_f().unwrap(), 1.0);
        assert_eq!(t.pop_f(), Err(TapeError::Underflow));
    }

    #[test]
    fn int_and_float_stacks_are_independent() {
        let mut t = Tape::new();
        t.push_f(1.5).unwrap();
        t.push_i(7).unwrap();
        assert_eq!(t.pop_f().unwrap(), 1.5);
        assert_eq!(t.pop_i().unwrap(), 7);
    }

    #[test]
    fn peak_tracking() {
        let mut t = Tape::new();
        for k in 0..100 {
            t.push_f(k as f64).unwrap();
        }
        for _ in 0..100 {
            t.pop_f().unwrap();
        }
        for k in 0..10 {
            t.push_i(k).unwrap();
        }
        assert_eq!(t.peak_entries(), 100);
        assert_eq!(t.peak_bytes(), 800);
        assert_eq!(t.total_pushes(), 110);
    }

    #[test]
    fn limit_triggers_oom() {
        let mut t = Tape::with_limit(64); // 8 entries
        for k in 0..8 {
            t.push_f(k as f64).unwrap();
        }
        assert_eq!(t.push_f(9.0), Err(TapeError::OutOfMemory { limit_bytes: 64 }));
    }
}
