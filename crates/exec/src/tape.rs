//! The runtime tape: the LIFO state-restoration stack of the adjoint.
//!
//! The forward sweep of a generated gradient pushes every to-be-overwritten
//! value (`Push(out(Li))` in the paper's Fig. 2); the backward sweep pops
//! them to restore the program state each adjoint statement needs. The tape
//! is also where the **memory story** of the paper lives:
//!
//! * CHEF-FP pushes only TBR-selected values → small tape;
//! * the ADAPT baseline records every elementary operation → large tape;
//! * the figures' "ADAPT runs out of memory" points are reproduced with
//!   [`Tape::with_limit`], which makes pushes fail past a byte budget.
//!
//! The tape is designed for reuse: [`Tape::reset`] clears entries and
//! statistics but keeps the backing buffers, so a [`crate::vm::Machine`]
//! that runs thousands of analyses re-allocates nothing after warm-up.

/// Why a tape operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TapeError {
    /// The configured memory budget would be exceeded (the "OOM" of the
    /// paper's Figs. 4 and 7). The push that reports this is **not**
    /// performed — the tape stays exactly at the budget boundary.
    OutOfMemory {
        /// The configured limit in bytes.
        limit_bytes: usize,
    },
    /// Pop on an empty tape — an unbalanced transformation (a bug in
    /// generated code; surfaced loudly rather than silently).
    Underflow,
}

impl std::fmt::Display for TapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapeError::OutOfMemory { limit_bytes } => {
                write!(f, "tape exceeded memory limit of {limit_bytes} bytes")
            }
            TapeError::Underflow => write!(f, "tape pop on empty tape"),
        }
    }
}

impl std::error::Error for TapeError {}

/// A LIFO tape of `f64`/`i64` entries with peak-usage accounting.
#[derive(Debug)]
pub struct Tape {
    f: Vec<f64>,
    i: Vec<i64>,
    peak_entries: usize,
    total_pushes: u64,
    /// Live-entry budget derived from the byte limit (`usize::MAX` when
    /// unlimited) — a plain compare on the hot push path.
    max_entries: usize,
    limit_bytes: Option<usize>,
}

impl Default for Tape {
    fn default() -> Self {
        Tape {
            f: Vec::new(),
            i: Vec::new(),
            peak_entries: 0,
            total_pushes: 0,
            max_entries: usize::MAX,
            limit_bytes: None,
        }
    }
}

impl Tape {
    /// An unlimited tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// A tape that fails pushes that would exceed `limit_bytes` of live
    /// entries.
    pub fn with_limit(limit_bytes: usize) -> Self {
        let mut t = Tape::default();
        t.set_limit(Some(limit_bytes));
        t
    }

    /// Installs (or removes) the byte budget.
    pub fn set_limit(&mut self, limit_bytes: Option<usize>) {
        self.limit_bytes = limit_bytes;
        self.max_entries = match limit_bytes {
            Some(limit) => limit / 8,
            None => usize::MAX,
        };
    }

    /// Clears live entries **and** statistics while keeping the backing
    /// buffers, readying the tape for the next analysis run. `limit_bytes`
    /// becomes the new budget.
    pub fn reset(&mut self, limit_bytes: Option<usize>) {
        self.f.clear();
        self.i.clear();
        self.peak_entries = 0;
        self.total_pushes = 0;
        self.set_limit(limit_bytes);
    }

    #[inline]
    fn admit_one(&mut self) -> Result<(), TapeError> {
        let entries = self.f.len() + self.i.len();
        // Budget is checked *before* mutating: a rejected push must leave
        // the tape untouched (the boundary entry is not appended).
        if entries + 1 > self.max_entries {
            return Err(TapeError::OutOfMemory {
                limit_bytes: self.limit_bytes.unwrap_or(usize::MAX),
            });
        }
        if entries + 1 > self.peak_entries {
            self.peak_entries = entries + 1;
        }
        self.total_pushes += 1;
        Ok(())
    }

    /// Pushes a float entry.
    #[inline]
    pub fn push_f(&mut self, v: f64) -> Result<(), TapeError> {
        self.admit_one()?;
        self.f.push(v);
        Ok(())
    }

    /// Pops a float entry.
    #[inline]
    pub fn pop_f(&mut self) -> Result<f64, TapeError> {
        self.f.pop().ok_or(TapeError::Underflow)
    }

    /// Pushes an int entry (loop trip counts, branch flags).
    #[inline]
    pub fn push_i(&mut self, v: i64) -> Result<(), TapeError> {
        self.admit_one()?;
        self.i.push(v);
        Ok(())
    }

    /// Pops an int entry.
    #[inline]
    pub fn pop_i(&mut self) -> Result<i64, TapeError> {
        self.i.pop().ok_or(TapeError::Underflow)
    }

    /// Number of live entries (floats + ints).
    pub fn len(&self) -> usize {
        self.f.len() + self.i.len()
    }

    /// `true` when the tape holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of live entries over the tape's lifetime.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// High-water mark in bytes (8 bytes per entry).
    pub fn peak_bytes(&self) -> usize {
        self.peak_entries * 8
    }

    /// Total pushes ever performed (the *traffic*, distinct from the peak).
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Clears live entries but keeps the peak statistics.
    pub fn clear(&mut self) {
        self.f.clear();
        self.i.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut t = Tape::new();
        t.push_f(1.0).unwrap();
        t.push_f(2.0).unwrap();
        assert_eq!(t.pop_f().unwrap(), 2.0);
        assert_eq!(t.pop_f().unwrap(), 1.0);
        assert_eq!(t.pop_f(), Err(TapeError::Underflow));
    }

    #[test]
    fn int_and_float_stacks_are_independent() {
        let mut t = Tape::new();
        t.push_f(1.5).unwrap();
        t.push_i(7).unwrap();
        assert_eq!(t.pop_f().unwrap(), 1.5);
        assert_eq!(t.pop_i().unwrap(), 7);
    }

    #[test]
    fn peak_tracking() {
        let mut t = Tape::new();
        for k in 0..100 {
            t.push_f(k as f64).unwrap();
        }
        for _ in 0..100 {
            t.pop_f().unwrap();
        }
        for k in 0..10 {
            t.push_i(k).unwrap();
        }
        assert_eq!(t.peak_entries(), 100);
        assert_eq!(t.peak_bytes(), 800);
        assert_eq!(t.total_pushes(), 110);
    }

    #[test]
    fn limit_triggers_oom() {
        let mut t = Tape::with_limit(64); // 8 entries
        for k in 0..8 {
            t.push_f(k as f64).unwrap();
        }
        assert_eq!(
            t.push_f(9.0),
            Err(TapeError::OutOfMemory { limit_bytes: 64 })
        );
    }

    #[test]
    fn rejected_push_does_not_mutate() {
        // The budget is checked before the push: the entry that would
        // exceed `limit_bytes` must not be appended, and the statistics
        // must not count it.
        let mut t = Tape::with_limit(64); // 8 entries
        for k in 0..8 {
            t.push_f(k as f64).unwrap();
        }
        assert_eq!(t.len(), 8);
        assert!(t.push_f(99.0).is_err());
        assert!(t.push_i(99).is_err());
        assert_eq!(t.len(), 8, "boundary entry must not be appended");
        assert_eq!(t.total_pushes(), 8, "failed pushes are not traffic");
        assert_eq!(t.peak_entries(), 8, "failed pushes do not move the peak");
        // The live entries are exactly the successful ones.
        assert_eq!(t.pop_f().unwrap(), 7.0);
    }

    #[test]
    fn non_multiple_of_eight_limit_rounds_down() {
        let mut t = Tape::with_limit(60); // still 7 full entries
        for k in 0..7 {
            t.push_f(k as f64).unwrap();
        }
        assert_eq!(
            t.push_f(8.0),
            Err(TapeError::OutOfMemory { limit_bytes: 60 })
        );
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn reset_clears_state_but_keeps_capacity() {
        let mut t = Tape::new();
        for k in 0..1000 {
            t.push_f(k as f64).unwrap();
        }
        let cap_before = {
            t.clear();
            // Re-fill to force capacity; then reset.
            for k in 0..1000 {
                t.push_f(k as f64).unwrap();
            }
            1000
        };
        t.reset(Some(64));
        assert_eq!(t.len(), 0);
        assert_eq!(t.peak_entries(), 0);
        assert_eq!(t.total_pushes(), 0);
        let _ = cap_before;
        // New limit is live.
        for k in 0..8 {
            t.push_f(k as f64).unwrap();
        }
        assert!(t.push_f(9.0).is_err());
        // And resetting to unlimited lifts it.
        t.reset(None);
        for k in 0..100 {
            t.push_f(k as f64).unwrap();
        }
    }
}
