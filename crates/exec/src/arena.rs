//! Machine pooling across functions: one analysis or tuner session
//! compiles hundreds of `PrecisionMap` variants (and their adjoints) and
//! runs each through its own machine. The register files, array slots and
//! tape buffers of those machines are interchangeable — [`Machine::reset`]
//! re-sizes without releasing capacity — so a session-scoped arena lets
//! **different** compiled functions share one set of allocations, sized by
//! the largest function the session has executed.
//!
//! [`Pool`] is the generic shape (any `Default` machine type);
//! [`MachineArena`] and [`ShadowMachineArena`] are the two instantiations
//! the engine uses. Checkout hands out a guard that returns the machine on
//! drop, so the pool never grows beyond the peak number of *concurrent*
//! activations (one per worker thread in the batch APIs, one per greedy
//! loop in the tuner).

use crate::shadow::ShadowMachine;
use crate::vm::Machine;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide count of machines currently checked out of any pool,
/// mirrored into the `exec.arena.outstanding` gauge. A drained server
/// (every trial finished, every guard dropped) reads exactly zero here —
/// the leak detector behind `chef-service`'s drain verification.
static OUTSTANDING: AtomicI64 = AtomicI64::new(0);

fn note_checkout() {
    chef_telemetry::counter!("exec.arena.checkouts").inc();
    let now = OUTSTANDING.fetch_add(1, Ordering::Relaxed) + 1;
    chef_telemetry::gauge!("exec.arena.outstanding").set(now as f64);
}

fn note_return() {
    let now = OUTSTANDING.fetch_sub(1, Ordering::Relaxed) - 1;
    chef_telemetry::gauge!("exec.arena.outstanding").set(now as f64);
}

/// A pool of reusable machines. Cheap to create; `Sync`, so one instance
/// can serve every worker thread of a batch and every step of a greedy
/// loop.
pub struct Pool<M> {
    slots: Mutex<Vec<M>>,
    checked_out: AtomicUsize,
}

impl<M: Default> Default for Pool<M> {
    fn default() -> Self {
        Pool::new()
    }
}

impl<M: Default> Pool<M> {
    /// An empty pool; machines are created on first checkout and retained
    /// (with their grown buffers) on return.
    pub fn new() -> Self {
        Pool {
            slots: Mutex::new(Vec::new()),
            checked_out: AtomicUsize::new(0),
        }
    }

    /// The slot list, recovering from mutex poisoning: the pool's
    /// invariant (a list of idle machines) survives any panic because
    /// machines held by a panicking thread are discarded, never pushed
    /// (see [`Pooled`]'s `Drop`), so a poisoned lock carries no
    /// partially-updated state worth rejecting a whole session over.
    fn slots(&self) -> std::sync::MutexGuard<'_, Vec<M>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Takes a machine out of the pool (creating one if none is idle).
    /// The guard returns it — buffers intact — when dropped.
    pub fn checkout(&self) -> Pooled<'_, M> {
        note_checkout();
        self.checked_out.fetch_add(1, Ordering::Relaxed);
        let m = self.slots().pop();
        Pooled {
            pool: self,
            m: Some(m.unwrap_or_default()),
        }
    }

    /// Number of idle machines currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.slots().len()
    }

    /// Number of machines currently checked out of *this* pool and not
    /// yet returned. A machine discarded because its run panicked still
    /// counts as returned (the guard's drop ran) — outstanding means a
    /// live guard somewhere, i.e. a trial still holding resources.
    pub fn outstanding(&self) -> usize {
        self.checked_out.load(Ordering::Relaxed)
    }
}

/// Checkout guard of a [`Pool`]: derefs to the machine and parks it back
/// into the pool on drop.
pub struct Pooled<'a, M: Default> {
    pool: &'a Pool<M>,
    m: Option<M>,
}

impl<M: Default> Deref for Pooled<'_, M> {
    type Target = M;
    fn deref(&self) -> &M {
        self.m.as_ref().expect("present until drop")
    }
}

impl<M: Default> DerefMut for Pooled<'_, M> {
    fn deref_mut(&mut self) -> &mut M {
        self.m.as_mut().expect("present until drop")
    }
}

impl<M: Default> Drop for Pooled<'_, M> {
    fn drop(&mut self) {
        // Return accounting runs unconditionally — a discarded machine
        // is still a *returned* checkout (nothing holds it any more), so
        // the outstanding gauge drains to zero even across panics.
        self.pool.checked_out.fetch_sub(1, Ordering::Relaxed);
        note_return();
        // A guard dropped during a panic's unwind may hold a machine
        // whose run was interrupted mid-mutation. `Machine::reset`
        // would re-initialize it anyway, but discarding costs only a
        // re-allocation on some later checkout — cheap insurance that a
        // panicking trial can never park corrupt state for its
        // neighbours.
        if std::thread::panicking() {
            return;
        }
        if let Some(m) = self.m.take() {
            self.pool.slots().push(m);
        }
    }
}

/// A session-scoped pool of plain VM [`Machine`]s.
pub type MachineArena = Pool<Machine>;

/// A session-scoped pool of fused primal+shadow machines.
pub type ShadowMachineArena<S> = Pool<ShadowMachine<S>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_default;
    use crate::value::ArgValue;
    use crate::vm::ExecOptions;

    fn compiled(src: &str) -> crate::bytecode::CompiledFunction {
        let mut p = chef_ir::parser::parse_program(src).unwrap();
        chef_ir::typeck::check_program(&mut p).unwrap();
        compile_default(&p.functions[0]).unwrap()
    }

    #[test]
    fn checkout_reuses_machines_across_different_functions() {
        let arena = MachineArena::new();
        let small = compiled("double f(double x) { return x * 2.0; }");
        let big = compiled(
            "double g(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += i * 0.5; } return s; }",
        );
        let opts = ExecOptions::default();
        {
            let mut m = arena.checkout();
            assert_eq!(
                m.run_reused(&big, vec![ArgValue::I(100)], &opts)
                    .unwrap()
                    .ret_f(),
                (0..100).map(|i| i as f64 * 0.5).sum::<f64>()
            );
        }
        assert_eq!(arena.idle(), 1);
        {
            // The same machine now serves a *different* function.
            let mut m = arena.checkout();
            assert_eq!(arena.idle(), 0);
            assert_eq!(
                m.run_reused(&small, vec![ArgValue::F(21.0)], &opts)
                    .unwrap()
                    .ret_f(),
                42.0
            );
        }
        assert_eq!(arena.idle(), 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_machines() {
        let arena = MachineArena::new();
        let a = arena.checkout();
        let b = arena.checkout();
        drop(a);
        drop(b);
        assert_eq!(arena.idle(), 2);
        // Further checkouts drain the pool instead of growing it.
        let _c = arena.checkout();
        assert_eq!(arena.idle(), 1);
    }

    #[test]
    fn a_panicking_checkout_is_discarded_and_the_pool_stays_usable() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let arena = MachineArena::new();
        drop(arena.checkout());
        assert_eq!(arena.idle(), 1);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _held = arena.checkout();
            panic!("injected");
        }));
        assert!(r.is_err());
        // The possibly-corrupt machine was discarded, not parked …
        assert_eq!(arena.idle(), 0);
        // … and the pool still hands out working machines afterwards.
        let f = compiled("double f(double x) { return x + 1.0; }");
        let out = arena
            .checkout()
            .run_reused(&f, vec![ArgValue::F(1.0)], &ExecOptions::default())
            .unwrap();
        assert_eq!(out.ret_f(), 2.0);
        assert_eq!(arena.idle(), 1);
    }

    #[test]
    fn pooled_runs_are_bit_identical_to_fresh_machines() {
        let arena = MachineArena::new();
        let f = compiled(
            "double f(double x, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += sin(x + i * 0.01); } return s; }",
        );
        let opts = ExecOptions::default();
        for k in 0..5 {
            let args = vec![ArgValue::F(0.2 * k as f64), ArgValue::I(40)];
            let pooled = arena
                .checkout()
                .run_reused(&f, args.clone(), &opts)
                .unwrap();
            let fresh = Machine::new().run_reused(&f, args, &opts).unwrap();
            assert_eq!(pooled.ret_f().to_bits(), fresh.ret_f().to_bits());
            assert_eq!(pooled.stats, fresh.stats);
        }
    }
}
