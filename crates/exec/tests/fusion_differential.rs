//! Differential test: bytecode fusion must be unobservable.
//!
//! Every `chef-apps` kernel is compiled twice — fusion off and fusion
//! on — and executed on the same workload, in three configurations:
//!
//! 1. the primal kernel at declared precisions,
//! 2. the primal kernel with **every** float variable demoted to `f32`
//!    (maximal `F*Round` fusion pressure),
//! 3. the reverse-AD adjoint of the kernel (tape pushes/pops, the
//!    analysis hot path).
//!
//! The two compilations must agree **bit-for-bit** on the return value
//! and every output argument, and exactly on the tape/memory counters
//! (`tape_peak_bytes`, `tape_total_pushes`, `local_array_bytes`,
//! `arg_array_bytes`). Only `instrs_executed` may differ — fusion's whole
//! point — and it must not grow.

use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_ir::ast::{Function, Program};
use chef_ir::types::{ElemTy, FloatTy, Type};

/// One app kernel with a representative (small) workload.
fn kernels() -> Vec<(&'static str, Program, &'static str, Vec<ArgValue>)> {
    vec![
        (
            "arclen",
            chef_apps::arclen::program(),
            chef_apps::arclen::NAME,
            chef_apps::arclen::args(500),
        ),
        (
            "simpsons",
            chef_apps::simpsons::program(),
            chef_apps::simpsons::NAME,
            chef_apps::simpsons::args(500),
        ),
        (
            "kmeans",
            chef_apps::kmeans::program(),
            chef_apps::kmeans::NAME,
            chef_apps::kmeans::args(&chef_apps::kmeans::workload(100, 5, 4, 42)),
        ),
        (
            "blackscholes",
            chef_apps::blackscholes::program(),
            chef_apps::blackscholes::NAME,
            chef_apps::blackscholes::args(&chef_apps::blackscholes::workload(50, 42)),
        ),
        (
            "hpccg",
            chef_apps::hpccg::program(),
            chef_apps::hpccg::NAME,
            chef_apps::hpccg::args(&chef_apps::hpccg::problem(4, 4, 4)),
        ),
    ]
}

fn inlined_kernel(program: &Program, func: &str) -> Function {
    chef_passes::inline_program(program)
        .expect("kernel inlines")
        .function(func)
        .expect("kernel exists")
        .clone()
}

/// Demotes every float variable (scalar and array) to `f32`.
fn demote_all(func: &Function) -> PrecisionMap {
    let mut pm = PrecisionMap::empty();
    for (id, v) in func.vars_iter() {
        if let Type::Float(_) | Type::Array(ElemTy::Float(_)) = v.ty {
            pm.set(id, FloatTy::F32);
        }
    }
    pm
}

/// Runs `func` compiled with fusion off and on; asserts the outcomes are
/// indistinguishable except for a (never larger) instruction count.
fn assert_fusion_unobservable(label: &str, func: &Function, pm: &PrecisionMap, args: &[ArgValue]) {
    let unfused = compile(
        func,
        &CompileOptions {
            precisions: pm.clone(),
            fuse: false,
            ..Default::default()
        },
    )
    .expect("unfused compiles");
    let fused = compile(
        func,
        &CompileOptions {
            precisions: pm.clone(),
            fuse: true,
            ..Default::default()
        },
    )
    .expect("fused compiles");

    let opts = ExecOptions {
        max_instrs: Some(500_000_000),
        ..Default::default()
    };
    let a = run_with(&unfused, args.to_vec(), &opts)
        .unwrap_or_else(|t| panic!("{label}: unfused trapped: {t}"));
    let b = run_with(&fused, args.to_vec(), &opts)
        .unwrap_or_else(|t| panic!("{label}: fused trapped: {t}"));

    // Return value: bit-identical.
    match (&a.ret, &b.ret) {
        (Some(Value::F(x)), Some(Value::F(y))) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: float return differs")
        }
        (x, y) => assert_eq!(x, y, "{label}: return differs"),
    }
    // Every output argument (by-ref scalars, arrays): bit-identical.
    assert_eq!(a.args.len(), b.args.len(), "{label}: arg count");
    for (i, (x, y)) in a.args.iter().zip(&b.args).enumerate() {
        match (x, y) {
            (ArgValue::F(x), ArgValue::F(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: scalar arg {i}")
            }
            (ArgValue::FArr(x), ArgValue::FArr(y)) => {
                assert_eq!(x.len(), y.len(), "{label}: array arg {i} length");
                for (k, (xv, yv)) in x.iter().zip(y).enumerate() {
                    assert_eq!(xv.to_bits(), yv.to_bits(), "{label}: array arg {i}[{k}]");
                }
            }
            (x, y) => assert_eq!(x, y, "{label}: arg {i}"),
        }
    }
    // Tape and memory counters: identical. Instruction count: not larger.
    assert_eq!(
        a.stats.tape_peak_bytes, b.stats.tape_peak_bytes,
        "{label}: tape peak"
    );
    assert_eq!(
        a.stats.tape_total_pushes, b.stats.tape_total_pushes,
        "{label}: tape traffic"
    );
    assert_eq!(
        a.stats.local_array_bytes, b.stats.local_array_bytes,
        "{label}: local arrays"
    );
    assert_eq!(
        a.stats.arg_array_bytes, b.stats.arg_array_bytes,
        "{label}: arg arrays"
    );
    assert!(
        b.stats.instrs_executed <= a.stats.instrs_executed,
        "{label}: fusion increased instruction count ({} > {})",
        b.stats.instrs_executed,
        a.stats.instrs_executed
    );
}

#[test]
fn primal_kernels_are_bit_identical_fused_vs_unfused() {
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        assert_fusion_unobservable(label, &func, &PrecisionMap::empty(), &args);
    }
}

#[test]
fn fully_demoted_kernels_are_bit_identical_fused_vs_unfused() {
    // Demoting every float variable floods the instruction stream with
    // rounds, exercising the F*Round fused forms.
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let pm = demote_all(&func);
        let fused = compile(
            &func,
            &CompileOptions {
                precisions: pm.clone(),
                fuse: true,
                ..Default::default()
            },
        )
        .expect("compiles");
        let has_fused_round = fused.instrs.iter().any(|i| {
            use chef_exec::bytecode::Instr;
            matches!(
                i,
                Instr::FAddRound { .. }
                    | Instr::FSubRound { .. }
                    | Instr::FMulRound { .. }
                    | Instr::FDivRound { .. }
            )
        });
        assert!(
            has_fused_round,
            "{label}: demotion produced no fused rounds"
        );
        assert_fusion_unobservable(&format!("{label}/demoted"), &func, &pm, &args);
    }
}

#[test]
fn adjoint_kernels_are_bit_identical_fused_vs_unfused() {
    // The analysis hot path: reverse-AD adjoints with tape traffic.
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let grad = match chef_ad::reverse::reverse_diff(&func) {
            Ok(g) => g,
            Err(e) => panic!("{label}: reverse_diff failed: {e}"),
        };
        // Adjoint signature: each float scalar param gains `_d_x`, each
        // float array param gains `_d_a[]` (zero-seeded here; the sweep
        // structure, not the seed, is what fusion must preserve).
        let mut grad_args = args.to_vec();
        for a in &args {
            match a {
                ArgValue::F(_) => grad_args.push(ArgValue::F(0.0)),
                ArgValue::FArr(v) => grad_args.push(ArgValue::FArr(vec![0.0; v.len()])),
                _ => {}
            }
        }
        let unfused = compile(
            &grad,
            &CompileOptions {
                precisions: PrecisionMap::empty(),
                fuse: false,
                ..Default::default()
            },
        )
        .expect("adjoint compiles");
        let probe = run_with(
            &unfused,
            grad_args.clone(),
            &ExecOptions {
                max_instrs: Some(500_000_000),
                ..Default::default()
            },
        )
        .unwrap_or_else(|t| panic!("{label}: adjoint trapped: {t}"));
        assert!(
            probe.stats.tape_total_pushes > 0,
            "{label}: adjoint exercises no tape traffic — test is vacuous"
        );
        assert_fusion_unobservable(
            &format!("{label}/adjoint"),
            &grad,
            &PrecisionMap::empty(),
            &grad_args,
        );
    }
}
