//! Differential test: the CFG optimizer tier must be unobservable.
//!
//! Every `chef-apps` kernel is compiled twice — CFG tier off and on —
//! and executed on the same workload, in three configurations (primal at
//! declared precisions, primal with every float demoted to `f32`, and
//! the reverse-AD adjoint), times both dispatch loops (enum and packed).
//!
//! The two compilations must agree **bit-for-bit** on the return value
//! and every output argument, and exactly on the tape/memory counters.
//! `instrs_executed` may shrink (LICM's whole point) but not grow on
//! these loop-heavy kernels.
//!
//! In shadow mode the divergence *report* must also be preserved: the
//! same split count, the same decision sequence (operator, operands,
//! taken/would-take), and the same per-variable attribution. Only the
//! `pc`/`at_instr` coordinates of a split may move (hoisting relocates
//! instructions), and only the *local-error accounting* may differ (a
//! hoisted rounding op contributes one preheader sample instead of one
//! per iteration) — neither is part of the decision record.
//!
//! Randomly generated branching kernels (bounded loops, near-tie float
//! compares) and deterministic fault-injection schedules round out the
//! suite: recovery paths must observe the same outcome kinds and the
//! same number of plan draws whether or not the tier ran.

use chef_exec::cfg;
use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::fault::{FaultKind, FaultPlan};
use chef_exec::prelude::*;
use chef_exec::shadow::run_shadow;
use chef_ir::ast::{Function, Program};
use chef_ir::types::{ElemTy, FloatTy, Type};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One app kernel with a representative (small) workload.
fn kernels() -> Vec<(&'static str, Program, &'static str, Vec<ArgValue>)> {
    vec![
        (
            "arclen",
            chef_apps::arclen::program(),
            chef_apps::arclen::NAME,
            chef_apps::arclen::args(500),
        ),
        (
            "simpsons",
            chef_apps::simpsons::program(),
            chef_apps::simpsons::NAME,
            chef_apps::simpsons::args(500),
        ),
        (
            "kmeans",
            chef_apps::kmeans::program(),
            chef_apps::kmeans::NAME,
            chef_apps::kmeans::args(&chef_apps::kmeans::workload(100, 5, 4, 42)),
        ),
        (
            "blackscholes",
            chef_apps::blackscholes::program(),
            chef_apps::blackscholes::NAME,
            chef_apps::blackscholes::args(&chef_apps::blackscholes::workload(50, 42)),
        ),
        (
            "hpccg",
            chef_apps::hpccg::program(),
            chef_apps::hpccg::NAME,
            chef_apps::hpccg::args(&chef_apps::hpccg::problem(4, 4, 4)),
        ),
    ]
}

fn inlined_kernel(program: &Program, func: &str) -> Function {
    chef_passes::inline_program(program)
        .expect("kernel inlines")
        .function(func)
        .expect("kernel exists")
        .clone()
}

/// Demotes every float variable (scalar and array) to `f32`.
fn demote_all(func: &Function) -> PrecisionMap {
    let mut pm = PrecisionMap::empty();
    for (id, v) in func.vars_iter() {
        if let Type::Float(_) | Type::Array(ElemTy::Float(_)) = v.ty {
            pm.set(id, FloatTy::F32);
        }
    }
    pm
}

/// Compiles `func` with the CFG tier off and on (everything else equal,
/// fusion pinned on so both sides see the same input stream).
fn compile_pair(
    func: &Function,
    pm: &PrecisionMap,
    pack: bool,
) -> (
    chef_exec::bytecode::CompiledFunction,
    chef_exec::bytecode::CompiledFunction,
) {
    let mk = |cfg_on: bool| {
        compile(
            func,
            &CompileOptions {
                precisions: pm.clone(),
                fuse: true,
                cfg: cfg_on,
                pack,
            },
        )
        .expect("kernel compiles")
    };
    (mk(false), mk(true))
}

fn big_opts() -> ExecOptions {
    ExecOptions {
        max_instrs: Some(500_000_000),
        ..Default::default()
    }
}

fn assert_args_bit_equal(label: &str, a: &[ArgValue], b: &[ArgValue]) {
    assert_eq!(a.len(), b.len(), "{label}: arg count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (ArgValue::F(x), ArgValue::F(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: scalar arg {i}")
            }
            (ArgValue::FArr(x), ArgValue::FArr(y)) => {
                assert_eq!(x.len(), y.len(), "{label}: array arg {i} length");
                for (k, (xv, yv)) in x.iter().zip(y).enumerate() {
                    assert_eq!(xv.to_bits(), yv.to_bits(), "{label}: array arg {i}[{k}]");
                }
            }
            (x, y) => assert_eq!(x, y, "{label}: arg {i}"),
        }
    }
}

/// Runs `func` compiled with the CFG tier off and on (both dispatch
/// loops); asserts the outcomes are indistinguishable except for a
/// (never larger) instruction count.
fn assert_cfg_unobservable(label: &str, func: &Function, pm: &PrecisionMap, args: &[ArgValue]) {
    for pack in [true, false] {
        let label = format!("{label}/pack={pack}");
        let (off, on) = compile_pair(func, pm, pack);
        let opts = big_opts();
        let a = run_with(&off, args.to_vec(), &opts)
            .unwrap_or_else(|t| panic!("{label}: cfg-off trapped: {t}"));
        let b = run_with(&on, args.to_vec(), &opts)
            .unwrap_or_else(|t| panic!("{label}: cfg-on trapped: {t}"));

        match (&a.ret, &b.ret) {
            (Some(Value::F(x)), Some(Value::F(y))) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: float return differs")
            }
            (x, y) => assert_eq!(x, y, "{label}: return differs"),
        }
        assert_args_bit_equal(&label, &a.args, &b.args);
        assert_eq!(
            a.stats.tape_peak_bytes, b.stats.tape_peak_bytes,
            "{label}: tape peak"
        );
        assert_eq!(
            a.stats.tape_total_pushes, b.stats.tape_total_pushes,
            "{label}: tape traffic"
        );
        assert_eq!(
            a.stats.local_array_bytes, b.stats.local_array_bytes,
            "{label}: local arrays"
        );
        assert_eq!(
            a.stats.arg_array_bytes, b.stats.arg_array_bytes,
            "{label}: arg arrays"
        );
        assert!(
            b.stats.instrs_executed <= a.stats.instrs_executed,
            "{label}: CFG tier increased instruction count ({} > {})",
            b.stats.instrs_executed,
            a.stats.instrs_executed
        );
    }
}

/// Runs the f64-shadow oracle over both compilations; asserts the primal
/// stream and the divergence *decisions* are preserved. Split
/// coordinates (`pc`, `at_instr`) and local-error accounting
/// (`acc_error`, `samples`, `var_error`) may legitimately differ — a
/// hoisted instruction lives at a new pc and executes once per loop
/// entry instead of once per iteration.
fn assert_cfg_shadow_unobservable(
    label: &str,
    func: &Function,
    pm: &PrecisionMap,
    args: &[ArgValue],
) {
    for pack in [true, false] {
        let label = format!("{label}/shadow/pack={pack}");
        let (off, on) = compile_pair(func, pm, pack);
        let opts = big_opts();
        let sa = run_shadow::<f64>(&off, args.to_vec(), &opts)
            .unwrap_or_else(|t| panic!("{label}: cfg-off trapped: {t}"));
        let sb = run_shadow::<f64>(&on, args.to_vec(), &opts)
            .unwrap_or_else(|t| panic!("{label}: cfg-on trapped: {t}"));

        match (&sa.ret, &sb.ret) {
            (Some(Value::F(x)), Some(Value::F(y))) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: primal return differs")
            }
            (x, y) => assert_eq!(x, y, "{label}: primal return differs"),
        }
        match (sa.shadow_ret, sb.shadow_ret) {
            (Some(x), Some(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: shadow return differs")
            }
            (x, y) => assert_eq!(x, y, "{label}: shadow return differs"),
        }
        assert_args_bit_equal(&label, &sa.args, &sb.args);
        assert_eq!(
            sa.divergence_count, sb.divergence_count,
            "{label}: split count differs"
        );
        let ka: Vec<_> = sa.divergence.iter().map(|d| d.kind).collect();
        let kb: Vec<_> = sb.divergence.iter().map(|d| d.kind).collect();
        assert_eq!(ka, kb, "{label}: split decision sequence differs");
        assert_eq!(
            sa.var_divergence, sb.var_divergence,
            "{label}: per-variable split attribution differs"
        );
    }
}

#[test]
fn primal_kernels_are_bit_identical_cfg_on_vs_off() {
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        assert_cfg_unobservable(label, &func, &PrecisionMap::empty(), &args);
    }
}

#[test]
fn fully_demoted_kernels_are_bit_identical_cfg_on_vs_off() {
    // Demotion floods the stream with F*Round forms — the Class B
    // (guard-requiring) hoist candidates.
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let pm = demote_all(&func);
        assert_cfg_unobservable(&format!("{label}/demoted"), &func, &pm, &args);
    }
}

#[test]
fn adjoint_kernels_are_bit_identical_cfg_on_vs_off() {
    // The analysis hot path: reverse-AD adjoints with tape traffic. LICM
    // must not reorder anything across TPush/TPop.
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let grad = match chef_ad::reverse::reverse_diff(&func) {
            Ok(g) => g,
            Err(e) => panic!("{label}: reverse_diff failed: {e}"),
        };
        let mut grad_args = args.to_vec();
        for a in &args {
            match a {
                ArgValue::F(_) => grad_args.push(ArgValue::F(0.0)),
                ArgValue::FArr(v) => grad_args.push(ArgValue::FArr(vec![0.0; v.len()])),
                _ => {}
            }
        }
        assert_cfg_unobservable(
            &format!("{label}/adjoint"),
            &grad,
            &PrecisionMap::empty(),
            &grad_args,
        );
    }
}

#[test]
fn demoted_kernels_preserve_the_shadow_divergence_report() {
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let pm = demote_all(&func);
        assert_cfg_shadow_unobservable(label, &func, &pm, &args);
    }
}

#[test]
fn arclen_licm_actually_hoists_and_shrinks_the_run() {
    // The acceptance anchor: on arclen the tier must *do* something —
    // hoist at least one invariant op and strictly reduce the dynamic
    // instruction count — not just be harmless.
    let func = inlined_kernel(&chef_apps::arclen::program(), chef_apps::arclen::NAME);
    let args = chef_apps::arclen::args(500);
    let (off, on) = compile_pair(&func, &PrecisionMap::empty(), false);

    let mut opt = off.clone();
    let stats = cfg::optimize(&mut opt);
    assert!(stats.reducible, "arclen's CFG is reducible");
    assert!(
        stats.hoisted >= 1,
        "arclen must yield at least one LICM hoist, got {stats:?}"
    );

    let opts = big_opts();
    let a = run_with(&off, args.clone(), &opts).expect("cfg-off runs");
    let b = run_with(&on, args, &opts).expect("cfg-on runs");
    assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits());
    assert!(
        b.stats.instrs_executed < a.stats.instrs_executed,
        "LICM did not shrink arclen's dynamic count ({} >= {})",
        b.stats.instrs_executed,
        a.stats.instrs_executed
    );
}

// ------------------------------------------------------ fault injection

/// Drives `n` calls through identical [`FaultPlan`] schedules with the
/// tier off and on; every call must resolve to the same outcome shape
/// (same return bits, or a trap of the same kind) and the two plans must
/// have drawn the same number of ordinals.
fn assert_fault_schedule_agrees(label: &str, kind: FaultKind, period: u64, phase: u64) {
    // simpsons' first parameter is a float — required for the Nan kind,
    // which poisons the first float argument after binding.
    let func = inlined_kernel(&chef_apps::simpsons::program(), chef_apps::simpsons::NAME);
    let (off, on) = compile_pair(&func, &PrecisionMap::empty(), true);
    let plan_off = FaultPlan::new(Some(kind), period, phase, 1_000);
    let plan_on = FaultPlan::new(Some(kind), period, phase, 1_000);
    let opts_off = ExecOptions {
        fault: Some(plan_off.clone()),
        ..big_opts()
    };
    let opts_on = ExecOptions {
        fault: Some(plan_on.clone()),
        ..big_opts()
    };

    let n = 9;
    let mut fired = 0;
    for call in 0..n {
        let args = chef_apps::simpsons::args(200);
        let a = catch_unwind(AssertUnwindSafe(|| run_with(&off, args.clone(), &opts_off)));
        let b = catch_unwind(AssertUnwindSafe(|| run_with(&on, args, &opts_on)));
        match (a, b) {
            (Ok(Ok(x)), Ok(Ok(y))) => {
                assert_eq!(
                    x.ret_f().to_bits(),
                    y.ret_f().to_bits(),
                    "{label}: call {call} results differ"
                );
            }
            (Ok(Err(ta)), Ok(Err(tb))) => {
                fired += 1;
                assert_eq!(
                    std::mem::discriminant(&ta.kind),
                    std::mem::discriminant(&tb.kind),
                    "{label}: call {call} trap kinds differ ({:?} vs {:?})",
                    ta.kind,
                    tb.kind
                );
            }
            (Err(_), Err(_)) => fired += 1, // both sides panicked (Panic kind)
            (a, b) => panic!(
                "{label}: call {call} outcomes diverge: cfg-off {:?} vs cfg-on {:?}",
                a.map(|r| r.map(|o| o.ret)),
                b.map(|r| r.map(|o| o.ret))
            ),
        }
    }
    assert!(fired > 0, "{label}: schedule never fired — test is vacuous");
    assert_eq!(plan_off.draws(), n, "{label}: cfg-off draw count");
    assert_eq!(plan_on.draws(), n, "{label}: cfg-on draw count");
}

#[test]
fn fault_injection_schedules_agree_cfg_on_vs_off() {
    assert_fault_schedule_agrees("fault/trap", FaultKind::Trap, 3, 1);
    assert_fault_schedule_agrees("fault/nan", FaultKind::Nan, 4, 2);
    assert_fault_schedule_agrees("fault/panic", FaultKind::Panic, 4, 0);
}

// ------------------------------------------------- random branching kernels

/// Deterministic split-mix generator for kernel synthesis (the same
/// recipe as `proptest_precision.rs`).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn lit(&mut self) -> f64 {
        0.5 + self.unit() * 1.5
    }
}

/// A bounded branching kernel over two inputs, biased toward LICM bait:
/// loop bodies mix an invariant product (`x0 * x1 * lit`, hoistable)
/// with the loop-carried accumulation, behind near-tie float branches
/// and a possibly zero-trip while loop.
fn branching_kernel(g: &mut Gen) -> String {
    let mut src = String::from("double f(double x0, double x1) {\n");
    let inv = format!("x0 * x1 * {:.17}", g.lit());
    let step = format!("x{} * {:.17}", g.below(2), 0.03 + g.unit() * 0.05);
    let iters = g.below(44); // 0 and 1 trips exercise the zero-trip guard
    let _ = writeln!(src, "    double part = 0.0;");
    let _ = writeln!(
        src,
        "    for (int i = 0; i < {iters}; i++) {{ part = part + {step} + {inv}; }}"
    );
    let _ = writeln!(src, "    double acc = part;");
    if g.below(2) == 0 {
        let _ = writeln!(
            src,
            "    for (int i = 0; i < {iters}; i++) {{ acc = acc + {step}; }}"
        );
    } else {
        let _ = writeln!(
            src,
            "    while (acc < part * 1.99) {{ acc = acc + {step} + {inv}; }}"
        );
    }
    let _ = writeln!(src, "    double chk = part + part;");
    let _ = writeln!(src, "    double r = 0.0;");
    let _ = writeln!(
        src,
        "    if (acc < chk) {{ r = acc * {:.17}; }} else {{ r = acc + {:.17}; }}",
        g.lit(),
        g.lit()
    );
    let _ = writeln!(src, "    return r;\n}}");
    src
}

fn compiled_cfg_pair(
    src: &str,
    demote_all_to: Option<FloatTy>,
    pack: bool,
) -> (
    chef_exec::bytecode::CompiledFunction,
    chef_exec::bytecode::CompiledFunction,
) {
    let mut p = chef_ir::parser::parse_program(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    chef_ir::typeck::check_program(&mut p).unwrap_or_else(|e| panic!("{e:?}\n{src}"));
    let func = &p.functions[0];
    let mut pm = PrecisionMap::empty();
    if let Some(ty) = demote_all_to {
        for (id, v) in func.vars_iter() {
            if v.ty.is_differentiable() {
                pm.set(id, ty);
            }
        }
    }
    let mk = |cfg_on: bool| {
        compile(
            func,
            &CompileOptions {
                precisions: pm.clone(),
                fuse: true,
                cfg: cfg_on,
                pack,
            },
        )
        .unwrap_or_else(|e| panic!("{e:?}\n{src}"))
    };
    (mk(false), mk(true))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn branching_kernels_are_bit_identical_cfg_on_vs_off(seed in 0u64..(1u64 << 60)) {
        let mut g = Gen(seed | 1);
        let src = branching_kernel(&mut g);
        let demote = if g.below(2) == 0 { Some(FloatTy::F32) } else { None };
        let pack = g.below(2) == 0;
        let (off, on) = compiled_cfg_pair(&src, demote, pack);
        let args = vec![ArgValue::F(g.lit()), ArgValue::F(g.lit())];
        let opts = ExecOptions::default();
        // Primal: identical results. No instruction-count assertion here —
        // on a zero-trip loop the preheader guard is pure overhead (a
        // handful of instructions), which is fine; only bits matter.
        let a = run_with(&off, args.clone(), &opts).unwrap_or_else(|t| panic!("{t}\n{src}"));
        let b = run_with(&on, args.clone(), &opts).unwrap_or_else(|t| panic!("{t}\n{src}"));
        prop_assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits(), "{}", src);
        // Shadow: identical divergence decisions and attribution.
        let sa = run_shadow::<f64>(&off, args.clone(), &opts)
            .unwrap_or_else(|t| panic!("{t}\n{src}"));
        let sb = run_shadow::<f64>(&on, args, &opts)
            .unwrap_or_else(|t| panic!("{t}\n{src}"));
        prop_assert_eq!(sa.ret_f().to_bits(), sb.ret_f().to_bits(), "{}", src);
        prop_assert_eq!(
            sa.shadow_f().to_bits(), sb.shadow_f().to_bits(), "{}", src
        );
        prop_assert_eq!(sa.divergence_count, sb.divergence_count, "{}", src);
        let ka: Vec<_> = sa.divergence.iter().map(|d| d.kind).collect();
        let kb: Vec<_> = sb.divergence.iter().map(|d| d.kind).collect();
        prop_assert_eq!(ka, kb, "{}", src);
        prop_assert_eq!(&sa.var_divergence, &sb.var_divergence, "{}", src);
        // And without demotion the f64 shadow can never diverge.
        if demote.is_none() {
            prop_assert_eq!(sb.divergence_count, 0, "{}", src);
        }
    }
}

// ------------------------------------------------------------ golden dump

/// `repro --cfg arclen` debug surface, pinned: the block/loop structure
/// the tier sees and the ops it hoists must not drift silently.
#[test]
fn arclen_cfg_dump_is_pinned() {
    let func = inlined_kernel(&chef_apps::arclen::program(), chef_apps::arclen::NAME);
    let c = compile(
        &func,
        &CompileOptions {
            precisions: PrecisionMap::empty(),
            fuse: true,
            pack: false,
            cfg: false,
        },
    )
    .expect("arclen compiles");
    let dump = cfg::dump(&c);
    assert_eq!(dump, GOLDEN_ARCLEN_DUMP, "\nactual dump:\n{dump}");

    let mut opt = c.clone();
    let stats = cfg::optimize(&mut opt);
    assert_eq!(
        stats.hoisted_ops, GOLDEN_ARCLEN_HOISTS,
        "\nactual hoists:\n{:#?}",
        stats.hoisted_ops
    );
}

const GOLDEN_ARCLEN_DUMP: &str = "\
cfg arclen: 30 instrs, 8 blocks
  b0: pc 0..6 preds=[] succs=[1] idom=b0
  b1: pc 6..7 preds=[0, 5] succs=[6, 2] idom=b0
  b2: pc 7..12 preds=[1] succs=[3] idom=b1
  b3: pc 12..13 preds=[2, 4] succs=[5, 4] idom=b2
  b4: pc 13..20 preds=[3] succs=[3] idom=b3
  b5: pc 20..28 preds=[3] succs=[1] idom=b3
  b6: pc 28..29 preds=[1] succs=[] idom=b1
  b7: pc 29..30 preds=[] succs=[] idom=-
  loops: 2
    header=b3 blocks=[3, 4] latches=[4]
    header=b1 blocks=[1, 2, 3, 4, 5] latches=[5]
";

const GOLDEN_ARCLEN_HOISTS: &[&str] = &["FMul { dst: FReg(12), a: FReg(0), b: FReg(0) }"];
