//! Property tests for the precision-simulation substrate: the soft-float
//! rounding functions must behave like IEEE 754 conversions, and the tape
//! must be a faithful LIFO.

use chef_exec::precision::{demotion_error, round_to, ulp};
use chef_exec::tape::Tape;
use chef_ir::types::FloatTy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn rounding_is_idempotent(x in -1e30f64..1e30, ty in any_float_ty()) {
        let once = round_to(x, ty);
        prop_assert_eq!(round_to(once, ty), once);
    }

    #[test]
    fn rounding_is_monotone(a in -1e6f64..1e6, b in -1e6f64..1e6, ty in any_float_ty()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(round_to(lo, ty) <= round_to(hi, ty));
    }

    #[test]
    fn rounding_error_is_bounded_by_epsilon(x in 1e-3f64..1e3, ty in any_float_ty()) {
        // Relative error ≤ machine epsilon in the normal range.
        let err = demotion_error(x, ty).abs();
        prop_assert!(
            err <= ty.epsilon() * x.abs() * (1.0 + 1e-12),
            "x={x} ty={ty} err={err}"
        );
    }

    #[test]
    fn rounding_is_odd(x in -1e6f64..1e6, ty in any_float_ty()) {
        // round(-x) == -round(x) for round-to-nearest-even.
        prop_assert_eq!(round_to(-x, ty), -round_to(x, ty));
    }

    #[test]
    fn f16_matches_f32_double_rounding_path(x in -60000f64..60000.0) {
        // f64 -> f16 via our table must agree with f64 -> f32 -> f16
        // (f32 is wide enough that the two-step conversion cannot
        // double-round for values in the f16 range).
        let direct = round_to(x, FloatTy::F16);
        let two_step = round_to(x as f32 as f64, FloatTy::F16);
        prop_assert_eq!(direct, two_step);
    }

    #[test]
    fn wider_formats_are_at_least_as_accurate(x in -1e4f64..1e4) {
        let e16 = demotion_error(x, FloatTy::F16).abs();
        let e32 = demotion_error(x, FloatTy::F32).abs();
        let e64 = demotion_error(x, FloatTy::F64).abs();
        prop_assert!(e64 == 0.0);
        prop_assert!(e32 <= e16 * (1.0 + 1e-12));
    }

    #[test]
    fn rounded_value_is_within_half_ulp(x in 0.5f64..1e4, ty in any_float_ty()) {
        let r = round_to(x, ty);
        if r.is_finite() {
            prop_assert!(
                (x - r).abs() <= ulp(x, ty) * 0.5 * (1.0 + 1e-12),
                "x={x} ty={ty} r={r}"
            );
        }
    }

    #[test]
    fn tape_is_lifo(values in prop::collection::vec(-1e9f64..1e9, 1..64)) {
        let mut t = Tape::new();
        for &v in &values {
            t.push_f(v).unwrap();
        }
        let mut popped = Vec::new();
        while let Ok(v) = t.pop_f() {
            popped.push(v);
        }
        let mut expect = values.clone();
        expect.reverse();
        prop_assert_eq!(popped, expect);
    }

    #[test]
    fn tape_peak_equals_max_live(values in prop::collection::vec(0usize..8, 1..100)) {
        // Interpret the sequence as push (v>0 repeated v times) / pop (0).
        let mut t = Tape::new();
        let mut live = 0usize;
        let mut max_live = 0usize;
        for v in values {
            if v == 0 {
                if live > 0 {
                    t.pop_f().unwrap();
                    live -= 1;
                }
            } else {
                for _ in 0..v {
                    t.push_f(1.0).unwrap();
                    live += 1;
                }
            }
            max_live = max_live.max(live);
        }
        prop_assert_eq!(t.peak_entries(), max_live);
    }
}

fn any_float_ty() -> impl Strategy<Value = FloatTy> {
    prop_oneof![
        Just(FloatTy::F16),
        Just(FloatTy::BF16),
        Just(FloatTy::F32),
        Just(FloatTy::F64)
    ]
}
