//! Property tests for the precision-simulation substrate: the soft-float
//! rounding functions must behave like IEEE 754 conversions, the tape
//! must be a faithful LIFO, and — on randomly generated *branching*
//! kernels (bounded loops + float compares) — the packed and enum
//! dispatch loops must agree bit-for-bit on the primal stream and on the
//! shadow pass's divergence report, with zero divergences whenever no
//! demotion is applied.

use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::precision::{demotion_error, round_to, ulp};
use chef_exec::prelude::*;
use chef_exec::shadow::run_shadow;
use chef_exec::tape::Tape;
use chef_ir::types::FloatTy;
use proptest::prelude::*;
use std::fmt::Write as _;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn rounding_is_idempotent(x in -1e30f64..1e30, ty in any_float_ty()) {
        let once = round_to(x, ty);
        prop_assert_eq!(round_to(once, ty), once);
    }

    #[test]
    fn rounding_is_monotone(a in -1e6f64..1e6, b in -1e6f64..1e6, ty in any_float_ty()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(round_to(lo, ty) <= round_to(hi, ty));
    }

    #[test]
    fn rounding_error_is_bounded_by_epsilon(x in 1e-3f64..1e3, ty in any_float_ty()) {
        // Relative error ≤ machine epsilon in the normal range.
        let err = demotion_error(x, ty).abs();
        prop_assert!(
            err <= ty.epsilon() * x.abs() * (1.0 + 1e-12),
            "x={x} ty={ty} err={err}"
        );
    }

    #[test]
    fn rounding_is_odd(x in -1e6f64..1e6, ty in any_float_ty()) {
        // round(-x) == -round(x) for round-to-nearest-even.
        prop_assert_eq!(round_to(-x, ty), -round_to(x, ty));
    }

    #[test]
    fn f16_matches_f32_double_rounding_path(x in -60000f64..60000.0) {
        // f64 -> f16 via our table must agree with f64 -> f32 -> f16
        // (f32 is wide enough that the two-step conversion cannot
        // double-round for values in the f16 range).
        let direct = round_to(x, FloatTy::F16);
        let two_step = round_to(x as f32 as f64, FloatTy::F16);
        prop_assert_eq!(direct, two_step);
    }

    #[test]
    fn wider_formats_are_at_least_as_accurate(x in -1e4f64..1e4) {
        let e16 = demotion_error(x, FloatTy::F16).abs();
        let e32 = demotion_error(x, FloatTy::F32).abs();
        let e64 = demotion_error(x, FloatTy::F64).abs();
        prop_assert!(e64 == 0.0);
        prop_assert!(e32 <= e16 * (1.0 + 1e-12));
    }

    #[test]
    fn rounded_value_is_within_half_ulp(x in 0.5f64..1e4, ty in any_float_ty()) {
        let r = round_to(x, ty);
        if r.is_finite() {
            prop_assert!(
                (x - r).abs() <= ulp(x, ty) * 0.5 * (1.0 + 1e-12),
                "x={x} ty={ty} r={r}"
            );
        }
    }

    #[test]
    fn tape_is_lifo(values in prop::collection::vec(-1e9f64..1e9, 1..64)) {
        let mut t = Tape::new();
        for &v in &values {
            t.push_f(v).unwrap();
        }
        let mut popped = Vec::new();
        while let Ok(v) = t.pop_f() {
            popped.push(v);
        }
        let mut expect = values.clone();
        expect.reverse();
        prop_assert_eq!(popped, expect);
    }

    #[test]
    fn tape_peak_equals_max_live(values in prop::collection::vec(0usize..8, 1..100)) {
        // Interpret the sequence as push (v>0 repeated v times) / pop (0).
        let mut t = Tape::new();
        let mut live = 0usize;
        let mut max_live = 0usize;
        for v in values {
            if v == 0 {
                if live > 0 {
                    t.pop_f().unwrap();
                    live -= 1;
                }
            } else {
                for _ in 0..v {
                    t.push_f(1.0).unwrap();
                    live += 1;
                }
            }
            max_live = max_live.max(live);
        }
        prop_assert_eq!(t.peak_entries(), max_live);
    }
}

fn any_float_ty() -> impl Strategy<Value = FloatTy> {
    prop_oneof![
        Just(FloatTy::F16),
        Just(FloatTy::BF16),
        Just(FloatTy::F32),
        Just(FloatTy::F64)
    ]
}

// ------------------------------------------------------- branching kernels

/// Deterministic split-mix generator for kernel synthesis (the same
/// recipe as `chef-shadow`'s proptests).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn lit(&mut self) -> f64 {
        0.5 + self.unit() * 1.5
    }
}

/// A bounded branching kernel over two inputs: a split accumulation
/// (`part` then `acc`), a float-threshold branch comparing the two
/// differently-associated sums (a near-tie, so demotions flip it on a
/// healthy fraction of seeds), and an optional piecewise tail.
fn branching_kernel(g: &mut Gen) -> String {
    let mut src = String::from("double f(double x0, double x1) {\n");
    let step = format!("x{} * {:.17}", g.below(2), 0.03 + g.unit() * 0.05);
    let iters = 8 + g.below(40);
    let _ = writeln!(src, "    double part = 0.0;");
    let _ = writeln!(
        src,
        "    for (int i = 0; i < {iters}; i++) {{ part = part + {step}; }}"
    );
    let _ = writeln!(src, "    double acc = part;");
    if g.below(2) == 0 {
        let _ = writeln!(
            src,
            "    for (int i = 0; i < {iters}; i++) {{ acc = acc + {step}; }}"
        );
    } else {
        let _ = writeln!(
            src,
            "    while (acc < part * 1.99) {{ acc = acc + {step}; }}"
        );
    }
    let _ = writeln!(src, "    double chk = part + part;");
    let _ = writeln!(src, "    double r = 0.0;");
    let _ = writeln!(
        src,
        "    if (acc < chk) {{ r = acc * {:.17}; }} else {{ r = acc + {:.17}; }}",
        g.lit(),
        g.lit()
    );
    if g.below(2) == 0 {
        let _ = writeln!(src, "    double w = 0.0;");
        let _ = writeln!(
            src,
            "    if (acc * 0.5 <= chk * {:.17}) {{ w = r + {:.17}; }} else {{ w = r * {:.17}; }}",
            0.5 * (1.0 + (g.unit() - 0.5) * 2e-7),
            g.lit(),
            g.lit()
        );
        let _ = writeln!(src, "    return w;\n}}");
    } else {
        let _ = writeln!(src, "    return r;\n}}");
    }
    src
}

fn compiled_pair(
    src: &str,
    demote_all_to: Option<FloatTy>,
) -> (
    chef_exec::bytecode::CompiledFunction,
    chef_exec::bytecode::CompiledFunction,
) {
    let mut p = chef_ir::parser::parse_program(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    chef_ir::typeck::check_program(&mut p).unwrap_or_else(|e| panic!("{e:?}\n{src}"));
    let func = &p.functions[0];
    let mut pm = PrecisionMap::empty();
    if let Some(ty) = demote_all_to {
        for (id, v) in func.vars_iter() {
            if v.ty.is_differentiable() {
                pm.set(id, ty);
            }
        }
    }
    let mk = |pack: bool| {
        compile(
            func,
            &CompileOptions {
                precisions: pm.clone(),
                pack,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{e:?}\n{src}"))
    };
    (mk(true), mk(false))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn branching_kernels_are_bit_identical_packed_vs_enum(seed in 0u64..(1u64 << 60)) {
        let mut g = Gen(seed | 1);
        let src = branching_kernel(&mut g);
        let demote = if g.below(2) == 0 { Some(FloatTy::F32) } else { None };
        let (packed, enum_only) = compiled_pair(&src, demote);
        prop_assert!(packed.packed.is_some() && enum_only.packed.is_none());
        let args = vec![ArgValue::F(g.lit()), ArgValue::F(g.lit())];
        let opts = ExecOptions::default();
        // Primal: identical results and identical dispatch counts.
        let a = run_with(&packed, args.clone(), &opts).unwrap_or_else(|t| panic!("{t}\n{src}"));
        let b = run_with(&enum_only, args.clone(), &opts).unwrap_or_else(|t| panic!("{t}\n{src}"));
        prop_assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits(), "{}", src);
        prop_assert_eq!(a.stats, b.stats, "{}", src);
        // Shadow: identical divergence reports (count, points, per-var).
        let sa = run_shadow::<f64>(&packed, args.clone(), &opts)
            .unwrap_or_else(|t| panic!("{t}\n{src}"));
        let sb = run_shadow::<f64>(&enum_only, args, &opts)
            .unwrap_or_else(|t| panic!("{t}\n{src}"));
        prop_assert_eq!(sa.divergence_count, sb.divergence_count, "{}", src);
        prop_assert_eq!(&sa.divergence, &sb.divergence, "{}", src);
        prop_assert_eq!(&sa.var_divergence, &sb.var_divergence, "{}", src);
        prop_assert_eq!(sa.acc_error.to_bits(), sb.acc_error.to_bits(), "{}", src);
        // And without demotion the f64 shadow can never diverge.
        if demote.is_none() {
            prop_assert_eq!(sa.divergence_count, 0, "{}", src);
            prop_assert!(sa.divergence.is_empty(), "{src}");
        }
    }
}
