//! Differential test: packed-word dispatch must be unobservable.
//!
//! Every `chef-apps` kernel is compiled twice — packing off (enum
//! interpreter) and packing on (packed-word interpreter, the default) —
//! and executed on the same workload in primal, fully-demoted, adjoint
//! and fused-shadow modes. The two compilations must agree
//! **bit-for-bit** on return values, output arguments, shadow artifacts
//! (samples, attribution, accumulated error) and *every* statistic
//! including `instrs_executed`: packing is 1:1 per instruction, so not
//! even the dispatch count may change.
//!
//! A proptest sweep repeats the primal+shadow comparison on randomly
//! generated straight-line kernels with random demotion sets, and a
//! round-trip test pins `decode(pack(instr)) == instr` across every word
//! the packer emits for the app kernels.

use chef_exec::bytecode::CompiledFunction;
use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_exec::shadow::run_shadow;
use chef_ir::ast::{Function, Program, VarId};
use chef_ir::types::{ElemTy, FloatTy, Type};
use proptest::prelude::*;

fn kernels() -> Vec<(&'static str, Program, &'static str, Vec<ArgValue>)> {
    vec![
        (
            "arclen",
            chef_apps::arclen::program(),
            chef_apps::arclen::NAME,
            chef_apps::arclen::args(500),
        ),
        (
            "simpsons",
            chef_apps::simpsons::program(),
            chef_apps::simpsons::NAME,
            chef_apps::simpsons::args(500),
        ),
        (
            "kmeans",
            chef_apps::kmeans::program(),
            chef_apps::kmeans::NAME,
            chef_apps::kmeans::args(&chef_apps::kmeans::workload(100, 5, 4, 42)),
        ),
        (
            "blackscholes",
            chef_apps::blackscholes::program(),
            chef_apps::blackscholes::NAME,
            chef_apps::blackscholes::args(&chef_apps::blackscholes::workload(50, 42)),
        ),
        (
            "hpccg",
            chef_apps::hpccg::program(),
            chef_apps::hpccg::NAME,
            chef_apps::hpccg::args(&chef_apps::hpccg::problem(4, 4, 4)),
        ),
    ]
}

fn inlined_kernel(program: &Program, func: &str) -> Function {
    chef_passes::inline_program(program)
        .expect("kernel inlines")
        .function(func)
        .expect("kernel exists")
        .clone()
}

fn demote_all(func: &Function) -> PrecisionMap {
    let mut pm = PrecisionMap::empty();
    for (id, v) in func.vars_iter() {
        if let Type::Float(_) | Type::Array(ElemTy::Float(_)) = v.ty {
            pm.set(id, FloatTy::F32);
        }
    }
    pm
}

fn compile_pair(func: &Function, pm: &PrecisionMap) -> (CompiledFunction, CompiledFunction) {
    let enum_only = compile(
        func,
        &CompileOptions {
            precisions: pm.clone(),
            pack: false,
            ..Default::default()
        },
    )
    .expect("enum compiles");
    // `pack: true` is explicit (not `..Default::default()`): the CI
    // matrix runs this suite with `CHEF_EXEC_PACK=0`, and the point here
    // is packed-vs-enum, not default-vs-enum.
    let packed = compile(
        func,
        &CompileOptions {
            precisions: pm.clone(),
            pack: true,
            ..Default::default()
        },
    )
    .expect("packed compiles");
    assert!(enum_only.packed.is_none());
    assert!(
        packed.packed.is_some(),
        "packer bailed on a compiler-produced function"
    );
    // The streams themselves are identical; only the packed form differs.
    assert_eq!(enum_only.instrs, packed.instrs);
    (enum_only, packed)
}

fn assert_args_bit_equal(label: &str, a: &[ArgValue], b: &[ArgValue]) {
    assert_eq!(a.len(), b.len(), "{label}: arg count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (ArgValue::F(x), ArgValue::F(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: scalar arg {i}")
            }
            (ArgValue::FArr(x), ArgValue::FArr(y)) => {
                assert_eq!(x.len(), y.len(), "{label}: array arg {i} length");
                for (k, (xv, yv)) in x.iter().zip(y).enumerate() {
                    assert_eq!(xv.to_bits(), yv.to_bits(), "{label}: array arg {i}[{k}]");
                }
            }
            (x, y) => assert_eq!(x, y, "{label}: arg {i}"),
        }
    }
}

/// Primal comparison: identical outcome and identical statistics —
/// packing must not even change the dispatch count.
fn assert_packed_unobservable(label: &str, func: &Function, pm: &PrecisionMap, args: &[ArgValue]) {
    let (enum_only, packed) = compile_pair(func, pm);
    let opts = ExecOptions {
        max_instrs: Some(500_000_000),
        ..Default::default()
    };
    let a = run_with(&enum_only, args.to_vec(), &opts)
        .unwrap_or_else(|t| panic!("{label}: enum trapped: {t}"));
    let b = run_with(&packed, args.to_vec(), &opts)
        .unwrap_or_else(|t| panic!("{label}: packed trapped: {t}"));
    match (&a.ret, &b.ret) {
        (Some(Value::F(x)), Some(Value::F(y))) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: float return differs")
        }
        (x, y) => assert_eq!(x, y, "{label}: return differs"),
    }
    assert_args_bit_equal(label, &a.args, &b.args);
    assert_eq!(a.stats, b.stats, "{label}: stats differ");
}

/// Shadow comparison: identical primal + shadow artifacts.
fn assert_packed_shadow_unobservable(
    label: &str,
    func: &Function,
    pm: &PrecisionMap,
    args: &[ArgValue],
) {
    let (enum_only, packed) = compile_pair(func, pm);
    let opts = ExecOptions {
        max_instrs: Some(500_000_000),
        ..Default::default()
    };
    let a = run_shadow::<f64>(&enum_only, args.to_vec(), &opts)
        .unwrap_or_else(|t| panic!("{label}: enum shadow trapped: {t}"));
    let b = run_shadow::<f64>(&packed, args.to_vec(), &opts)
        .unwrap_or_else(|t| panic!("{label}: packed shadow trapped: {t}"));
    match (a.ret, b.ret) {
        (Some(Value::F(x)), Some(Value::F(y))) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: primal return differs")
        }
        (x, y) => assert_eq!(x, y, "{label}: return differs"),
    }
    match (a.shadow_ret, b.shadow_ret) {
        (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits(), "{label}: shadow return"),
        (x, y) => assert_eq!(x, y, "{label}: shadow return presence"),
    }
    assert_eq!(
        a.acc_error.to_bits(),
        b.acc_error.to_bits(),
        "{label}: acc_error"
    );
    assert_eq!(a.stats, b.stats, "{label}: stats");
    assert_eq!(a.samples.len(), b.samples.len(), "{label}: sample count");
    for (pc, (x, y)) in a.samples.iter().zip(&b.samples).enumerate() {
        assert_eq!(
            x.sum.to_bits(),
            y.sum.to_bits(),
            "{label}: sample sum at pc {pc}"
        );
        assert_eq!(
            x.max.to_bits(),
            y.max.to_bits(),
            "{label}: sample max at pc {pc}"
        );
        assert_eq!(x.count, y.count, "{label}: sample count at pc {pc}");
    }
    assert_eq!(a.var_error.len(), b.var_error.len(), "{label}: var table");
    for ((xn, xe), (yn, ye)) in a.var_error.iter().zip(&b.var_error) {
        assert_eq!(xn, yn, "{label}: var name");
        assert_eq!(xe.to_bits(), ye.to_bits(), "{label}: var error {xn}");
    }
    assert_args_bit_equal(label, &a.args, &b.args);
}

#[test]
fn primal_kernels_are_bit_identical_packed_vs_enum() {
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        assert_packed_unobservable(label, &func, &PrecisionMap::empty(), &args);
    }
}

#[test]
fn fully_demoted_kernels_are_bit_identical_packed_vs_enum() {
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let pm = demote_all(&func);
        assert_packed_unobservable(&format!("{label}/demoted"), &func, &pm, &args);
    }
}

#[test]
fn adjoint_kernels_are_bit_identical_packed_vs_enum() {
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let grad = chef_ad::reverse::reverse_diff(&func)
            .unwrap_or_else(|e| panic!("{label}: reverse_diff failed: {e}"));
        let mut grad_args = args.to_vec();
        for a in &args {
            match a {
                ArgValue::F(_) => grad_args.push(ArgValue::F(0.0)),
                ArgValue::FArr(v) => grad_args.push(ArgValue::FArr(vec![0.0; v.len()])),
                _ => {}
            }
        }
        assert_packed_unobservable(
            &format!("{label}/adjoint"),
            &grad,
            &PrecisionMap::empty(),
            &grad_args,
        );
    }
}

#[test]
fn shadow_kernels_are_bit_identical_packed_vs_enum() {
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let pm = demote_all(&func);
        assert_packed_shadow_unobservable(&format!("{label}/shadow"), &func, &pm, &args);
    }
}

#[test]
fn packed_words_decode_back_to_their_instructions() {
    for (label, program, name, _) in kernels() {
        let func = inlined_kernel(&program, name);
        let compiled = compile(
            &func,
            &CompileOptions {
                pack: true,
                ..Default::default()
            },
        )
        .expect("compiles");
        let packed = compiled.packed.as_ref().expect("packed");
        assert_eq!(packed.words.len(), compiled.instrs.len(), "{label}");
        for (pc, (&w, ins)) in packed.words.iter().zip(&compiled.instrs).enumerate() {
            let decoded = chef_exec::pack::decode(w, packed)
                .unwrap_or_else(|| panic!("{label}: word {pc} undecodable"));
            assert!(
                chef_exec::pack::instr_eq_bits(&decoded, ins),
                "{label}: word {pc}: {decoded:?} != {ins:?}"
            );
        }
        // The packed disassembly round-trips through the same decoder:
        // one header plus one line per word, each naming its instruction.
        let disasm = packed.disassemble();
        assert_eq!(disasm.lines().count(), packed.words.len() + 1, "{label}");
        assert!(!disasm.contains("<undecodable>"), "{label}:\n{disasm}");
    }
}

// ---------------------------------------------------------------- proptest

/// Deterministic split-mix generator for kernel synthesis (the same
/// recipe as `chef-shadow`'s proptests).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn lit(&mut self) -> f64 {
        (self.unit() * 4.0 - 2.0) * 1.5 + 0.25
    }
}

/// A random straight-line kernel over `n_inputs` inputs and `n_vars`
/// derived locals; returns the source and the local names.
fn straight_line_kernel(g: &mut Gen, n_inputs: usize, n_vars: usize) -> (String, Vec<String>) {
    let mut src = String::from("double f(");
    for i in 0..n_inputs {
        if i > 0 {
            src.push_str(", ");
        }
        src.push_str(&format!("double x{i}"));
    }
    src.push_str(") {\n");
    let mut names: Vec<String> = (0..n_inputs).map(|i| format!("x{i}")).collect();
    let mut locals = Vec::new();
    for v in 0..n_vars {
        let a = &names[g.below(names.len())];
        let b = &names[g.below(names.len())];
        let expr = match g.below(6) {
            0 => format!("{a} + {b}"),
            1 => format!("{a} - {b}"),
            2 => format!("{a} * {b}"),
            3 => format!("{a} * {:.6} + {b}", g.lit()),
            4 => format!("sin({a}) + {:.6}", g.lit()),
            _ => format!("sqrt({a} * {a} + {b} * {b} + 0.5)"),
        };
        src.push_str(&format!("    double v{v} = {expr};\n"));
        let name = format!("v{v}");
        names.push(name.clone());
        locals.push(name);
    }
    src.push_str("    return ");
    for (k, n) in locals.iter().enumerate() {
        if k > 0 {
            src.push_str(" + ");
        }
        src.push_str(n);
    }
    src.push_str(";\n}\n");
    (src, locals)
}

fn parse(src: &str) -> Program {
    let mut p = chef_ir::parser::parse_program(src).expect("generated kernel parses");
    chef_ir::typeck::check_program(&mut p).expect("generated kernel typechecks");
    p
}

fn config_of(p: &Program, names: &[String]) -> PrecisionMap {
    let f = &p.functions[0];
    let mut pm = PrecisionMap::empty();
    for (id, v) in f.vars_iter() {
        if names.contains(&v.name) {
            pm.set(id, FloatTy::F32);
        }
    }
    pm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_kernels_are_bit_identical_packed_vs_enum(seed in 0u64..(1u64 << 60)) {
        let mut g = Gen(seed);
        let n_inputs = 2 + g.below(3);
        let n_vars = 3 + g.below(6);
        let (src, locals) = straight_line_kernel(&mut g, n_inputs, n_vars);
        let p = parse(&src);
        // A random (possibly empty) demotion subset.
        let demoted: Vec<String> = locals
            .iter()
            .filter(|_| g.below(2) == 0)
            .cloned()
            .collect();
        let pm = config_of(&p, &demoted);
        let args: Vec<ArgValue> = (0..n_inputs).map(|_| ArgValue::F(g.lit())).collect();
        let func = p.functions[0].clone();
        assert_packed_unobservable("generated", &func, &pm, &args);
        assert_packed_shadow_unobservable("generated", &func, &pm, &args);
        // Round-trip every packed word of the generated kernel too.
        let compiled = compile(&func, &CompileOptions {
            precisions: pm,
            pack: true,
            ..Default::default()
        }).unwrap();
        let packed = compiled.packed.as_ref().unwrap();
        for (&w, ins) in packed.words.iter().zip(&compiled.instrs) {
            let decoded = chef_exec::pack::decode(w, packed).expect("decodes");
            prop_assert!(chef_exec::pack::instr_eq_bits(&decoded, ins));
        }
    }

    #[test]
    fn vars_ids_demote_without_packing_bail(seed in 0u64..(1u64 << 60)) {
        // Demoting by raw VarId (any differentiable variable, not just
        // the sampled locals) must never make the packer bail or diverge.
        let mut g = Gen(seed);
        let (src, _) = straight_line_kernel(&mut g, 2, 4);
        let p = parse(&src);
        let func = p.functions[0].clone();
        let ids: Vec<VarId> = func
            .vars_iter()
            .filter(|(_, v)| v.ty.is_differentiable())
            .map(|(id, _)| id)
            .collect();
        let mut pm = PrecisionMap::empty();
        for id in ids {
            if g.below(3) == 0 {
                pm.set(id, FloatTy::F16);
            }
        }
        let args = vec![ArgValue::F(g.lit()), ArgValue::F(g.lit())];
        assert_packed_unobservable("vid", &func, &pm, &args);
    }
}
