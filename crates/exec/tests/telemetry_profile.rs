//! Telemetry-layer integration tests.
//!
//! The per-pc profiler is an *observer*: with `ExecOptions::profile` on,
//! every dispatch loop increments one slot per executed instruction, so
//! on a successful run the profile must sum to exactly
//! `ExecStats::instrs_executed` — in the enum interpreter, in the packed
//! interpreter (whose `executed` accounting is block-granular), and in
//! both fused-shadow loops. The enum and packed profiles must agree
//! slot-for-slot, and the shadow profile must match the plain VM profile
//! on the same kernel (the shadow pass replays the primal instruction
//! stream 1:1).
//!
//! Span coverage: `run_batch_parallel_in` opens one `exec.worker` span
//! per pool checkout and one `exec.run` span per argument set; the run
//! spans must nest under a worker span on the same thread.

use chef_exec::compile::{compile, CompileOptions};
use chef_exec::prelude::*;
use chef_ir::ast::{Function, Program};

fn kernels() -> Vec<(&'static str, Program, &'static str, Vec<ArgValue>)> {
    vec![
        (
            "arclen",
            chef_apps::arclen::program(),
            chef_apps::arclen::NAME,
            chef_apps::arclen::args(500),
        ),
        (
            "simpsons",
            chef_apps::simpsons::program(),
            chef_apps::simpsons::NAME,
            chef_apps::simpsons::args(500),
        ),
        (
            "kmeans",
            chef_apps::kmeans::program(),
            chef_apps::kmeans::NAME,
            chef_apps::kmeans::args(&chef_apps::kmeans::workload(100, 5, 4, 42)),
        ),
        (
            "blackscholes",
            chef_apps::blackscholes::program(),
            chef_apps::blackscholes::NAME,
            chef_apps::blackscholes::args(&chef_apps::blackscholes::workload(50, 42)),
        ),
        (
            "hpccg",
            chef_apps::hpccg::program(),
            chef_apps::hpccg::NAME,
            chef_apps::hpccg::args(&chef_apps::hpccg::problem(4, 4, 4)),
        ),
    ]
}

fn inlined_kernel(program: &Program, func: &str) -> Function {
    chef_passes::inline_program(program)
        .expect("kernel inlines")
        .function(func)
        .expect("kernel exists")
        .clone()
}

fn compile_with(func: &Function, pack: bool) -> chef_exec::bytecode::CompiledFunction {
    // `pack` is explicit (not `..Default::default()`): the CI matrix runs
    // this suite with `CHEF_EXEC_PACK=0`, and the point is that *both*
    // interpreters profile correctly regardless of ambient defaults.
    compile(
        func,
        &CompileOptions {
            pack,
            ..Default::default()
        },
    )
    .expect("kernel compiles")
}

/// The profiled instruction counts bit-match `instrs_executed` for both
/// dispatch strategies on every app kernel, and the two strategies agree
/// per-pc (packing is 1:1 per instruction).
#[test]
fn profiled_counts_match_executed_on_all_kernels() {
    let opts = ExecOptions {
        profile: true,
        ..Default::default()
    };
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let enum_only = compile_with(&func, false);
        let packed = compile_with(&func, true);
        assert!(enum_only.packed.is_none(), "{label}: enum compile packed");
        assert!(packed.packed.is_some(), "{label}: packer bailed");

        let mut m = chef_exec::vm::Machine::new();
        let out_e = m
            .run_reused(&enum_only, args.clone(), &opts)
            .unwrap_or_else(|t| panic!("{label}: enum run trapped: {t:?}"));
        let out_p = m
            .run_reused(&packed, args.clone(), &opts)
            .unwrap_or_else(|t| panic!("{label}: packed run trapped: {t:?}"));

        let prof_e = out_e.profile.as_ref().expect("enum profile present");
        let prof_p = out_p.profile.as_ref().expect("packed profile present");
        assert_eq!(
            prof_e.total(),
            out_e.stats.instrs_executed,
            "{label}: enum profile total != instrs_executed"
        );
        assert_eq!(
            prof_p.total(),
            out_p.stats.instrs_executed,
            "{label}: packed profile total != instrs_executed"
        );
        assert_eq!(
            prof_e.pc_counts, prof_p.pc_counts,
            "{label}: enum and packed per-pc counts differ"
        );

        // Off by default: the same runs without the flag carry no profile.
        let out_off = m
            .run_reused(&packed, args.clone(), &ExecOptions::default())
            .expect("off-mode run");
        assert!(out_off.profile.is_none(), "{label}: profile without flag");
        assert_eq!(
            out_off.stats.instrs_executed, out_p.stats.instrs_executed,
            "{label}: profiling changed the dispatch count"
        );
    }
}

/// The fused-shadow loops replay the primal stream 1:1, so the shadow
/// profile equals the plain VM profile on the same compiled function —
/// and is indexed like `samples`, making `pc_counts[pc] * samples[pc]`
/// a frequency-times-error hotness signal.
#[test]
fn shadow_profile_matches_vm_profile() {
    let opts = ExecOptions {
        profile: true,
        ..Default::default()
    };
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        for pack in [false, true] {
            let compiled = compile_with(&func, pack);
            let mut vm = chef_exec::vm::Machine::new();
            let vm_out = vm
                .run_reused(&compiled, args.clone(), &opts)
                .unwrap_or_else(|t| panic!("{label}: vm run trapped: {t:?}"));
            let mut sm = chef_exec::shadow::ShadowMachine::<f64>::new();
            let sh_out = sm
                .run_reused(&compiled, args.clone(), &opts)
                .unwrap_or_else(|t| panic!("{label}: shadow run trapped: {t:?}"));

            let sh_prof = sh_out.profile.as_ref().expect("shadow profile present");
            assert_eq!(
                sh_prof.total(),
                sh_out.stats.instrs_executed,
                "{label} pack={pack}: shadow profile total != instrs_executed"
            );
            assert_eq!(
                vm_out.profile.as_ref().unwrap().pc_counts,
                sh_prof.pc_counts,
                "{label} pack={pack}: shadow and vm per-pc counts differ"
            );
            assert_eq!(
                sh_prof.pc_counts.len(),
                sh_out.samples.len(),
                "{label} pack={pack}: profile not indexed like samples"
            );
        }
    }
}

/// `ExecProfile::merge` accumulates across runs; `hottest` ranks by
/// count and omits never-executed pcs.
#[test]
fn profile_merge_and_hottest() {
    let program = chef_apps::arclen::program();
    let func = inlined_kernel(&program, chef_apps::arclen::NAME);
    let compiled = compile_with(&func, true);
    let opts = ExecOptions {
        profile: true,
        ..Default::default()
    };
    let mut m = chef_exec::vm::Machine::new();
    let a = m
        .run_reused(&compiled, chef_apps::arclen::args(100), &opts)
        .unwrap()
        .profile
        .unwrap();
    let b = m
        .run_reused(&compiled, chef_apps::arclen::args(300), &opts)
        .unwrap()
        .profile
        .unwrap();
    let mut merged = a.clone();
    merged.merge(&b);
    assert_eq!(merged.total(), a.total() + b.total());
    let hot = merged.hottest(4);
    assert!(!hot.is_empty() && hot.len() <= 4);
    assert!(hot.windows(2).all(|w| w[0].1 >= w[1].1), "not sorted");
    assert!(hot.iter().all(|&(_, n)| n > 0), "zero-count pc reported");
}

/// Under `run_batch_parallel_in`, every `exec.run` span this test owns
/// nests under an `exec.worker` span recorded on the same thread. Other
/// tests in this binary run concurrently and also emit spans, so the
/// assertion is existential over our batch (matched by span count), not
/// universal over the snapshot.
#[test]
fn span_nesting_well_formed_under_parallel_batch() {
    let program = chef_apps::arclen::program();
    let func = inlined_kernel(&program, chef_apps::arclen::NAME);
    let compiled = compile_with(&func, true);
    let arena = chef_exec::arena::MachineArena::new();
    let arg_sets: Vec<Vec<ArgValue>> = (1..=16).map(|n| chef_apps::arclen::args(n * 10)).collect();
    let results = chef_exec::vm::run_batch_parallel_in(
        &compiled,
        arg_sets,
        &ExecOptions::default(),
        Some(4),
        &arena,
    );
    assert!(results.iter().all(|r| r.is_ok()));

    let snap = chef_telemetry::snapshot();
    let workers = snap.spans_named("exec.worker");
    let runs = snap.spans_named("exec.run");
    assert!(!workers.is_empty(), "no worker spans recorded");
    let mut nested = 0usize;
    for r in &runs {
        let Some(parent) = r.parent else { continue };
        // A parent id that resolves to no record belongs to a span still
        // open (or evicted from a bounded ring) — skip, don't fail.
        let Some(p) = snap.spans.iter().find(|s| s.id == parent) else {
            continue;
        };
        assert_eq!(p.name, "exec.worker", "exec.run nested under {}", p.name);
        assert_eq!(p.thread, r.thread, "parent span on a different thread");
        assert!(
            p.start_ns <= r.start_ns && r.end_ns <= p.end_ns,
            "child span not contained in its parent"
        );
        nested += 1;
    }
    assert!(nested > 0, "no exec.run span resolved to its worker parent");
}
