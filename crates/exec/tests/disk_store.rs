//! Corrupt-store robustness: every way an on-disk entry can rot —
//! truncation, a flipped checksum byte, a wrong version header, a torn
//! write left behind as a temp file — must degrade to a *counted* miss
//! that falls back to a cold compile with bit-identical results. A
//! corrupt entry is quarantined (renamed to `.bad`), never trusted,
//! and never panics the loader.

use chef_exec::prelude::*;
use chef_exec::store::{content_key, ContentKey, DiskStore};

const KERNEL: &str = "double f(double x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s += sin(x + i * 0.01) * 0.5; }
    return s;
}";

struct Fixture {
    dir: std::path::PathBuf,
    func: CompiledFunction,
    key: ContentKey,
    cold_bits: u64,
}

impl Fixture {
    /// Compile the kernel cold, record its reference output, and write
    /// one valid entry into a fresh store directory named `tag`.
    fn new(tag: &str) -> Fixture {
        let mut p = chef_ir::parser::parse_program(KERNEL).unwrap();
        chef_ir::typeck::check_program(&mut p).unwrap();
        let func = compile_default(&p.functions[0]).unwrap();
        let key = content_key(&p.functions[0], &CompileOptions::default());
        let cold_bits = run_f64(&func).to_bits();

        let dir = std::env::temp_dir().join(format!("chef-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.store(&key, &func));
        assert_eq!(store.writes(), 1);
        Fixture {
            dir,
            func,
            key,
            cold_bits,
        }
    }

    fn store(&self) -> DiskStore {
        DiskStore::open(&self.dir).unwrap()
    }

    fn entry(&self) -> std::path::PathBuf {
        self.store().entry_path(&self.key)
    }

    /// Assert that a load from the (corrupted) store misses, bumps the
    /// corrupt counter, quarantines the entry, and that recompiling
    /// reproduces the cold-run bits exactly.
    fn assert_degrades_to_counted_miss(&self) {
        let store = self.store();
        assert!(store.load(&self.key).is_none(), "corrupt entry must miss");
        assert_eq!(store.misses(), 1, "corruption counts as a miss");
        assert_eq!(store.corrupt(), 1, "corruption must be counted");
        assert_eq!(store.hits(), 0);
        assert!(!self.entry().exists(), "corrupt entry must be quarantined");
        assert!(
            self.entry().with_extension("cfn.bad").exists() || quarantined_count(&self.dir) == 1,
            "quarantined file must remain for forensics"
        );
        // The fallback path: compile again, bit-identical to cold.
        let recompiled_bits = run_f64(&self.func).to_bits();
        assert_eq!(recompiled_bits, self.cold_bits);
        // And the store recovers: a fresh write round-trips again.
        assert!(store.store(&self.key, &self.func));
        let reloaded = store.load(&self.key).expect("rewritten entry loads");
        assert_eq!(run_f64(&reloaded).to_bits(), self.cold_bits);
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn run_f64(func: &CompiledFunction) -> f64 {
    let out = run(func, vec![ArgValue::F(0.37), ArgValue::I(50)]).unwrap();
    match out.ret {
        Some(Value::F(v)) => v,
        other => panic!("expected float, got {other:?}"),
    }
}

fn quarantined_count(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".bad"))
        .count()
}

#[test]
fn truncated_entry_degrades_to_counted_miss() {
    let fx = Fixture::new("trunc");
    let bytes = std::fs::read(fx.entry()).unwrap();
    std::fs::write(fx.entry(), &bytes[..bytes.len() / 2]).unwrap();
    fx.assert_degrades_to_counted_miss();
}

#[test]
fn flipped_checksum_byte_degrades_to_counted_miss() {
    let fx = Fixture::new("bitflip");
    let mut bytes = std::fs::read(fx.entry()).unwrap();
    // Flip one bit in the trailing checksum word itself.
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(fx.entry(), &bytes).unwrap();
    fx.assert_degrades_to_counted_miss();
}

#[test]
fn flipped_payload_byte_degrades_to_counted_miss() {
    let fx = Fixture::new("payload");
    let mut bytes = std::fs::read(fx.entry()).unwrap();
    // Flip a bit in the middle of the payload; the checksum catches it.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(fx.entry(), &bytes).unwrap();
    fx.assert_degrades_to_counted_miss();
}

#[test]
fn wrong_version_header_degrades_to_counted_miss() {
    let fx = Fixture::new("version");
    let mut bytes = std::fs::read(fx.entry()).unwrap();
    // Bytes 8..12 hold the little-endian format version after the
    // 8-byte magic. Pretend a future version wrote this entry.
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(fx.entry(), &bytes).unwrap();
    fx.assert_degrades_to_counted_miss();
}

#[test]
fn cfg_tier_variants_never_cross_hit() {
    // The CFG tier flag (and its revision) are part of a variant's
    // content key: bytecode optimized by the tier must never be served
    // to a `cfg: false` compile, and vice versa — a stale cross-hit
    // would silently change pc-indexed artifacts (profiles, trap sites).
    let mut p = chef_ir::parser::parse_program(KERNEL).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    let func = &p.functions[0];
    let with_cfg = |on: bool| CompileOptions {
        cfg: on,
        ..Default::default()
    };
    let key_on = content_key(func, &with_cfg(true));
    let key_off = content_key(func, &with_cfg(false));
    assert_ne!(
        key_on.to_string(),
        key_off.to_string(),
        "cfg on/off must produce distinct content keys"
    );

    let dir = std::env::temp_dir().join(format!("chef-disk-cfgkey-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::open(&dir).unwrap();
    let compiled_on = compile(func, &with_cfg(true)).unwrap();
    assert!(store.store(&key_on, &compiled_on));
    // The cfg-off key misses despite the cfg-on entry sitting next to it.
    assert!(store.load(&key_off).is_none(), "cfg-off must not cross-hit");
    assert_eq!(store.misses(), 1);
    assert_eq!(store.corrupt(), 0);
    // And the matching key still round-trips.
    let loaded = store.load(&key_on).expect("cfg-on entry hits its own key");
    assert_eq!(run_f64(&loaded).to_bits(), run_f64(&compiled_on).to_bits());
    assert_eq!(store.hits(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_leaves_store_consistent() {
    // A crash mid-write leaves a temp file but never a partial entry:
    // the final name only ever appears via rename. Loads on the key
    // miss cleanly (plain miss, NOT corruption — no entry exists), and
    // stray temp files do not shadow or break later writes.
    let mut p = chef_ir::parser::parse_program(KERNEL).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    let func = compile_default(&p.functions[0]).unwrap();
    let key = content_key(&p.functions[0], &CompileOptions::default());
    let cold_bits = run_f64(&func).to_bits();

    let dir = std::env::temp_dir().join(format!("chef-disk-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::open(&dir).unwrap();

    // Simulate the torn write: a half-serialized temp file on disk.
    let torn = dir.join(format!(".{}.9999.0.tmp", key));
    std::fs::write(&torn, b"CHEFFUNC\x01\x00\x00").unwrap();

    assert!(store.load(&key).is_none());
    assert_eq!(store.misses(), 1, "absent entry is a plain counted miss");
    assert_eq!(store.corrupt(), 0, "a torn temp file is not corruption");

    // Recovery: a real write lands atomically despite the debris, and
    // the loaded copy is bit-identical to the cold compile.
    assert!(store.store(&key, &func));
    let loaded = store.load(&key).expect("entry must load after rename");
    assert_eq!(run_f64(&loaded).to_bits(), cold_bits);
    assert_eq!(store.hits(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
