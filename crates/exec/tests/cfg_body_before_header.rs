//! Repro: reducible loop whose body block precedes the header in pc
//! order. LICM hoists from the early block and apply_plan's target
//! remapping (which assumes all deletions happen at/after the header
//! start) corrupts the stream.

use chef_exec::bytecode::{CmpOp, CompiledFunction, IReg, Instr, ParamKind, ParamSpec, RetKind};
use chef_exec::value::ArgValue;
use chef_ir::span::Span;

fn func() -> CompiledFunction {
    use Instr::*;
    let instrs = vec![
        // entry: jump forward to the header
        Jmp { target: 3 },
        // B (loop body, textually BEFORE the header): invariant op
        IAddImm {
            dst: IReg(3),
            a: IReg(0),
            imm: 5,
        },
        // latch: back edge B -> H
        Jmp { target: 3 },
        // H: i += 1
        IAddImm {
            dst: IReg(1),
            a: IReg(1),
            imm: 1,
        },
        // H terminator: while (i < 3) goto B
        ICmpImmJmpTrue {
            op: CmpOp::Lt,
            a: IReg(1),
            imm: 3,
            target: 1,
        },
        RetI { src: IReg(1) },
    ];
    let spans = vec![Span::default(); instrs.len()];
    CompiledFunction {
        name: "body_before_header".into(),
        instrs,
        spans,
        n_fregs: 0,
        n_iregs: 4,
        n_aregs: 0,
        params: vec![ParamSpec {
            name: "p".into(),
            kind: ParamKind::I,
            by_ref: false,
            reg: 0,
        }],
        ret: RetKind::I,
        fvar_names: vec![],
        avar_names: vec![],
        packed: None,
    }
}

#[test]
fn body_before_header_loop_is_preserved() {
    let base = func();
    let mut opt = base.clone();
    let stats = chef_exec::cfg::optimize(&mut opt);
    eprintln!("stats: hoisted={} guards={}", stats.hoisted, stats.guards);
    eprintln!("before:\n{}", base.disassemble());
    eprintln!("after:\n{}", opt.disassemble());
    let a = chef_exec::vm::run(&base, vec![ArgValue::I(9)]).unwrap();
    let b = chef_exec::vm::run(&opt, vec![ArgValue::I(9)]).unwrap();
    assert_eq!(a.ret, b.ret);
}
