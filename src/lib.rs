//! # chef-fp — facade crate of the CHEF-FP reproduction workspace
//!
//! Re-exports the public APIs of every workspace crate under stable paths.
//! See the [README](https://github.com/chef-fp/chef-fp-rs) for a tour;
//! the typical entry point is [`core::prelude::estimate_error_src`]:
//!
//! ```
//! use chef_fp::core::prelude::*;
//! use chef_fp::exec::prelude::ArgValue;
//!
//! let df = estimate_error_src(
//!     "float func(float x, float y) { float z; z = x + y; return z; }",
//!     "func",
//!     &EstimateOptions::default(),
//! ).unwrap();
//! let out = df.execute(&[ArgValue::F(1.95e-5), ArgValue::F(1.37e-7)]).unwrap();
//! assert!(out.fp_error > 0.0);
//! ```
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`ir`] | `chef-ir` | KernelC language (lexer/parser/typeck/printer) |
//! | [`ad`] | `chef-ad` | source-transformation reverse & forward AD |
//! | [`core`] | `chef-core` | error models + estimation module + API |
//! | [`passes`] | `chef-passes` | fold/CSE/DCE/inline optimization pipeline |
//! | [`exec`] | `chef-exec` | bytecode VM, precision simulation, tape stats |
//! | [`adapt`] | `adapt-baseline` | runtime-taping comparator (ADAPT/CoDiPack) |
//! | [`fastapprox`] | `fastapprox` | approximate math functions |
//! | [`tuner`] | `chef-tuner` | greedy mixed-precision tuning |
//! | [`apps`] | `chef-apps` | the five paper benchmarks |
//! | [`shadow`] | `chef-shadow` | shadow-execution error oracle + attribution |
//! | [`service`] | `chef-service` | resilient concurrent multi-session analysis server |

pub use adapt_baseline as adapt;
pub use chef_ad as ad;
pub use chef_apps as apps;
pub use chef_core as core;
pub use chef_exec as exec;
pub use chef_ir as ir;
pub use chef_passes as passes;
pub use chef_service as service;
pub use chef_shadow as shadow;
pub use chef_tuner as tuner;
pub use fastapprox;
