//! Custom error models — the paper's Listings 2 and 3.
//!
//! ```text
//! cargo run --example custom_model
//! ```
//!
//! Implements the ADAPT error model `Δ = Σ |x̄ · (x − (float)x)|` first via
//! the built-in [`AdaptModel`] and then as a hand-written `ErrorModel`
//! implementation (the equivalent of subclassing
//! `FPErrorEstimationModel` in the paper), and shows both agree.

use chef_fp::core::prelude::*;
use chef_fp::exec::prelude::ArgValue;
use chef_fp::ir::ast::{Expr, Intrinsic};
use chef_fp::ir::types::{FloatTy, Type};

/// A user-defined model, written exactly like the paper's Listing 3
/// `CustomModel::AssignError`: it receives the variable's value and
/// adjoint expressions and returns the error expression to accumulate.
struct MyAdaptStyleModel;

impl ErrorModel for MyAdaptStyleModel {
    fn name(&self) -> &'static str {
        "my-adapt-style"
    }

    fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<Expr> {
        // dx * (x - (float)x), wrapped in fabs.
        let demoted = Expr::cast(Type::Float(FloatTy::F32), ctx.value.clone());
        let gap = Expr::sub(ctx.value.clone(), demoted);
        Some(Expr::call(
            Intrinsic::Fabs,
            vec![Expr::mul(ctx.adjoint.clone(), gap)],
        ))
    }

    fn input_error(
        &mut self,
        _name: &str,
        value: &Expr,
        adjoint: &Expr,
        _prec: FloatTy,
    ) -> Option<Expr> {
        let demoted = Expr::cast(Type::Float(FloatTy::F32), value.clone());
        let gap = Expr::sub(value.clone(), demoted);
        Some(Expr::call(
            Intrinsic::Fabs,
            vec![Expr::mul(adjoint.clone(), gap)],
        ))
    }
}

fn main() {
    let src = "
        double horner(double x) {
            double acc = 0.3;
            acc = acc * x + 1.7;
            acc = acc * x + 0.9;
            acc = acc * x + 2.1;
            return acc;
        }";
    let args = [ArgValue::F(0.737373737373)];
    let opts = EstimateOptions::default();

    // Built-in model (paper eq. 2).
    let mut builtin = AdaptModel::to_f32();
    let est1 = estimate_error_src_with(src, "horner", &mut builtin, &opts).unwrap();
    let out1 = est1.execute(&args).unwrap();

    // The custom implementation.
    let mut custom = MyAdaptStyleModel;
    let est2 = estimate_error_src_with(src, "horner", &mut custom, &opts).unwrap();
    let out2 = est2.execute(&args).unwrap();

    println!("built-in AdaptModel estimate: {:e}", out1.fp_error);
    println!("custom model estimate:       {:e}", out2.fp_error);
    assert_eq!(out1.fp_error, out2.fp_error, "models must agree");

    println!("\nper-variable attribution (custom model):");
    let mut rows: Vec<_> = out2.per_variable.iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(a.1));
    for (var, err) in rows {
        println!("  {var:<6} {err:e}");
    }
}
