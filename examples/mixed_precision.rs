//! Mixed-precision tuning on the Arc Length benchmark — the workflow
//! behind the paper's Table I.
//!
//! ```text
//! cargo run --release --example mixed_precision
//! ```
//!
//! 1. CHEF-FP estimates every variable's demotion error;
//! 2. the tuner greedily demotes the cheapest variables under the
//!    threshold;
//! 3. the chosen configuration is validated by running the demoted
//!    program and measuring the actual output difference.

use chef_fp::apps::arclen;
use chef_fp::tuner::{tune, validate, TunerConfig};

fn main() {
    let threshold = 1e-5;
    let n = 100_000i64;
    let program = arclen::program();
    let args = arclen::args(n);

    let cfg = TunerConfig::with_threshold(threshold);
    let result = tune(&program, arclen::NAME, &args, &cfg).expect("tuning succeeds");

    println!("per-variable estimated demotion error (double -> float):");
    for (name, err) in &result.per_variable {
        let marker = if result.demoted.contains(name) {
            "demote"
        } else {
            "keep  "
        };
        println!("  [{marker}] {name:<8} {err:e}");
    }
    println!(
        "\nchosen configuration: {} variables demoted, estimated error {:e} <= {threshold:e}",
        result.demoted.len(),
        result.estimated_error
    );

    let report = validate(&program, arclen::NAME, &args, &result.config).expect("validation runs");
    println!("baseline (all double): {}", report.baseline);
    println!("tuned (mixed):         {}", report.demoted);
    println!("actual error:          {:e}", report.actual_error);
    assert!(report.actual_error <= threshold, "threshold must hold");

    println!("\nthe tuned configuration satisfies the {threshold:e} threshold.");
}
