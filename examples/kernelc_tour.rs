//! A tour of the KernelC toolchain: parse, check, inline, differentiate,
//! optimize, print, execute.
//!
//! ```text
//! cargo run --example kernelc_tour
//! ```
//!
//! Shows each stage of the pipeline the way Clad users inspect generated
//! derivative code.

use chef_fp::ad::reverse::reverse_diff;
use chef_fp::exec::prelude::*;
use chef_fp::ir::prelude::*;
use chef_fp::passes::{inline_program, optimize_function, OptLevel};

fn main() {
    let src = "
double cndf_like(double t) {
    double k = 1.0 / (1.0 + 0.2316419 * fabs(t));
    double w = 1.0 - 0.39894228 * exp(-0.5 * t * t) * k;
    return w;
}

double price(double s, double k2) {
    double d = cndf_like(s / k2 - 1.0);
    return s * d;
}";

    // 1. Parse + type check.
    let mut program = parse_program(src).expect("parses");
    check_program(&mut program).expect("type checks");
    println!("--- original program ---\n{}", print_program(&program));

    // 2. Inline user calls (AD and the VM work on flat functions).
    let inlined = inline_program(&program).expect("inlines");
    println!(
        "--- after inlining ---\n{}",
        print_function(inlined.function("price").unwrap())
    );

    // 3. Reverse-mode differentiation (the Fig. 2 transformation).
    let grad = reverse_diff(inlined.function("price").unwrap()).expect("differentiates");
    println!("--- generated adjoint (forward + backward sweep) ---");
    println!("{}", print_function(&grad));

    // 4. Optimize the generated code (fold + CSE + DCE).
    let mut opt = grad.clone();
    let stats = optimize_function(&mut opt, OptLevel::O2);
    println!(
        "--- after -O2 (iterations: {}, CSE hits: {}, DCE hits: {}) ---",
        stats.iterations, stats.cse_hits, stats.dce_hits
    );
    println!("{}", print_function(&opt));

    // 5. Compile and run.
    let compiled = compile_default(&opt).expect("compiles");
    let (s, k2) = (105.0, 100.0);
    let out = run(
        &compiled,
        vec![
            ArgValue::F(s),
            ArgValue::F(k2),
            ArgValue::F(0.0),
            ArgValue::F(0.0),
        ],
    )
    .expect("runs");
    println!("d price/d s  = {:?}", out.args[2]);
    println!("d price/d k2 = {:?}", out.args[3]);
    println!(
        "VM stats: {} instructions, tape peak {} bytes",
        out.stats.instrs_executed, out.stats.tape_peak_bytes
    );
}
