//! HPCCG per-iteration sensitivity profiling — the paper's Fig. 9 and the
//! loop-split discovery.
//!
//! ```text
//! cargo run --release --example sensitivity_heatmap
//! ```
//!
//! Tracks the conjugate-gradient vectors `r`, `p`, `x`, `Ap` across CG
//! iterations (marker: the once-per-iteration `rtrans` update), renders
//! the normalized heat map, and reports where the residual-carrying
//! sensitivities collapse — the iteration after which the remaining work
//! can run in `float`.

use chef_fp::apps::hpccg;
use chef_fp::core::prelude::*;
use chef_fp::exec::prelude::ExecOptions;

fn main() {
    let problem = hpccg::problem(20, 30, 10);
    println!(
        "HPCCG 20x30x10 chimney domain: {} rows, {} nonzeros",
        problem.nrow,
        problem.vals.len()
    );

    let cfg = SensitivityConfig {
        tracked: vec!["r".into(), "p".into(), "x".into(), "Ap".into()],
        tick_on: "rtrans".into(),
        max_ticks: 200,
    };
    let profile = profile_sensitivity(
        &hpccg::program(),
        hpccg::NAME,
        &cfg,
        &hpccg::args(&problem),
        &ExecOptions::default(),
    )
    .expect("profiling runs");

    println!("CG iterations recorded: {}\n", profile.ticks);
    println!("normalized sensitivity heat map (dark = high):");
    print!("{}", profile.ascii_heatmap(64));

    // The split decision follows the residual-carrying vectors; `x`
    // converges to the solution so its |value·adjoint| plateaus.
    let residual_cfg = SensitivityConfig {
        tracked: vec!["r".into(), "p".into(), "Ap".into()],
        ..cfg
    };
    let residual_profile = profile_sensitivity(
        &hpccg::program(),
        hpccg::NAME,
        &residual_cfg,
        &hpccg::args(&problem),
        &ExecOptions::default(),
    )
    .expect("profiling runs");
    match residual_profile.split_point(1e-3) {
        Some(t) => {
            println!("\nresidual sensitivities collapse after iteration {t}:");
            println!("  -> run iterations 0..{t} in double, the rest in float");
            let (full, _, full_res) = hpccg::native_f64(&problem, 150, 1e-10);
            let (split, _, split_res) = hpccg::native_split(&problem, 150, 1e-10, t);
            println!("  full-precision solution sum: {full}  (residual {full_res:e})");
            println!("  loop-split solution sum:     {split}  (residual {split_res:e})");
        }
        None => println!("\nsensitivities never collapse below the threshold"),
    }
}
