//! Approximate-function error analysis on Black-Scholes — the paper's
//! Algorithm 2 and Table IV.
//!
//! ```text
//! cargo run --release --example approx_blackscholes
//! ```
//!
//! Maps the named inputs of `sqrt`, `log` and `exp` to their FastApprox
//! replacements and lets CHEF-FP estimate, per option, how much the
//! substitution perturbs the price; compares against the measured
//! perturbation.

use chef_fp::apps::blackscholes as bs;
use chef_fp::core::prelude::*;
use chef_fp::ir::ast::Intrinsic;

fn main() {
    let w = bs::workload(200, 42);
    let program = bs::program();

    // Algorithm 2's map S: variable -> function it feeds.
    let mut model = ApproxModel::new()
        .with("tQ", Intrinsic::Sqrt, Intrinsic::FastSqrt)
        .with("ratio", Intrinsic::Log, Intrinsic::FastLog)
        .with("negrT", Intrinsic::Exp, Intrinsic::FasterExp);
    let est = estimate_error_with(&program, bs::NAME, &mut model, &EstimateOptions::default())
        .expect("estimator builds");

    let exact = bs::native_prices(&w);
    let approx = bs::approx_prices_fast_exp(&w);

    println!("option |   exact price |  approx price |  actual err | estimated err");
    let mut act_acc = 0.0;
    let mut est_acc = 0.0;
    for i in 0..10 {
        let one = bs::Workload {
            sptprice: vec![w.sptprice[i]],
            strike: vec![w.strike[i]],
            rate: vec![w.rate[i]],
            volatility: vec![w.volatility[i]],
            otime: vec![w.otime[i]],
            otype: vec![w.otype[i]],
        };
        let out = est.execute(&bs::args(&one)).expect("analysis runs");
        let actual = (approx[i] - exact[i]).abs();
        println!(
            "{i:>6} | {:>13.6} | {:>13.6} | {:>11.4e} | {:>11.4e}",
            exact[i], approx[i], actual, out.fp_error
        );
        act_acc += actual;
        est_acc += out.fp_error;
    }
    println!("\naccumulated over the 10 shown: actual {act_acc:.4e}, estimated {est_acc:.4e}");
    println!(
        "(the estimate weighs the pointwise gap f(x) − f̃(x) with the input's adjoint —\n\
         Algorithm 2 of the paper — so it tracks the measured error to first order)"
    );
}
