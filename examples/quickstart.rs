//! Quickstart — the paper's Listing 1, verbatim workflow.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Analyzes `float func(float x, float y) { float z; z = x + y; return z; }`
//! and prints the total floating-point error estimate plus the gradient,
//! exactly like the minimal demonstrator in the paper.

use chef_fp::core::prelude::*;
use chef_fp::exec::prelude::ArgValue;

fn main() {
    let src = "
        float func(float x, float y) {
            float z;
            z = x + y;
            return z;
        }";

    // Call estimate_error on the target function.
    let df = estimate_error_src(src, "func", &EstimateOptions::default()).expect("analysis builds");

    // Declare the inputs; the adjoint outputs and the final error output
    // are appended automatically by `execute`.
    let (x, y) = (1.95e-5_f64, 1.37e-7_f64);

    // Execute the generated code.
    let out = df.execute(&[ArgValue::F(x), ArgValue::F(y)]).expect("runs");

    // fp_error now contains the error of func.
    println!("Error in func: {:e}", out.fp_error);
    println!("value = {} (exact would be {})", out.value, x + y);
    println!(
        "dz/dx = {}, dz/dy = {}",
        out.gradient_f("x"),
        out.gradient_f("y")
    );

    println!("\n--- generated adjoint + error-estimation code ---");
    println!("{}", df.generated_source());
}
